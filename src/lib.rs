#![warn(missing_docs)]

//! Path-profile-driven superblock scheduling.
//!
//! This is the umbrella crate of the reproduction of Young & Smith,
//! *Better Global Scheduling Using Path Profiles* (MICRO-31, 1998). It
//! re-exports the component crates:
//!
//! - [`ir`] — executable compiler IR and reference interpreter;
//! - [`profile`] — edge, general-path, and forward-path profilers;
//! - [`machine`] — the 8-wide VLIW machine model and I-cache parameters;
//! - [`compact`] — superblock compaction (renaming + list scheduling);
//! - [`core`] — superblock formation (selection, tail duplication,
//!   enlargement) driven by either edge or path profiles — the paper's
//!   central contribution;
//! - [`sim`] — the compiled-simulation analog (cycle accounting, I-cache,
//!   layout);
//! - [`suite`] — the benchmark programs of Table 1 (micro + SPEC analogs);
//! - [`harness`] — experiment drivers regenerating every table and figure;
//! - [`serve`] — the compile-service daemon (framed protocol, bounded
//!   queue, load-generating client via `pps-harness loadgen`).
//!
//! [`testgen`] generates random structured programs for the differential
//! property tests in `tests/`.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub mod testgen;

pub use pps_compact as compact;
pub use pps_core as core;
pub use pps_harness as harness;
pub use pps_ir as ir;
pub use pps_machine as machine;
pub use pps_obs as obs;
pub use pps_profile as profile;
pub use pps_serve as serve;
pub use pps_sim as sim;
pub use pps_suite as suite;
