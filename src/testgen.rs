//! Random-program generation for differential testing.
//!
//! [`gen_program`] builds arbitrary *structured* programs — nested
//! if/else, counted loops, switches, calls, loads/stores and observable
//! outputs — from a seed. Structured generation guarantees reducible CFGs
//! and termination, so every generated program can be executed, profiled,
//! transformed by any formation scheme, and executed again; the outputs
//! must match exactly. The property tests in `tests/` drive thousands of
//! such programs through the full pipeline.

use pps_ir::builder::{FuncBuilder, ProgramBuilder};
use pps_ir::{AluOp, Operand, ProcId, Program, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable shape of generated programs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum statement-nesting depth.
    pub max_depth: u32,
    /// Maximum statements per block sequence.
    pub max_stmts: u32,
    /// Maximum extra procedures (callable, non-recursive).
    pub max_procs: u32,
    /// Maximum trip count of generated loops.
    pub max_trip: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_depth: 3, max_stmts: 5, max_procs: 3, max_trip: 6 }
    }
}

/// Memory size given to generated programs (all addresses are masked into
/// this range).
const MEM_WORDS: usize = 256;

struct Gen<'r> {
    rng: &'r mut StdRng,
    config: GenConfig,
    /// Procedures generated so far (callable targets), with arities and
    /// their approximate dynamic cost (instructions per activation).
    callees: Vec<(ProcId, u32, u64)>,
    /// Product of enclosing loop trip counts for the procedure currently
    /// being generated.
    multiplier: u64,
    /// Approximate dynamic cost accumulated for the current procedure.
    cost: u64,
    /// Per-procedure dynamic-cost budget: calls are skipped once exceeded,
    /// keeping every generated program fast to execute.
    budget: u64,
}

impl Gen<'_> {
    fn charge(&mut self, instrs: u64) {
        self.cost = self.cost.saturating_add(instrs.saturating_mul(self.multiplier));
    }

    fn operand(&mut self, regs: &[Reg]) -> Operand {
        if regs.is_empty() || self.rng.gen_bool(0.4) {
            Operand::Imm(self.rng.gen_range(-64..64))
        } else {
            Operand::Reg(regs[self.rng.gen_range(0..regs.len())])
        }
    }

    /// Emits a random straight-line statement; may extend `regs`.
    fn stmt(&mut self, f: &mut FuncBuilder<'_>, regs: &mut Vec<Reg>) {
        self.charge(3);
        match self.rng.gen_range(0..10) {
            0..=4 => {
                // ALU over random operands.
                let op = AluOp::ALL[self.rng.gen_range(0..AluOp::ALL.len())];
                let lhs = self.operand(regs);
                let rhs = self.operand(regs);
                let dst = if !regs.is_empty() && self.rng.gen_bool(0.5) {
                    regs[self.rng.gen_range(0..regs.len())]
                } else {
                    let r = f.reg();
                    regs.push(r);
                    r
                };
                f.alu(op, dst, lhs, rhs);
            }
            5 => {
                // Masked store: addr = (v & mask); always in bounds.
                let addr = f.reg();
                let v = self.operand(regs);
                f.alu(AluOp::And, addr, v, Operand::Imm(MEM_WORDS as i64 - 1));
                // And absolute value to guard the sign.
                f.alu(AluOp::Max, addr, addr, 0i64);
                let val = self.operand(regs);
                f.store(val, addr, 0);
                regs.push(addr);
            }
            6 => {
                // Masked load.
                let addr = f.reg();
                let v = self.operand(regs);
                f.alu(AluOp::And, addr, v, Operand::Imm(MEM_WORDS as i64 - 1));
                f.alu(AluOp::Max, addr, addr, 0i64);
                let dst = f.reg();
                f.load(dst, addr, 0);
                regs.push(dst);
            }
            7 => {
                // Observable output.
                let v = self.operand(regs);
                f.out(v);
            }
            8 => {
                // Call an earlier procedure (acyclic call graph), unless
                // the dynamic-cost budget says the program would get slow.
                let pick = self
                    .callees
                    .get(self.rng.gen_range(0..self.callees.len().max(1)))
                    .copied();
                match pick {
                    Some((callee, arity, callee_cost))
                        if self.cost.saturating_add(
                            callee_cost.saturating_mul(self.multiplier),
                        ) < self.budget =>
                    {
                        self.charge(callee_cost);
                        let args = (0..arity).map(|_| self.operand(regs)).collect();
                        let dst = f.reg();
                        f.call(callee, args, Some(dst));
                        regs.push(dst);
                    }
                    _ => f.nop(),
                }
            }
            _ => f.nop(),
        }
    }

    /// Emits a structured statement *sequence* ending with control merged
    /// back into a single open block.
    fn seq(&mut self, f: &mut FuncBuilder<'_>, regs: &mut Vec<Reg>, depth: u32) {
        let n = self.rng.gen_range(1..=self.config.max_stmts);
        for _ in 0..n {
            if depth > 0 && self.rng.gen_bool(0.35) {
                match self.rng.gen_range(0..3) {
                    0 => self.if_else(f, regs, depth - 1),
                    1 => self.counted_loop(f, regs, depth - 1),
                    _ => self.switch3(f, regs, depth - 1),
                }
            } else {
                self.stmt(f, regs);
            }
        }
    }

    fn if_else(&mut self, f: &mut FuncBuilder<'_>, regs: &mut [Reg], depth: u32) {
        let c = f.reg();
        let lhs = self.operand(regs);
        let rhs = self.operand(regs);
        f.alu(AluOp::CmpLt, c, lhs, rhs);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        f.branch(c, then_b, else_b);
        // Branch arms may write to a shared set of registers, which is the
        // interesting case for liveness and compensation.
        f.switch_to(then_b);
        let mut then_regs = regs.to_vec();
        self.seq(f, &mut then_regs, depth);
        f.jump(join);
        f.switch_to(else_b);
        let mut else_regs = regs.to_vec();
        self.seq(f, &mut else_regs, depth);
        f.jump(join);
        f.switch_to(join);
    }

    fn counted_loop(&mut self, f: &mut FuncBuilder<'_>, regs: &mut [Reg], depth: u32) {
        let trip = self.rng.gen_range(0..=self.config.max_trip);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(trip));
        f.branch(c, body, exit);
        f.switch_to(body);
        let mut body_regs = regs.to_vec();
        // Expose the induction value through a copy: statements may pick
        // any visible register as a destination, and clobbering the real
        // counter would break termination.
        let icopy = f.reg();
        f.mov(icopy, Operand::Reg(i));
        body_regs.push(icopy);
        let outer = self.multiplier;
        self.multiplier = outer.saturating_mul(trip.max(1) as u64);
        self.seq(f, &mut body_regs, depth);
        self.multiplier = outer;
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
    }

    fn switch3(&mut self, f: &mut FuncBuilder<'_>, regs: &mut Vec<Reg>, depth: u32) {
        let sel = f.reg();
        let v = self.operand(regs);
        f.alu(AluOp::And, sel, v, 3i64);
        let cases: Vec<_> = (0..3).map(|_| f.new_block()).collect();
        let dflt = f.new_block();
        let join = f.new_block();
        f.switch(sel, cases.clone(), dflt);
        for case in cases {
            f.switch_to(case);
            let mut case_regs = regs.clone();
            self.seq(f, &mut case_regs, depth);
            f.jump(join);
        }
        f.switch_to(dflt);
        f.jump(join);
        f.switch_to(join);
        regs.push(sel);
    }
}

/// Generates a deterministic random program from `seed`.
///
/// Every generated program terminates, never faults, writes at least one
/// observable output, and has a reducible CFG.
pub fn gen_program(seed: u64, config: GenConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new();
    pb.set_memory(MEM_WORDS, (0..64).map(|i| i * 3 % 17).collect());

    let mut gen = Gen {
        rng: &mut rng,
        config,
        callees: Vec::new(),
        multiplier: 1,
        cost: 0,
        budget: 50_000,
    };

    // Leaf procedures first (acyclic call graph: each may call earlier
    // ones).
    let n_procs = gen.rng.gen_range(0..=config.max_procs);
    for k in 0..n_procs {
        let arity = gen.rng.gen_range(0..3u32);
        let mut f = pb.begin_proc(format!("p{k}"), arity);
        let mut regs: Vec<Reg> = (0..arity).map(Reg::new).collect();
        let depth = gen.rng.gen_range(0..config.max_depth);
        gen.multiplier = 1;
        gen.cost = 0;
        gen.seq(&mut f, &mut regs, depth);
        let ret = gen.operand(&regs);
        f.ret(Some(ret));
        let id = f.finish();
        let proc_cost = gen.cost.max(1);
        gen.callees.push((id, arity, proc_cost));
    }

    let mut f = pb.begin_proc("main", 0);
    let mut regs: Vec<Reg> = Vec::new();
    gen.multiplier = 1;
    gen.cost = 0;
    gen.seq(&mut f, &mut regs, config.max_depth);
    // Guarantee at least one observable output.
    let v = gen.operand(&regs);
    f.out(v);
    let ret = gen.operand(&regs);
    f.ret(Some(ret));
    let main = f.finish();
    pb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;

    #[test]
    fn generated_programs_verify_and_run() {
        for seed in 0..200 {
            let p = gen_program(seed, GenConfig::default());
            verify_program(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let r = Interp::new(&p, ExecConfig::default())
                .run(&[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!r.output.is_empty(), "seed {seed} has observable output");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_program(42, GenConfig::default());
        let b = gen_program(42, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_generate_distinct_programs() {
        let a = gen_program(1, GenConfig::default());
        let b = gen_program(2, GenConfig::default());
        assert_ne!(a, b);
    }
}
