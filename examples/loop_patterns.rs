//! Figure 3 of the paper, executable: the same edge profile, two different
//! path profiles, two different unrollings.
//!
//! The paper's loop contains a conditional: block `B` is taken 40 times and
//! `C` 20 times per 60 iterations — identical edge profiles for two very
//! different behaviors:
//!
//! - `Path1` (the `alt` pattern): the loop repeats B,B,C — a 3-iteration
//!   period. Path-based unrolling discovers the period and builds the
//!   superblock A-B-D, A-B-D, A-C-D that completes almost every entry.
//! - `Path2` (the `ph` pattern): phased — B for the first 40 iterations,
//!   then C for 20. Path-based formation builds *two* superblocks, one per
//!   phase, each unrolled on its own branch direction.
//!
//! Classical edge-based unrolling can only build B-loop bodies for both.
//!
//! ```sh
//! cargo run --release --example loop_patterns
//! ```

use pps::compact::CompactConfig;
use pps::core::{form_program, FormConfig, Scheme};
use pps::ir::builder::ProgramBuilder;
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::trace::TeeSink;
use pps::ir::{AluOp, BlockId, Operand, Program};
use pps::machine::MachineConfig;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::sim::simulate;

/// One loop iterating `n` times; the conditional takes `B` except when
/// `select(i)` says `C`. `alternating = true` gives the Path1 pattern
/// (period 3: B,B,C), false gives Path2 (phased: B then C).
fn figure3_loop(n: i64, alternating: bool) -> (Program, [BlockId; 4]) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let c = f.reg();
    let m = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let a = f.new_block();
    let b = f.new_block();
    let cc = f.new_block();
    let d = f.new_block();
    let exit = f.new_block();
    f.jump(a);
    f.switch_to(a);
    if alternating {
        // Path1: C on every third iteration.
        f.alu(AluOp::Rem, m, i, 3i64);
        f.alu(AluOp::CmpNe, c, m, 2i64);
    } else {
        // Path2: B for the first two thirds, C afterwards.
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n * 2 / 3));
    }
    f.branch(c, b, cc);
    f.switch_to(b);
    f.alu(AluOp::Add, acc, acc, 7i64);
    f.jump(d);
    f.switch_to(cc);
    f.alu(AluOp::Xor, acc, acc, i);
    f.jump(d);
    f.switch_to(d);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
    f.branch(c, a, exit);
    f.switch_to(exit);
    f.out(acc);
    f.ret(None);
    let main = f.finish();
    (pb.finish(main), [a, b, cc, d])
}

fn names(ids: &[BlockId; 4], orig: &[BlockId], blocks: &[BlockId]) -> String {
    blocks
        .iter()
        .map(|&blk| {
            let o = orig[blk.index()];
            if o == ids[0] {
                "A"
            } else if o == ids[1] {
                "B"
            } else if o == ids[2] {
                "C"
            } else if o == ids[3] {
                "D"
            } else {
                "·"
            }
        })
        .collect::<Vec<_>>()
        .join("-")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::paper();
    for (label, alternating) in [("Path1 (alternating B,B,C)", true), ("Path2 (phased B…C)", false)] {
        println!("== {label} ==");
        let n = 60_000i64;
        for scheme in [Scheme::M4, Scheme::P4] {
            let (mut program, ids) = figure3_loop(n, alternating);
            let mut tee =
                TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
            Interp::new(&program, ExecConfig::default()).run_traced(&[], &mut tee)?;
            let edge = tee.a.finish();
            let path = tee.b.finish();
            let formed = form_program(
                &mut program,
                &edge,
                Some(&path),
                scheme,
                &FormConfig::default(),
            )?;
            // Show the unrolled bodies of the hottest superblocks.
            let pid = program.entry;
            for sb in formed.partition[pid.index()].iter().take(4) {
                if sb.len() >= 3 {
                    println!(
                        "  {}: {}",
                        scheme.name(),
                        names(&ids, &formed.orig_of[pid.index()], &sb.blocks)
                    );
                }
            }
            let compacted = pps::compact::compact_program(
                &mut program,
                &formed.partition,
                &CompactConfig::default(),
            );
            let out = simulate(&program, &compacted, &machine, None, &[])?;
            println!("  {} cycles: {}", scheme.name(), out.cycles);
        }
        println!();
    }
    Ok(())
}
