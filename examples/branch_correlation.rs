//! Branch correlation (the paper's `corr` microbenchmark and Figure 1):
//! a second branch whose direction is fully determined by an earlier one.
//!
//! An edge profile sees both branches as 50/50; the general path profile
//! proves `f(a1 … b2) = 0` — the "wrong" combinations never execute — so
//! the path-based superblock former builds regions that never take the
//! impossible early exits.
//!
//! ```sh
//! cargo run --release --example branch_correlation
//! ```

use pps::harness::{run_scheme, RunConfig};
use pps::core::Scheme;
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::BlockId;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::suite::{benchmark_by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark_by_name("corr", Scale(8)).expect("corr exists");
    let program = &bench.program;
    let pid = program.entry;

    // Profile and compare what each profiler can see.
    let mut ep = EdgeProfiler::new(program);
    Interp::new(program, ExecConfig::default()).run_traced(&[], &mut ep)?;
    let edge = ep.finish();
    let mut pp = PathProfiler::new(program, 15);
    Interp::new(program, ExecConfig::default()).run_traced(&[], &mut pp)?;
    let path = pp.finish();

    // Block layout of the corr benchmark (see pps-suite/src/micro.rs):
    // 1 = head, 2 = a1, 3 = a2, 4 = mid, 5 = b1, 6 = b2.
    let (a1, a2, mid, b1, b2) = (
        BlockId::new(2),
        BlockId::new(3),
        BlockId::new(4),
        BlockId::new(5),
        BlockId::new(6),
    );
    println!("edge profile (what mutual-most-likely sees):");
    println!("  f(mid -> b1) = {}", edge.edge_freq(pid, mid, b1));
    println!("  f(mid -> b2) = {}", edge.edge_freq(pid, mid, b2));
    println!("  -> the second branch looks like a coin flip\n");

    println!("general path profile (what the path-based former sees):");
    println!("  f(a1-mid-b1) = {}", path.freq(pid, &[a1, mid, b1]));
    println!("  f(a1-mid-b2) = {}   <- never happens", path.freq(pid, &[a1, mid, b2]));
    println!("  f(a2-mid-b2) = {}", path.freq(pid, &[a2, mid, b2]));
    println!("  f(a2-mid-b1) = {}   <- never happens\n", path.freq(pid, &[a2, mid, b1]));

    // And the cycle-count consequence.
    let config = RunConfig::paper();
    let m4 = run_scheme(&bench, Scheme::M4, &config)?;
    let p4 = run_scheme(&bench, Scheme::P4, &config)?;
    println!("M4 (edge profile) : {:>9} cycles", m4.cycles);
    println!(
        "P4 (path profile) : {:>9} cycles  ({:.1}% of M4)",
        p4.cycles,
        100.0 * p4.cycles as f64 / m4.cycles as f64
    );
    println!(
        "\nblocks executed per dynamic superblock: M4 {:.2}, P4 {:.2}",
        m4.sb_stats.avg_blocks_executed(),
        p4.sb_stats.avg_blocks_executed()
    );
    Ok(())
}
