//! Driving the pipeline stage by stage on a real benchmark, with the
//! instruction cache and code layout in the loop — the full methodology of
//! the paper on the `wc` analog.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use pps::compact::{compact_program, CompactConfig};
use pps::core::{form_program, FormConfig, Scheme};
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::trace::TeeSink;
use pps::machine::MachineConfig;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::sim::{simulate, Layout};
use pps::suite::{benchmark_by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark_by_name("wc", Scale(8)).expect("wc exists");
    let machine = MachineConfig::paper();

    for scheme in [Scheme::BasicBlock, Scheme::M4, Scheme::M16, Scheme::P4E, Scheme::P4] {
        let mut program = bench.program.clone();

        // 1. Profile on the *training* input (one run, both profilers).
        let mut tee =
            TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
        Interp::new(&program, ExecConfig::default())
            .run_traced(&bench.train_args, &mut tee)?;
        let edge = tee.a.finish();
        let path = tee.b.finish();

        // 2. Form superblocks.
        let formed = form_program(
            &mut program,
            &edge,
            Some(&path),
            scheme,
            &FormConfig::default(),
        )?;

        // 3. Compact (rename + schedule).
        let compacted =
            compact_program(&mut program, &formed.partition, &CompactConfig::default());

        // 4. Lay out code from a training-input run of the transformed
        //    program, then measure on the *testing* input.
        let train = simulate(&program, &compacted, &machine, None, &bench.train_args)?;
        let layout = Layout::build(&program, &compacted, &train.transitions, &machine);
        let out = simulate(&program, &compacted, &machine, Some(&layout), &bench.test_args)?;

        let icache = out.icache.expect("layout supplied");
        println!(
            "{:<4}  cycles {:>9}  (+icache {:>9})  miss {:>6.3}%  code {:>6}B  avg-run {:>5.2} blocks",
            scheme.name(),
            out.cycles,
            out.cycles_with_icache(),
            100.0 * icache.miss_rate(),
            layout.total_bytes(),
            out.sb_stats.avg_blocks_executed(),
        );
    }
    println!("\n(avg-run = basic blocks executed per dynamic superblock, Figure 7's gray bars)");
    Ok(())
}
