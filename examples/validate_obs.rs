//! CI validator for the observability exports: checks that a Chrome-trace
//! JSON file and a metrics JSON file (as written by `pps-harness
//! --trace-out/--metrics-out`) parse and carry the expected structure.
//!
//! ```text
//! cargo run --release --example validate_obs -- trace.json metrics.json
//! ```
//!
//! Exits non-zero (panics) on a missing file, unparseable JSON, or a
//! document missing the expected top-level keys — the failure modes the CI
//! smoke step exists to catch.

use pps_obs::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path] = args.as_slice() else {
        panic!("usage: validate_obs <trace.json> <metrics.json>");
    };

    // --- Trace: Chrome trace-event object form, non-empty, Perfetto keys.
    let trace = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| panic!("reading {trace_path}: {e}"));
    let doc = json::parse(&trace).unwrap_or_else(|e| panic!("{trace_path}: bad JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{trace_path}: no traceEvents array"));
    assert!(!events.is_empty(), "{trace_path}: traceEvents is empty");
    for e in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "{trace_path}: event missing `{key}`: {e:?}");
        }
    }
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .count();
    assert!(spans > 0, "{trace_path}: no complete (ph:X) span events");

    // --- Metrics: stable schema with counters + histograms arrays.
    let metrics = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| panic!("reading {metrics_path}: {e}"));
    let doc = json::parse(&metrics).unwrap_or_else(|e| panic!("{metrics_path}: bad JSON: {e}"));
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("pps-metrics"),
        "{metrics_path}: wrong or missing schema tag"
    );
    assert_eq!(
        doc.get("version").and_then(|v| v.as_num()),
        Some(1.0),
        "{metrics_path}: wrong or missing version"
    );
    let counters = doc
        .get("counters")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{metrics_path}: no counters array"));
    assert!(!counters.is_empty(), "{metrics_path}: counters is empty");
    for c in counters {
        assert!(c.get("name").is_some() && c.get("value").is_some(), "bad counter: {c:?}");
    }
    doc.get("histograms")
        .and_then(|v| v.as_arr())
        .unwrap_or_else(|| panic!("{metrics_path}: no histograms array"));
    for name in ["form.superblocks", "sim.cycles"] {
        assert!(
            counters.iter().any(|c| c.get("name").and_then(|v| v.as_str()) == Some(name)),
            "{metrics_path}: expected counter `{name}`"
        );
    }

    println!(
        "validate_obs: OK ({} trace events, {spans} spans, {} counters)",
        events.len(),
        counters.len()
    );
}
