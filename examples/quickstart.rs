//! Quickstart: profile a small program, form superblocks from the path
//! profile, compact them, and measure the cycle improvement.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pps::compact::{compact_program, singleton_partition, CompactConfig};
use pps::core::{form_and_compact, FormConfig, Scheme};
use pps::ir::builder::ProgramBuilder;
use pps::ir::interp::ExecConfig;
use pps::ir::trace::TeeSink;
use pps::ir::{AluOp, Exec, Operand, Program, Reg};
use pps::machine::MachineConfig;
use pps::profile::{EdgeProfiler, PathProfiler};
use pps::sim::simulate;

/// Builds a program with a hot loop whose conditional alternates T,T,F —
/// behavior that a path profile captures exactly and an edge profile can
/// only average (the branch looks "67% taken").
fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 1);
    let n = Reg::new(0);
    let i = f.reg();
    let acc = f.reg();
    let c = f.reg();
    let m = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let yes = f.new_block();
    let no = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::Rem, m, i, 3i64);
    f.alu(AluOp::CmpNe, c, m, 2i64);
    f.branch(c, yes, no);
    f.switch_to(yes);
    f.alu(AluOp::Add, acc, acc, 5i64);
    f.alu(AluOp::Xor, acc, acc, i);
    f.jump(latch);
    f.switch_to(no);
    f.alu(AluOp::Mul, acc, acc, 3i64);
    f.alu(AluOp::And, acc, acc, 0xFFFFi64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, head, exit);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.finish(main)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::paper();
    let train_input = [30_000i64];
    let test_input = [50_000i64];

    // Baseline: basic-block scheduling.
    let mut baseline = build_program();
    let part = singleton_partition(&baseline);
    let compacted = compact_program(&mut baseline, &part, &CompactConfig::default());
    let base = simulate(&baseline, &compacted, &machine, None, &test_input)?;
    println!("basic-block scheduled : {:>9} cycles", base.cycles);

    // Profile once on the training input (both profilers share the run).
    for scheme in [Scheme::M4, Scheme::P4] {
        let mut program = build_program();
        let mut tee =
            TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, 15));
        // `Exec` picks the fast pre-decoded engine by default; set
        // PPS_ENGINE=reference to force the tree-walking oracle.
        Exec::new(&program, ExecConfig::default())
            .run_traced(&train_input, &mut tee)?;
        let (compacted, stats) = form_and_compact(
            &mut program,
            &tee.a.finish(),
            Some(&tee.b.finish()),
            scheme,
            &FormConfig::default(),
            &CompactConfig::default(),
        )?;
        let out = simulate(&program, &compacted, &machine, None, &test_input)?;
        assert_eq!(out.exec.output, base.exec.output, "semantics preserved");
        println!(
            "{:<22}: {:>9} cycles  ({:.1}% vs baseline, {} superblocks, {} blocks copied)",
            format!("{} scheduled", scheme.name()),
            out.cycles,
            100.0 * out.cycles as f64 / base.cycles as f64,
            stats.superblocks,
            stats.enlarged_blocks + stats.tail_dup_blocks,
        );
    }
    println!("\nThe TTF pattern is invisible to the edge profile (the branch just");
    println!("looks 67% taken), but the path profile sees the exact 3-iteration");
    println!("period, so P4 builds a superblock that completes almost always.");
    Ok(())
}
