//! A tour of the three profilers on one program: edge (point) profiles,
//! general path profiles (the paper's), and Ball–Larus-style forward path
//! profiles — showing what each can and cannot answer.
//!
//! ```sh
//! cargo run --release --example profiler_tour
//! ```

use pps::ir::builder::ProgramBuilder;
use pps::ir::interp::{ExecConfig, Interp};
use pps::ir::{AluOp, BlockId, Operand, Program};
use pps::profile::{EdgeProfiler, ForwardPathProfiler, PathProfiler};

/// The Figure 1 CFG: A → (X|direct) → B → (C|Y) → latch → A, 1000 loop
/// iterations. Via-X iterations always continue to C (correlation).
fn figure1() -> (Program, [BlockId; 6]) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 0);
    let i = f.reg();
    let c = f.reg();
    let m = f.reg();
    f.mov(i, 0i64);
    let a = f.new_block();
    let x = f.new_block();
    let b = f.new_block();
    let y = f.new_block();
    let cc = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(a);
    f.switch_to(a);
    f.alu(AluOp::Rem, m, i, 2i64);
    f.branch(m, b, x); // odd: directly to B; even: via X
    f.switch_to(x);
    f.jump(b);
    f.switch_to(b);
    // Correlated: odd iterations (those that skipped X) go to Y half the
    // time; even iterations never do.
    f.alu(AluOp::Rem, m, i, 4i64);
    f.alu(AluOp::CmpEq, c, m, 1i64);
    f.branch(c, y, cc);
    f.switch_to(y);
    f.jump(latch);
    f.switch_to(cc);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(1000));
    f.branch(c, a, exit);
    f.switch_to(exit);
    f.ret(None);
    let main = f.finish();
    (pb.finish(main), [a, x, b, y, cc, latch])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, [a, x, b, y, cc, latch]) = figure1();
    let pid = program.entry;
    let interp = Interp::new(&program, ExecConfig::default());

    let mut ep = EdgeProfiler::new(&program);
    interp.run_traced(&[], &mut ep)?;
    let edge = ep.finish();

    let mut pp = PathProfiler::new(&program, 15);
    interp.run_traced(&[], &mut pp)?;
    let path = pp.finish();

    let mut fp = ForwardPathProfiler::new(&program);
    interp.run_traced(&[], &mut fp)?;
    let fwd = fp.finish();

    println!("EDGE PROFILE — independent frequencies per edge:");
    println!("  f(A→X) = {:>4}   f(A→B) = {:>4}", edge.edge_freq(pid, a, x), edge.edge_freq(pid, a, b));
    println!("  f(B→Y) = {:>4}   f(B→C) = {:>4}", edge.edge_freq(pid, b, y), edge.edge_freq(pid, b, cc));
    println!("  As in the paper's Figure 1, the completion frequency of the");
    println!("  trace A-X-B-C can only be bounded from these numbers.\n");

    println!("GENERAL PATH PROFILE — exact frequencies for block sequences:");
    println!("  f(A-X-B-C) = {:>4}  (exact: via-X iterations always reach C)", path.freq(pid, &[a, x, b, cc]));
    println!("  f(A-X-B-Y) = {:>4}  (the impossible combination)", path.freq(pid, &[a, x, b, y]));
    println!("  f(A-B-Y)   = {:>4}", path.freq(pid, &[a, b, y]));
    let two_iter = [a, x, b, cc, latch, a, b];
    println!("  f(A-X-B-C-latch-A-B) = {} — paths cross loop iterations", path.freq(pid, &two_iter));
    let (hits, misses) = path.cache_stats(pid);
    println!("  profiler transition cache: {hits} hits / {misses} misses");
    println!("  distinct paths recorded: {}\n", path.distinct_paths(pid));

    println!("FORWARD PATH PROFILE (Ball–Larus) — chopped at back edges:");
    println!("  distinct forward paths: {}", fwd.distinct_paths(pid));
    println!("  f(A-X-B-C-latch) = {:>4} (within one iteration: exact)", fwd.path_count(pid, &[a, x, b, cc, latch]));
    println!(
        "  f(…-latch-A-…)   = {:>4} (cannot span the back edge — the reason\n\
         \x20                         the paper collects *general* paths)",
        fwd.path_count(pid, &[latch, a])
    );
    Ok(())
}
