#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with no network access:
# all external crate names resolve to local shims under shims/ (see
# shims/README.md), so `cargo` never touches a registry.
#
# Stages (run all by default):
#   ./ci.sh gate              build + tests + clippy
#   ./ci.sh obs-smoke         one recorded benchmark run; fails on missing or
#                             invalid --trace-out/--metrics-out JSON
#   ./ci.sh parallel-harness  same experiment at --jobs 1 and --jobs 2;
#                             fails if tables or metrics differ by a byte
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

stage="${1:-all}"

gate() {
  echo "== build (release) =="
  cargo build --release

  echo "== tests =="
  cargo test -q

  echo "== clippy =="
  cargo clippy --all-targets -- -D warnings
}

obs_smoke() {
  echo "== observability smoke =="
  out="$(mktemp -d)"
  cargo run --release -p pps-harness --bin pps-harness -- \
    --experiment fig4 --bench wc --scale 1 --mode strict \
    --trace-out "$out/trace.json" --metrics-out "$out/metrics.json" \
    --log-level warn > "$out/tables.txt"
  test -s "$out/trace.json" || { echo "missing trace.json"; exit 1; }
  test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
  cargo run --release --example validate_obs -- "$out/trace.json" "$out/metrics.json"
  rm -rf "$out"
}

parallel_harness() {
  echo "== parallel harness determinism =="
  out="$(mktemp -d)"
  for jobs in 1 2; do
    cargo run --release -p pps-harness --bin pps-harness -- \
      --experiment fig4 --scale 1 --mode strict --jobs "$jobs" \
      --metrics-out "$out/metrics-j$jobs.json" \
      --log-level warn > "$out/tables-j$jobs.txt"
  done
  diff -u "$out/tables-j1.txt" "$out/tables-j2.txt" \
    || { echo "tables differ between --jobs 1 and --jobs 2"; exit 1; }
  diff -u "$out/metrics-j1.json" "$out/metrics-j2.json" \
    || { echo "metrics differ between --jobs 1 and --jobs 2"; exit 1; }
  rm -rf "$out"
}

case "$stage" in
  gate) gate ;;
  obs-smoke) obs_smoke ;;
  parallel-harness) parallel_harness ;;
  all)
    gate
    obs_smoke
    parallel_harness
    ;;
  *)
    echo "usage: ./ci.sh [gate|obs-smoke|parallel-harness|all]" >&2
    exit 2
    ;;
esac

echo "== CI green =="
