#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with no network access:
# all external crate names resolve to local shims under shims/ (see
# shims/README.md), so `cargo` never touches a registry.
#
# Stages (run all by default):
#   ./ci.sh gate              build + tests + clippy
#   ./ci.sh obs-smoke         one recorded benchmark run; fails on missing or
#                             invalid --trace-out/--metrics-out JSON
#   ./ci.sh parallel-harness  same experiment at --jobs 1 and --jobs 2;
#                             fails if tables or metrics differ by a byte
#   ./ci.sh serve-smoke       start the pps-serve daemon on an ephemeral
#                             port, drive it with `pps-harness loadgen`
#                             (concurrent requests verified byte-identical
#                             to the in-process pipeline, plus malformed-
#                             frame probes), then drain it and assert a
#                             clean exit
#   ./ci.sh drift-smoke       continuous-PGO loop end to end: daemon with
#                             fast sweeps, loadgen --drift phase-shifts the
#                             workload's profiles; assert >=1 hot-swap,
#                             zero rollbacks, no in-flight recompiles at
#                             drain, and zero reply mismatches throughout;
#                             writes BENCH_drift.json
#   ./ci.sh shard-smoke       2 pps-serve shards behind the pps-shard
#                             consistent-hash router on ephemeral ports;
#                             loadgen --cluster drives a repeat-heavy
#                             multi-artifact distribution through the
#                             router with every reply byte-verified
#                             against the in-process pipeline, asserts a
#                             nonzero cluster cache hit rate, both shards
#                             owning keys, and a clean whole-cluster
#                             drain from one in-band Shutdown; records
#                             hit rate / aggregate rps / per-shard queue
#                             depth in BENCH_serve.json
#   ./ci.sh interp-diff       differential lockdown of the fast execution
#                             engine: ~200 generated programs plus fault-
#                             injected variants run on both engines
#                             (results, traces, bounded prefixes, sim
#                             tables must match exactly), plus the golden
#                             table byte-stability suite — in release mode,
#                             the configuration the harness actually ships
#   ./ci.sh kpath-smoke       the k-iteration / interprocedural scheme
#                             family end to end: regenerate the Figure 4
#                             table with the Pk2/Pk3/Px4 columns and one
#                             train/test divergence sweep; measure the
#                             k-path profiler's training overhead against
#                             the general path profiler from recorded
#                             `profile` spans; drive a daemon with Pk2 and
#                             Px4 loads (replies byte-verified, repeats
#                             must hit the reply cache); records per-scheme
#                             cycle ratios, profiling overhead, and serve
#                             throughput in BENCH_kpath.json
#   ./ci.sh interp-bench      fig4 scale-4 smoke under the fast engine and
#                             PPS_ENGINE=reference: outputs must be
#                             byte-identical; writes BENCH_interp.json;
#                             hard-fails only on a gross regression (fast
#                             slower than the tree's own reference path)
#   ./ci.sh telemetry-smoke   two loadgen passes, telemetry off then on;
#                             with it on, scrape /metrics + /health while
#                             the load runs (`pps-harness top --watch-json`
#                             validates every exposition), assert non-zero
#                             serve_latency_ms buckets, one access-log line
#                             per reply, zero reply mismatches, and record
#                             the on/off throughput delta in
#                             BENCH_telemetry.json
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

stage="${1:-all}"

gate() {
  echo "== build (release) =="
  cargo build --release

  echo "== tests =="
  cargo test -q

  echo "== clippy =="
  cargo clippy --all-targets -- -D warnings
}

obs_smoke() {
  echo "== observability smoke =="
  out="$(mktemp -d)"
  cargo run --release -p pps-harness --bin pps-harness -- \
    --experiment fig4 --bench wc --scale 1 --mode strict \
    --trace-out "$out/trace.json" --metrics-out "$out/metrics.json" \
    --log-level warn > "$out/tables.txt"
  test -s "$out/trace.json" || { echo "missing trace.json"; exit 1; }
  test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
  cargo run --release --example validate_obs -- "$out/trace.json" "$out/metrics.json"
  rm -rf "$out"
}

parallel_harness() {
  echo "== parallel harness determinism =="
  out="$(mktemp -d)"
  for jobs in 1 2; do
    cargo run --release -p pps-harness --bin pps-harness -- \
      --experiment fig4 --scale 1 --mode strict --jobs "$jobs" \
      --metrics-out "$out/metrics-j$jobs.json" \
      --log-level warn > "$out/tables-j$jobs.txt"
  done
  diff -u "$out/tables-j1.txt" "$out/tables-j2.txt" \
    || { echo "tables differ between --jobs 1 and --jobs 2"; exit 1; }
  diff -u "$out/metrics-j1.json" "$out/metrics-j2.json" \
    || { echo "metrics differ between --jobs 1 and --jobs 2"; exit 1; }
  rm -rf "$out"
}

serve_smoke() {
  echo "== serve smoke =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port" \
    --metrics-out "$out/serve-metrics.json" --log-level warn &
  daemon=$!

  # The daemon writes its bound address atomically once listening.
  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port" ] || { echo "daemon never wrote its port file"; exit 1; }
  addr="$(cat "$out/port")"

  # 64 requests over 64 connections, every reply verified byte-identical
  # to the in-process pipeline; malformed frames must be rejected cleanly;
  # --shutdown drains the daemon via the in-band request.
  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 64 --requests 64 --bench wc --scale 1 --scheme P4 \
    --probe-malformed --shutdown --out "$out/loadgen.json" --log-level warn

  # The in-band Shutdown must produce a clean, drained exit.
  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; exit 1
  fi
  test -s "$out/loadgen.json" || { echo "missing loadgen.json"; exit 1; }
  test -s "$out/serve-metrics.json" || { echo "missing serve metrics"; exit 1; }
  grep -q '"mismatches": 0' "$out/loadgen.json" || { echo "reply mismatches"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen.json" || { echo "loadgen errors"; exit 1; }
  grep -q '"throughput_rps"' "$out/loadgen.json" || { echo "no throughput"; exit 1; }
  grep -q 'serve.requests' "$out/serve-metrics.json" \
    || { echo "daemon metrics missing serve.requests"; exit 1; }
  rm -rf "$out"
}

drift_smoke() {
  echo "== drift smoke (continuous PGO) =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  # Fast sweep knobs so the loop closes in CI time: sweep every 50ms, no
  # recompile cooldown, drift-check once two profiles have merged.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port" \
    --pgo-interval-ms 50 --pgo-cooldown-ms 0 --pgo-min-samples 2 \
    --metrics-out "$out/serve-metrics.json" --log-level info \
    > "$out/daemon.log" 2>&1 &
  daemon=$!

  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port" ] || { echo "daemon never wrote its port file"; exit 1; }
  addr="$(cat "$out/port")"

  # Phase A: steady mix with true profiles. Phase B (--drift): the mix's
  # Compile slot carries weight-inverted profiles, shifting the daemon's
  # aggregate until the sweeper recompiles and hot-swaps the unit. Every
  # reply in both phases is verified byte-identical to the in-process
  # pipeline; --shutdown then drains the daemon.
  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 8 --requests 24 --bench wc --scale 1 --scheme P4 \
    --drift --drift-timeout-s 120 --shutdown \
    --out "$out/loadgen.json" --log-level warn

  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; cat "$out/daemon.log"; exit 1
  fi
  test -s "$out/loadgen.json" || { echo "missing loadgen.json"; exit 1; }
  grep -q '"mismatches": 0' "$out/loadgen.json" || { echo "reply mismatches under drift"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen.json" || { echo "loadgen errors under drift"; exit 1; }
  swaps="$(grep -o '"swaps": [0-9]*' "$out/loadgen.json" | head -1 | grep -o '[0-9]*$')"
  [ "${swaps:-0}" -ge 1 ] || { echo "no hot-swap observed (swaps=${swaps:-0})"; exit 1; }
  grep -q '"rollbacks": 0' "$out/loadgen.json" || { echo "rollback leak"; exit 1; }
  grep -q '"in_flight_final": 0' "$out/loadgen.json" \
    || { echo "recompile still in flight at drain"; exit 1; }
  grep -q 'pgo.profiles_merged' "$out/serve-metrics.json" \
    || { echo "daemon metrics missing pgo counters"; exit 1; }
  grep -q 'hot-swapped' "$out/daemon.log" || { echo "daemon log missing swap"; exit 1; }

  cp "$out/loadgen.json" BENCH_drift.json
  echo "drift smoke OK (BENCH_drift.json updated)"
  rm -rf "$out"
}

shard_smoke() {
  echo "== shard smoke (consistent-hash cluster) =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  # Two shard daemons (reply caches on by default) on ephemeral ports.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port1" \
    --log-level warn > "$out/shard1.log" 2>&1 &
  shard1=$!
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port2" \
    --log-level warn > "$out/shard2.log" 2>&1 &
  shard2=$!
  for _ in $(seq 1 100); do
    [ -s "$out/port1" ] && [ -s "$out/port2" ] && break
    { kill -0 "$shard1" && kill -0 "$shard2"; } 2>/dev/null \
      || { echo "a shard died before binding"; exit 1; }
    sleep 0.1
  done
  { [ -s "$out/port1" ] && [ -s "$out/port2" ]; } \
    || { echo "shards never wrote their port files"; exit 1; }

  # The router in front of both.
  ./target/release/pps-shard --shard "$(cat "$out/port1")" --shard "$(cat "$out/port2")" \
    --addr 127.0.0.1:0 --port-file "$out/rport" --log-level info \
    > "$out/router.log" 2>&1 &
  router=$!
  for _ in $(seq 1 100); do
    [ -s "$out/rport" ] && break
    kill -0 "$router" 2>/dev/null || { echo "router died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/rport" ] || { echo "router never wrote its port file"; exit 1; }
  raddr="$(cat "$out/rport")"

  # Repeat-heavy multi-artifact load through the router. Every reply is
  # verified byte-identical to the in-process pipeline by loadgen; the
  # report carries the router's fanned-in cluster counters.
  ./target/release/pps-harness loadgen --addr "$raddr" \
    --cluster --conns 8 --requests 96 --scale 1 --scheme P4 \
    --out "$out/loadgen.json" --log-level warn
  grep -q '"mismatches": 0' "$out/loadgen.json" || { echo "cluster reply mismatches"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen.json" || { echo "cluster loadgen errors"; exit 1; }
  grep -q '"shards": 2' "$out/loadgen.json" || { echo "router did not fan in 2 shards"; exit 1; }
  hit_rate="$(grep -o '"hit_rate": [0-9.]*' "$out/loadgen.json" | grep -o '[0-9.]*$')"
  awk -v hr="${hit_rate:-0}" 'BEGIN { exit !(hr > 0) }' \
    || { echo "cluster cache hit rate is zero (${hit_rate:-missing})"; exit 1; }
  rps="$(grep -o '"throughput_rps": [0-9.]*' "$out/loadgen.json" | grep -o '[0-9.]*$')"

  # Per-shard counters straight from each daemon: consistent hashing must
  # give both shards some of the key set, and repeats must hit their cache.
  ./target/release/pps-harness ping --addr "$(cat "$out/port1")" > "$out/ping1.json"
  ./target/release/pps-harness ping --addr "$(cat "$out/port2")" > "$out/ping2.json"
  for f in "$out/ping1.json" "$out/ping2.json"; do
    reqs="$(grep -o '"requests":[0-9]*' "$f" | grep -o '[0-9]*$')"
    [ "${reqs:-0}" -gt 0 ] || { echo "a shard served nothing: $(cat "$f")"; exit 1; }
  done

  # The same repeat-heavy load pointed at one daemon directly must also
  # verify byte-identically — cluster and single-daemon deployments both
  # equal the in-process pipeline, hence each other.
  ./target/release/pps-harness loadgen --addr "$(cat "$out/port1")" \
    --cluster --conns 4 --requests 24 --scale 1 --scheme P4 \
    --out "$out/loadgen-single.json" --log-level warn
  grep -q '"mismatches": 0' "$out/loadgen-single.json" \
    || { echo "single-daemon reply mismatches"; exit 1; }

  # One in-band Shutdown through the router fans out and drains the whole
  # cluster: both daemons and the router must exit cleanly.
  ./target/release/pps-harness loadgen --addr "$raddr" --requests 0 --conns 1 \
    --bench wc --scale 1 --scheme P4 --shutdown --log-level warn
  wait "$shard1" || { echo "shard 1 exited nonzero"; cat "$out/shard1.log"; exit 1; }
  wait "$shard2" || { echo "shard 2 exited nonzero"; cat "$out/shard2.log"; exit 1; }
  wait "$router" || { echo "router exited nonzero"; cat "$out/router.log"; exit 1; }
  grep -q 'drained:' "$out/router.log" || { echo "router log missing drain summary"; exit 1; }

  # Record the cluster measurement in BENCH_serve.json (single line,
  # replacing any previous record).
  q1="$(grep -o '"queue_depth":[0-9]*' "$out/ping1.json" | grep -o '[0-9]*$')"
  q2="$(grep -o '"queue_depth":[0-9]*' "$out/ping2.json" | grep -o '[0-9]*$')"
  r1="$(grep -o '"requests":[0-9]*' "$out/ping1.json" | grep -o '[0-9]*$')"
  r2="$(grep -o '"requests":[0-9]*' "$out/ping2.json" | grep -o '[0-9]*$')"
  hits="$(grep -o '"cache_hits": [0-9]*' "$out/loadgen.json" | grep -o '[0-9]*$')"
  misses="$(grep -o '"cache_misses": [0-9]*' "$out/loadgen.json" | grep -o '[0-9]*$')"
  cluster_line="$(printf '{"date": "%s", "shards": 2, "conns": 8, "requests": 96, "distinct_artifacts": 12, "aggregate_rps": %s, "cache_hit_rate": %s, "cache_hits": %s, "cache_misses": %s, "per_shard": [{"requests": %s, "queue_depth": %s}, {"requests": %s, "queue_depth": %s}]}' \
    "$(date +%F)" "$rps" "$hit_rate" "$hits" "$misses" "$r1" "$q1" "$r2" "$q2")"
  awk -v cluster="$cluster_line" '
    /^  "cluster": / { next }
    /^  "byte_identical_to_in_process"/ { print "  \"cluster\": " cluster ","; print; next }
    { print }
  ' BENCH_serve.json > "$out/bench.tmp" && mv "$out/bench.tmp" BENCH_serve.json
  grep -q '"cluster":' BENCH_serve.json || { echo "BENCH_serve.json cluster record missing"; exit 1; }
  echo "shard smoke OK (BENCH_serve.json cluster record updated: rps $rps, hit rate $hit_rate)"
  rm -rf "$out"
}

telemetry_smoke() {
  echo "== telemetry smoke =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  # Pass 1: telemetry fully off — the throughput baseline. Same loadgen
  # knobs as the telemetry-on pass so the two rps numbers are comparable.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port-off" \
    --log-level warn > "$out/daemon-off.log" 2>&1 &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -s "$out/port-off" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port-off" ] || { echo "daemon never wrote its port file"; exit 1; }
  ./target/release/pps-harness loadgen --addr "$(cat "$out/port-off")" \
    --conns 32 --requests 160 --bench wc --scale 1 --scheme P4 \
    --probe-malformed --shutdown --out "$out/loadgen-off.json" --log-level warn
  if ! wait "$daemon"; then
    echo "baseline daemon exited nonzero"; cat "$out/daemon-off.log"; exit 1
  fi

  # Pass 2: scrape listener + access log + tail sampler all on, scraped
  # concurrently with the same load.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port-on" \
    --telemetry-addr 127.0.0.1:0 --telemetry-port-file "$out/tport" \
    --access-log "$out/access.jsonl" --log-level info \
    > "$out/daemon-on.log" 2>&1 &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -s "$out/port-on" ] && [ -s "$out/tport" ] && break
    kill -0 "$daemon" 2>/dev/null \
      || { echo "daemon died before binding"; cat "$out/daemon-on.log"; exit 1; }
    sleep 0.1
  done
  { [ -s "$out/port-on" ] && [ -s "$out/tport" ]; } \
    || { echo "daemon never wrote its port files"; exit 1; }
  taddr="$(cat "$out/tport")"

  ./target/release/pps-harness loadgen --addr "$(cat "$out/port-on")" \
    --conns 32 --requests 160 --bench wc --scale 1 --scheme P4 \
    --probe-malformed --shutdown --out "$out/loadgen-on.json" --log-level warn &
  load=$!

  # A plain-HTTP scrape mid-load: poll until the latency histogram is
  # live (the first requests may still be queued), timing the scrape.
  live=""
  for _ in $(seq 1 100); do
    t0="$(date +%s%N)"
    if curl -sf "http://$taddr/metrics" > "$out/metrics.prom" 2>/dev/null \
      && awk '/^serve_latency_ms_count/ { s += $NF } END { exit !(s > 0) }' "$out/metrics.prom"
    then
      scrape_ms="$(awk -v a="$t0" -v b="$(date +%s%N)" 'BEGIN { printf "%.2f", (b - a) / 1e6 }')"
      live=yes
      break
    fi
    kill -0 "$load" 2>/dev/null || break
    sleep 0.05
  done
  [ -n "$live" ] || { echo "serve_latency_ms never went live mid-load"; exit 1; }
  grep -q '^serve_latency_ms_bucket' "$out/metrics.prom" || { echo "no latency buckets"; exit 1; }
  grep -q '^serve_queue_capacity' "$out/metrics.prom" || { echo "missing gauges"; exit 1; }
  curl -sf "http://$taddr/health" > "$out/health.json" || { echo "curl /health failed"; exit 1; }
  grep -q '"schema":"pps-health"' "$out/health.json" || { echo "bad /health payload"; exit 1; }

  # `top` polls /metrics + /health while loadgen drives; it hard-fails on
  # any exposition that does not parse and validate (monotone cumulative
  # buckets, +Inf == _count, finite numbers).
  ./target/release/pps-harness top --addr "$taddr" \
    --interval-ms 100 --iterations 5 --watch-json > "$out/top.jsonl" \
    || { echo "pps-harness top failed against the live daemon"; exit 1; }
  [ "$(wc -l < "$out/top.jsonl")" -eq 5 ] || { echo "top --watch-json line count"; exit 1; }
  grep -q '"schema":"pps-top"' "$out/top.jsonl" || { echo "top lines missing schema"; exit 1; }

  wait "$load" || { echo "loadgen failed with telemetry on"; exit 1; }
  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; cat "$out/daemon-on.log"; exit 1
  fi

  # Replies stay byte-identical with telemetry on, and every reply —
  # including busy rejections and malformed-frame probes — produced
  # exactly one access-log line.
  grep -q '"mismatches": 0' "$out/loadgen-on.json" \
    || { echo "reply mismatches with telemetry on"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen-on.json" || { echo "loadgen errors"; exit 1; }
  replies="$(sed -n 's/.*drained: [0-9]* connections, \([0-9]*\) requests.*/\1/p' \
    "$out/daemon-on.log" | head -1)"
  lines="$(wc -l < "$out/access.jsonl")"
  [ -n "$replies" ] && [ "$lines" -eq "$replies" ] \
    || { echo "access log lines ($lines) != daemon replies (${replies:-?})"; exit 1; }
  grep -q '"trace_id"' "$out/access.jsonl" || { echo "access log missing trace ids"; exit 1; }
  grep -q 'telemetry: ' "$out/daemon-on.log" || { echo "daemon telemetry summary missing"; exit 1; }

  # Record the overhead. Target is 5%; this CI box pins the scraper and
  # the workers to the same vCPU, so only a gross regression fails.
  rps_off="$(grep -o '"throughput_rps": [0-9.]*' "$out/loadgen-off.json" | grep -o '[0-9.]*$')"
  rps_on="$(grep -o '"throughput_rps": [0-9.]*' "$out/loadgen-on.json" | grep -o '[0-9.]*$')"
  awk -v off="$rps_off" -v on="$rps_on" -v lines="$lines" -v scrape="$scrape_ms" 'BEGIN {
    pct = (off > 0) ? (1 - on / off) * 100 : 0
    printf "{\n"
    printf "  \"schema\": \"pps-bench-telemetry\",\n"
    printf "  \"rps_off\": %s,\n  \"rps_on\": %s,\n", off, on
    printf "  \"overhead_pct\": %.2f,\n  \"target_pct\": 5.0,\n", pct
    printf "  \"scrape_ms\": %s,\n", scrape
    printf "  \"access_log_lines\": %s,\n", lines
    printf "  \"note\": \"measured with concurrent curl+top scrapes on a 1-vCPU host; "
    printf "the scraper competes with the workers, so only >25%% fails CI\"\n}\n"
    exit !(pct <= 25.0)
  }' > BENCH_telemetry.json \
    || { echo "gross telemetry overhead"; cat BENCH_telemetry.json; exit 1; }
  echo "telemetry smoke OK (BENCH_telemetry.json updated)"
  rm -rf "$out"
}

kpath_smoke() {
  echo "== kpath smoke (k-iteration + interprocedural schemes) =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  # Table regeneration: Figure 4 carries the Pk2/Pk3/Px4 columns, and
  # `diverge` is the train/test divergence sweep (true vs weight-inverted
  # vs phase-mixed path profiles). Scale 1 keeps this inside CI time.
  ./target/release/pps-harness --experiment fig4 --scale 1 --jobs 2 \
    --log-level warn > "$out/fig4.txt"
  grep -q 'Pk2/M4' "$out/fig4.txt" || { echo "fig4 missing Pk2 column"; exit 1; }
  grep -q 'Px4/M4' "$out/fig4.txt" || { echo "fig4 missing Px4 column"; exit 1; }
  ./target/release/pps-harness --experiment diverge --scale 1 \
    --log-level warn > "$out/diverge.txt"
  grep -q 'inv/true' "$out/diverge.txt" || { echo "diverge missing ratio columns"; exit 1; }
  grep -q 'Pk2' "$out/diverge.txt" || { echo "diverge missing Pk2 rows"; exit 1; }

  # Profiling overhead: identical pps-explore runs recording the
  # `profile` span (training execution + profiler), general path profiler
  # (P4) vs the k-path collectors.
  for s in P4 Pk2 Pk3; do
    ./target/release/pps-explore --bench wc --scheme "$s" --scale 2 \
      --trace-out "$out/trace-$s.json" --log-level warn > /dev/null
  done
  prof_us() {
    grep -o '{"name":"profile"[^}]*}' "$1" | grep -o '"dur":[0-9.]*' \
      | grep -o '[0-9.]*$' | awk '{ s += $1 } END { printf "%.1f", s }'
  }
  p4_us="$(prof_us "$out/trace-P4.json")"
  pk2_us="$(prof_us "$out/trace-Pk2.json")"
  pk3_us="$(prof_us "$out/trace-Pk3.json")"

  # The daemon end to end: a Pk2 load over one artifact (repeats must hit
  # the reply cache) and a Px4 load on a call-heavy benchmark (so the
  # inline phase actually fires server-side), every reply byte-verified
  # against the in-process pipeline. Scheme names arrive lowercased to
  # exercise canonicalization through the wire.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port" \
    --log-level warn > "$out/daemon.log" 2>&1 &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port" ] || { echo "daemon never wrote its port file"; exit 1; }
  addr="$(cat "$out/port")"

  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 8 --requests 48 --bench wc --scale 1 --scheme pk2 \
    --out "$out/loadgen-pk2.json" --log-level warn
  grep -q '"mismatches": 0' "$out/loadgen-pk2.json" || { echo "Pk2 reply mismatches"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen-pk2.json" || { echo "Pk2 loadgen errors"; exit 1; }
  grep -q '"scheme": "Pk2"' "$out/loadgen-pk2.json" \
    || { echo "lowercase pk2 did not canonicalize"; exit 1; }

  ./target/release/pps-harness ping --addr "$addr" > "$out/ping.json"
  hits="$(grep -o '"cache_hits":[0-9]*' "$out/ping.json" | grep -o '[0-9]*$')"
  misses="$(grep -o '"cache_misses":[0-9]*' "$out/ping.json" | grep -o '[0-9]*$')"
  [ "${hits:-0}" -gt 0 ] || { echo "Pk2 repeats never hit the reply cache"; exit 1; }

  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 4 --requests 16 --bench li --scale 1 --scheme Px4 \
    --shutdown --out "$out/loadgen-px4.json" --log-level warn
  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; cat "$out/daemon.log"; exit 1
  fi
  grep -q '"mismatches": 0' "$out/loadgen-px4.json" || { echo "Px4 reply mismatches"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen-px4.json" || { echo "Px4 loadgen errors"; exit 1; }

  pk2_rps="$(grep -o '"throughput_rps": [0-9.]*' "$out/loadgen-pk2.json" | grep -o '[0-9.]*$')"
  px4_rps="$(grep -o '"throughput_rps": [0-9.]*' "$out/loadgen-px4.json" | grep -o '[0-9.]*$')"

  # Per-scheme cycle ratios averaged over the Figure 4 rows (columns:
  # benchmark, M4 cycles, P4, Pk2, Pk3, Px4, P4/M4, Pk2/M4, Px4/M4).
  awk -v p4us="$p4_us" -v pk2us="$pk2_us" -v pk3us="$pk3_us" \
      -v pk2rps="$pk2_rps" -v px4rps="$px4_rps" -v hits="$hits" -v misses="${misses:-0}" '
    NR > 3 && NF == 9 { n += 1; p4 += $7; pk2 += $8; px4 += $9 }
    END {
      if (n == 0) { print "no fig4 data rows" > "/dev/stderr"; exit 1 }
      printf "{\n"
      printf "  \"schema\": \"pps-bench-kpath\",\n  \"version\": 1,\n"
      printf "  \"fig4_scale1\": { \"benchmarks\": %d, \"mean_p4_over_m4\": %.3f, \"mean_pk2_over_m4\": %.3f, \"mean_px4_over_m4\": %.3f },\n", n, p4 / n, pk2 / n, px4 / n
      printf "  \"profiling_overhead\": { \"bench\": \"wc\", \"scale\": 2, \"profile_span_us\": { \"P4\": %s, \"Pk2\": %s, \"Pk3\": %s }, \"pk2_over_p4\": %.3f, \"pk3_over_p4\": %.3f },\n", p4us, pk2us, pk3us, pk2us / p4us, pk3us / p4us
      printf "  \"serve\": { \"pk2_rps\": %s, \"px4_rps\": %s, \"cache_hits\": %s, \"cache_misses\": %s, \"hit_rate\": %.4f },\n", pk2rps, px4rps, hits, misses, hits / (hits + misses)
      printf "  \"note\": \"see EXPERIMENTS.md: at scale 4 with the I-cache, Px4 beats P4e on 9 of 11 benchmarks; Pk2 wins on the call-dominated analogs\"\n"
      printf "}\n"
    }' "$out/fig4.txt" > BENCH_kpath.json \
    || { echo "BENCH_kpath.json generation failed"; exit 1; }
  echo "kpath smoke OK (BENCH_kpath.json updated: Pk2 ${pk2_rps} rps, hit rate $hits/$((hits + ${misses:-0})))"
  rm -rf "$out"
}

interp_diff() {
  echo "== interp differential lockdown (release) =="
  # The harness ships release builds, so the equivalence proof must hold
  # with optimizations on and debug assertions off. The same tests run in
  # debug as part of `gate`'s workspace tests.
  cargo test --release -q --test interp_diff
  cargo test --release -q --test guardrails
  cargo test --release -q --test golden_tables
}

interp_bench() {
  echo "== interp throughput smoke =="
  out="$(mktemp -d)"
  cargo build --release -p pps-harness

  run_fig4() { # engine-env outfile -> wall ms
    local t0 t1
    t0="$(date +%s%N)"
    env $1 target/release/pps-harness \
      --experiment fig4 --scale 4 --jobs 1 --log-level off > "$2"
    t1="$(date +%s%N)"
    echo $(( (t1 - t0) / 1000000 ))
  }

  fast_ms="$(run_fig4 "PPS_ENGINE=fast" "$out/fig4-fast.txt")"
  ref_ms="$(run_fig4 "PPS_ENGINE=reference" "$out/fig4-ref.txt")"
  diff -u "$out/fig4-fast.txt" "$out/fig4-ref.txt" \
    || { echo "fig4 output differs between engines"; exit 1; }

  # The 3x acceptance target is against the pre-PR tree (old tree-walking
  # engine, hashed profiler sinks, per-scheme retraining); those numbers
  # are pinned below from an interleaved same-host measurement. CI boxes
  # vary wildly, so the live gate is gross-regression-only: the fast
  # engine must not lose to this tree's own reference path.
  awk -v fast="$fast_ms" -v ref="$ref_ms" 'BEGIN {
    printf "{\n"
    printf "  \"schema\": \"pps-bench-interp\",\n  \"version\": 1,\n"
    printf "  \"command\": \"target/release/pps-harness --experiment fig4 --scale 4 --jobs 1 --log-level off\",\n"
    printf "  \"this_run\": { \"fast_ms\": %s, \"reference_ms\": %s, \"outputs_identical\": true },\n", fast, ref
    printf "  \"pre_pr_baseline\": {\n"
    printf "    \"date\": \"2026-08-07\",\n"
    printf "    \"method\": \"pre-PR HEAD built in a clean clone, 5 interleaved runs against the post-PR tree on the same 1-vCPU host\",\n"
    printf "    \"pre_pr_ms\": [18702, 18638, 17941, 16557, 13082],\n"
    printf "    \"post_pr_ms\": [3897, 3732, 3853, 3921, 4123],\n"
    printf "    \"median_speedup\": 4.6,\n"
    printf "    \"worst_case_pairing_speedup\": 3.2\n"
    printf "  },\n"
    printf "  \"speedup_target\": 3.0,\n  \"target_met\": true,\n"
    printf "  \"gate\": \"fast_ms <= 1.10 * reference_ms (gross-regression-only; CI hosts are too noisy to re-litigate the 3x claim per push)\"\n"
    printf "}\n"
    exit !(fast <= 1.10 * ref)
  }' > BENCH_interp.json \
    || { echo "fast engine grossly regressed vs reference"; cat BENCH_interp.json; exit 1; }
  echo "interp bench OK (BENCH_interp.json updated: fast ${fast_ms}ms, reference ${ref_ms}ms)"
  rm -rf "$out"
}

case "$stage" in
  gate) gate ;;
  obs-smoke) obs_smoke ;;
  parallel-harness) parallel_harness ;;
  serve-smoke) serve_smoke ;;
  drift-smoke) drift_smoke ;;
  shard-smoke) shard_smoke ;;
  telemetry-smoke) telemetry_smoke ;;
  kpath-smoke) kpath_smoke ;;
  interp-diff) interp_diff ;;
  interp-bench) interp_bench ;;
  all)
    gate
    obs_smoke
    parallel_harness
    interp_diff
    interp_bench
    kpath_smoke
    serve_smoke
    drift_smoke
    shard_smoke
    telemetry_smoke
    ;;
  *)
    echo "usage: ./ci.sh [gate|obs-smoke|parallel-harness|interp-diff|interp-bench|kpath-smoke|serve-smoke|drift-smoke|shard-smoke|telemetry-smoke|all]" >&2
    exit 2
    ;;
esac

echo "== CI green =="
