#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with no network access:
# all external crate names resolve to local shims under shims/ (see
# shims/README.md), so `cargo` never touches a registry.
#
# Stages (run all by default):
#   ./ci.sh gate       build + tests + clippy
#   ./ci.sh obs-smoke  one recorded benchmark run; fails on missing or
#                      invalid --trace-out/--metrics-out JSON
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

stage="${1:-all}"

gate() {
  echo "== build (release) =="
  cargo build --release

  echo "== tests =="
  cargo test -q

  echo "== clippy =="
  cargo clippy --all-targets -- -D warnings
}

obs_smoke() {
  echo "== observability smoke =="
  out="$(mktemp -d)"
  cargo run --release -p pps-harness --bin pps-harness -- \
    --experiment fig4 --bench wc --scale 1 --mode strict \
    --trace-out "$out/trace.json" --metrics-out "$out/metrics.json" \
    --log-level warn > "$out/tables.txt"
  test -s "$out/trace.json" || { echo "missing trace.json"; exit 1; }
  test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
  cargo run --release --example validate_obs -- "$out/trace.json" "$out/metrics.json"
  rm -rf "$out"
}

case "$stage" in
  gate) gate ;;
  obs-smoke) obs_smoke ;;
  all)
    gate
    obs_smoke
    ;;
  *)
    echo "usage: ./ci.sh [gate|obs-smoke|all]" >&2
    exit 2
    ;;
esac

echo "== CI green =="
