#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with no network access:
# all external crate names resolve to local shims under shims/ (see
# shims/README.md), so `cargo` never touches a registry.
#
# Stages (run all by default):
#   ./ci.sh gate              build + tests + clippy
#   ./ci.sh obs-smoke         one recorded benchmark run; fails on missing or
#                             invalid --trace-out/--metrics-out JSON
#   ./ci.sh parallel-harness  same experiment at --jobs 1 and --jobs 2;
#                             fails if tables or metrics differ by a byte
#   ./ci.sh serve-smoke       start the pps-serve daemon on an ephemeral
#                             port, drive it with `pps-harness loadgen`
#                             (concurrent requests verified byte-identical
#                             to the in-process pipeline, plus malformed-
#                             frame probes), then drain it and assert a
#                             clean exit
#   ./ci.sh drift-smoke       continuous-PGO loop end to end: daemon with
#                             fast sweeps, loadgen --drift phase-shifts the
#                             workload's profiles; assert >=1 hot-swap,
#                             zero rollbacks, no in-flight recompiles at
#                             drain, and zero reply mismatches throughout;
#                             writes BENCH_drift.json
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

stage="${1:-all}"

gate() {
  echo "== build (release) =="
  cargo build --release

  echo "== tests =="
  cargo test -q

  echo "== clippy =="
  cargo clippy --all-targets -- -D warnings
}

obs_smoke() {
  echo "== observability smoke =="
  out="$(mktemp -d)"
  cargo run --release -p pps-harness --bin pps-harness -- \
    --experiment fig4 --bench wc --scale 1 --mode strict \
    --trace-out "$out/trace.json" --metrics-out "$out/metrics.json" \
    --log-level warn > "$out/tables.txt"
  test -s "$out/trace.json" || { echo "missing trace.json"; exit 1; }
  test -s "$out/metrics.json" || { echo "missing metrics.json"; exit 1; }
  cargo run --release --example validate_obs -- "$out/trace.json" "$out/metrics.json"
  rm -rf "$out"
}

parallel_harness() {
  echo "== parallel harness determinism =="
  out="$(mktemp -d)"
  for jobs in 1 2; do
    cargo run --release -p pps-harness --bin pps-harness -- \
      --experiment fig4 --scale 1 --mode strict --jobs "$jobs" \
      --metrics-out "$out/metrics-j$jobs.json" \
      --log-level warn > "$out/tables-j$jobs.txt"
  done
  diff -u "$out/tables-j1.txt" "$out/tables-j2.txt" \
    || { echo "tables differ between --jobs 1 and --jobs 2"; exit 1; }
  diff -u "$out/metrics-j1.json" "$out/metrics-j2.json" \
    || { echo "metrics differ between --jobs 1 and --jobs 2"; exit 1; }
  rm -rf "$out"
}

serve_smoke() {
  echo "== serve smoke =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port" \
    --metrics-out "$out/serve-metrics.json" --log-level warn &
  daemon=$!

  # The daemon writes its bound address atomically once listening.
  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port" ] || { echo "daemon never wrote its port file"; exit 1; }
  addr="$(cat "$out/port")"

  # 64 requests over 64 connections, every reply verified byte-identical
  # to the in-process pipeline; malformed frames must be rejected cleanly;
  # --shutdown drains the daemon via the in-band request.
  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 64 --requests 64 --bench wc --scale 1 --scheme P4 \
    --probe-malformed --shutdown --out "$out/loadgen.json" --log-level warn

  # The in-band Shutdown must produce a clean, drained exit.
  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; exit 1
  fi
  test -s "$out/loadgen.json" || { echo "missing loadgen.json"; exit 1; }
  test -s "$out/serve-metrics.json" || { echo "missing serve metrics"; exit 1; }
  grep -q '"mismatches": 0' "$out/loadgen.json" || { echo "reply mismatches"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen.json" || { echo "loadgen errors"; exit 1; }
  grep -q '"throughput_rps"' "$out/loadgen.json" || { echo "no throughput"; exit 1; }
  grep -q 'serve.requests' "$out/serve-metrics.json" \
    || { echo "daemon metrics missing serve.requests"; exit 1; }
  rm -rf "$out"
}

drift_smoke() {
  echo "== drift smoke (continuous PGO) =="
  out="$(mktemp -d)"
  cargo build --release -p pps-serve -p pps-harness

  # Fast sweep knobs so the loop closes in CI time: sweep every 50ms, no
  # recompile cooldown, drift-check once two profiles have merged.
  ./target/release/pps-serve --addr 127.0.0.1:0 --port-file "$out/port" \
    --pgo-interval-ms 50 --pgo-cooldown-ms 0 --pgo-min-samples 2 \
    --metrics-out "$out/serve-metrics.json" --log-level info \
    > "$out/daemon.log" 2>&1 &
  daemon=$!

  for _ in $(seq 1 100); do
    [ -s "$out/port" ] && break
    kill -0 "$daemon" 2>/dev/null || { echo "daemon died before binding"; exit 1; }
    sleep 0.1
  done
  [ -s "$out/port" ] || { echo "daemon never wrote its port file"; exit 1; }
  addr="$(cat "$out/port")"

  # Phase A: steady mix with true profiles. Phase B (--drift): the mix's
  # Compile slot carries weight-inverted profiles, shifting the daemon's
  # aggregate until the sweeper recompiles and hot-swaps the unit. Every
  # reply in both phases is verified byte-identical to the in-process
  # pipeline; --shutdown then drains the daemon.
  ./target/release/pps-harness loadgen --addr "$addr" \
    --conns 8 --requests 24 --bench wc --scale 1 --scheme P4 \
    --drift --drift-timeout-s 120 --shutdown \
    --out "$out/loadgen.json" --log-level warn

  if ! wait "$daemon"; then
    echo "daemon exited nonzero after drain"; cat "$out/daemon.log"; exit 1
  fi
  test -s "$out/loadgen.json" || { echo "missing loadgen.json"; exit 1; }
  grep -q '"mismatches": 0' "$out/loadgen.json" || { echo "reply mismatches under drift"; exit 1; }
  grep -q '"errors": 0' "$out/loadgen.json" || { echo "loadgen errors under drift"; exit 1; }
  swaps="$(grep -o '"swaps": [0-9]*' "$out/loadgen.json" | head -1 | grep -o '[0-9]*$')"
  [ "${swaps:-0}" -ge 1 ] || { echo "no hot-swap observed (swaps=${swaps:-0})"; exit 1; }
  grep -q '"rollbacks": 0' "$out/loadgen.json" || { echo "rollback leak"; exit 1; }
  grep -q '"in_flight_final": 0' "$out/loadgen.json" \
    || { echo "recompile still in flight at drain"; exit 1; }
  grep -q 'pgo.profiles_merged' "$out/serve-metrics.json" \
    || { echo "daemon metrics missing pgo counters"; exit 1; }
  grep -q 'hot-swapped' "$out/daemon.log" || { echo "daemon log missing swap"; exit 1; }

  cp "$out/loadgen.json" BENCH_drift.json
  echo "drift smoke OK (BENCH_drift.json updated)"
  rm -rf "$out"
}

case "$stage" in
  gate) gate ;;
  obs-smoke) obs_smoke ;;
  parallel-harness) parallel_harness ;;
  serve-smoke) serve_smoke ;;
  drift-smoke) drift_smoke ;;
  all)
    gate
    obs_smoke
    parallel_harness
    serve_smoke
    drift_smoke
    ;;
  *)
    echo "usage: ./ci.sh [gate|obs-smoke|parallel-harness|serve-smoke|drift-smoke|all]" >&2
    exit 2
    ;;
esac

echo "== CI green =="
