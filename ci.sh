#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with no network access:
# all external crate names resolve to local shims under shims/ (see
# shims/README.md), so `cargo` never touches a registry.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== CI green =="
