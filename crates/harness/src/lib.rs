#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure of the paper.
//!
//! [`runner`] executes the full methodology for one benchmark × scheme
//! pair: profile on the training input (edge + general-path profilers over
//! one run), form and compact under the scheme, lay code out from a
//! training-run transition profile, then measure cycles, instruction-cache
//! behavior and superblock statistics on the *testing* input.
//!
//! [`experiments`] drives the per-figure sweeps:
//!
//! | id | paper | output |
//! |----|-------|--------|
//! | `table1` | Table 1 | benchmark statistics under basic-block scheduling |
//! | `fig4` | Figure 4 | P4 vs M4 cycle counts, perfect I-cache |
//! | `fig5` | Figure 5 | P4, P4e vs M4 with the 32KB I-cache |
//! | `fig6` | Figure 6 | P4e vs M16 with the I-cache |
//! | `fig7` | Figure 7 | blocks executed per dynamic superblock vs size |
//! | `missrates` | §4 in-text | I-cache miss rates per scheme |
//! | `ablate` | §2.3/§4 | realistic latencies, renaming/speculation off |
//!
//! The `pps-harness` binary (`cargo run -p pps-harness --release -- --help`)
//! prints the chosen experiment as an aligned text table and CSV. Its
//! `--jobs N` flag fans each experiment's benchmark × scheme cells across
//! a scoped-thread [`pool`] (default: available parallelism); the
//! plan → execute → replay engine in [`experiments`] keeps every output
//! byte-identical to a serial run.

pub mod experiments;
pub mod loadgen;
pub mod report;
pub mod top;

// The scoped-thread pool was promoted to `pps_core::pool` (the serve daemon
// shares it) and the per-cell runner to `pps_serve::runner`; both keep their
// historical `pps_harness::` paths through these re-exports.
pub use pps_core::pool;
pub use pps_serve::runner;

pub use experiments::{run_experiment_jobs, run_experiment_jobs_config, RunCtx};
pub use runner::{run_scheme, run_scheme_obs, RunConfig, RunError, SchemeRun};
