//! Plain-text table and CSV rendering for experiment output.

/// A simple aligned table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        s.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numerics, left-align the first column.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        s.push_str(&fmt_row(&self.headers, &widths));
        s.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        s.push_str(&"-".repeat(total));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row, &widths));
            s.push('\n');
        }
        s
    }

    /// Renders CSV (comma-separated, no quoting — cells never contain
    /// commas here).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.headers.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

/// Renders guardrail incidents collected across a sweep, one row per
/// incident: which benchmark × scheme run hit it, the procedure, the pass
/// that failed, the error, and whether the procedure fell back to
/// basic-block scheduling. Commas in error text are softened so the CSV
/// rendering stays well-formed.
pub fn incident_table(entries: &[(String, String, pps_core::Incident)]) -> Table {
    let mut t = Table::new(
        "Guardrail incidents (degraded procedures fell back to basic-block scheduling)",
        &["benchmark", "scheme", "procedure", "pass", "error", "fallback"],
    );
    for (bench, scheme, inc) in entries {
        t.row(vec![
            bench.clone(),
            scheme.clone(),
            inc.proc.clone(),
            inc.pass.to_string(),
            inc.error.to_string().replace(',', ";"),
            inc.fallback.to_string(),
        ]);
    }
    t
}

/// Formats a ratio like the paper's normalized bars (e.g. `0.87`).
pub fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_string()
    } else {
        format!("{:.3}", num as f64 / den as f64)
    }
}

/// Formats a count in millions with two decimals (Table 1's unit).
pub fn millions(n: u64) -> String {
    format!("{:.2}", n as f64 / 1e6)
}

/// Formats a percentage with two decimals.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(87, 100), "0.870");
        assert_eq!(ratio(1, 0), "n/a");
        assert_eq!(millions(2_500_000), "2.50");
        assert_eq!(percent(0.0392), "3.92%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
