//! One benchmark × scheme measurement, end to end.

use pps_core::{form_and_compact, FormConfig, FormStats, Scheme};
use pps_compact::CompactConfig;
use pps_ir::interp::{DynCounts, ExecConfig, Interp};
use pps_ir::trace::TeeSink;
use pps_machine::MachineConfig;
use pps_profile::{EdgeProfiler, PathProfiler, DEFAULT_PATH_DEPTH};
use pps_sim::{simulate, Layout, SbDynStats};
use pps_suite::Benchmark;

/// Shared configuration across a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Machine model (latencies, width, cache).
    pub machine: MachineConfig,
    /// Formation parameters.
    pub form: FormConfig,
    /// Compaction parameters.
    pub compact: CompactConfig,
    /// Path-profile depth override (`None` = the paper's 15).
    pub path_depth: Option<usize>,
}

impl RunConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        RunConfig::default()
    }
}

/// The measured result of one benchmark × scheme run.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme that produced the code.
    pub scheme: Scheme,
    /// Cycle count on the testing input, perfect I-cache.
    pub cycles: u64,
    /// Cycle count including I-cache miss penalties.
    pub cycles_icache: u64,
    /// I-cache miss rate per instruction fetch.
    pub miss_rate: f64,
    /// I-cache fetch accesses.
    pub accesses: u64,
    /// I-cache misses.
    pub misses: u64,
    /// Figure 7 statistics (testing input).
    pub sb_stats: SbDynStats,
    /// Laid-out code size in instructions.
    pub static_instrs: u64,
    /// Formation statistics.
    pub form_stats: FormStats,
    /// Dynamic counts of the testing run.
    pub counts: DynCounts,
}

/// Runs the complete methodology for `bench` under `scheme`:
/// train-profile → form → compact → train-layout → measure on test input.
///
/// # Panics
/// Panics if the benchmark program fails to execute (a suite bug) or if
/// formation/compaction produce invalid structures (a pipeline bug).
pub fn run_scheme(bench: &Benchmark, scheme: Scheme, config: &RunConfig) -> SchemeRun {
    let mut program = bench.program.clone();
    let exec_config = ExecConfig::default();

    // 1. One training run feeds both profilers.
    let depth = config.path_depth.unwrap_or(DEFAULT_PATH_DEPTH);
    let mut tee = TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, depth));
    Interp::new(&program, exec_config)
        .run_traced(&bench.train_args, &mut tee)
        .unwrap_or_else(|e| panic!("{} train run: {e}", bench.name));
    let edge = tee.a.finish();
    let path = tee.b.finish();

    // 2. Form + compact. The runner's machine description is the single
    // source of truth: it overrides the compactor's copy so latency-model
    // sweeps affect the schedules, not just the cache simulation.
    let mut compact_config = config.compact;
    compact_config.machine = config.machine;
    let (compacted, form_stats) = form_and_compact(
        &mut program,
        &edge,
        Some(&path),
        scheme,
        &config.form,
        &compact_config,
    );

    // 3. Training-input run over the transformed code for layout weights.
    let train_out = simulate(&program, &compacted, &config.machine, None, &bench.train_args)
        .unwrap_or_else(|e| panic!("{} layout run: {e}", bench.name));
    let layout = Layout::build(&program, &compacted, &train_out.transitions, &config.machine);

    // 4. Measured run on the testing input.
    let out = simulate(
        &program,
        &compacted,
        &config.machine,
        Some(&layout),
        &bench.test_args,
    )
    .unwrap_or_else(|e| panic!("{} test run: {e}", bench.name));

    // Sanity: the transformed program must behave like the original.
    debug_assert_eq!(
        out.exec.output,
        Interp::new(&bench.program, exec_config)
            .run(&bench.test_args)
            .expect("original runs")
            .output,
        "{}: transformation changed observable behavior",
        bench.name
    );

    let icache = out.icache.expect("layout supplied");
    SchemeRun {
        scheme,
        cycles: out.cycles,
        cycles_icache: out.cycles_with_icache(),
        miss_rate: icache.miss_rate(),
        accesses: icache.accesses,
        misses: icache.misses,
        sb_stats: out.sb_stats,
        static_instrs: compacted.total_items(),
        form_stats,
        counts: out.exec.counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_suite::{benchmark_by_name, Scale};

    #[test]
    fn full_methodology_on_wc() {
        let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let bb = run_scheme(&bench, Scheme::BasicBlock, &config);
        let m4 = run_scheme(&bench, Scheme::M4, &config);
        let p4 = run_scheme(&bench, Scheme::P4, &config);
        assert!(m4.cycles < bb.cycles, "M4 {} !< BB {}", m4.cycles, bb.cycles);
        assert!(p4.cycles < bb.cycles, "P4 {} !< BB {}", p4.cycles, bb.cycles);
        assert!(p4.sb_stats.avg_blocks_executed() > bb.sb_stats.avg_blocks_executed());
        assert!(p4.static_instrs >= bb.static_instrs);
        assert!(p4.miss_rate >= 0.0 && p4.miss_rate < 1.0);
    }

    #[test]
    fn micro_benchmarks_strongly_favor_paths() {
        let bench = benchmark_by_name("alt", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let m4 = run_scheme(&bench, Scheme::M4, &config);
        let p4 = run_scheme(&bench, Scheme::P4, &config);
        assert!(
            p4.cycles < m4.cycles,
            "alt: P4 {} !< M4 {} (path profiles must exploit the TTTF pattern)",
            p4.cycles,
            m4.cycles
        );
    }
}
