//! One benchmark × scheme measurement, end to end.

use pps_compact::CompactConfig;
use pps_core::{
    guarded_form_and_compact_hooked_obs, guarded_form_and_compact_obs, FormConfig, FormStats,
    GuardConfig, GuardReport, PipelineError, Scheme,
};
use pps_ir::interp::{DynCounts, ExecConfig, ExecError, Interp};
use pps_ir::trace::TeeSink;
use pps_ir::FaultInjector;
use pps_machine::MachineConfig;
use pps_obs::Obs;
use pps_profile::{EdgeProfiler, PathProfiler, DEFAULT_PATH_DEPTH};
use pps_sim::{simulate_obs, Layout, SbDynStats};
use pps_suite::Benchmark;
use std::fmt;

/// Any failure of one benchmark × scheme run, with the benchmark name
/// attached so sweep-level reports can say *which* run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// An interpreter/simulator run failed (`stage` is `train run`,
    /// `layout run` or `test run`).
    Exec {
        /// Benchmark being measured.
        bench: String,
        /// Which of the three executions failed.
        stage: &'static str,
        /// The underlying interpreter error.
        error: ExecError,
    },
    /// The scheduling pipeline failed (strict mode) or could not recover.
    Pipeline {
        /// Benchmark being measured.
        bench: String,
        /// The underlying pipeline error.
        error: PipelineError,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Exec { bench, stage, error } => write!(f, "{bench} {stage}: {error}"),
            RunError::Pipeline { bench, error } => write!(f, "{bench} pipeline: {error}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Exec { error, .. } => Some(error),
            RunError::Pipeline { error, .. } => Some(error),
        }
    }
}

/// Shared configuration across a sweep.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Machine model (latencies, width, cache).
    pub machine: MachineConfig,
    /// Formation parameters.
    pub form: FormConfig,
    /// Compaction parameters.
    pub compact: CompactConfig,
    /// Path-profile depth override (`None` = the paper's 15).
    pub path_depth: Option<usize>,
    /// Recovery-boundary configuration. With empty `oracle_inputs` the
    /// runner substitutes the benchmark's training input, so every run gets
    /// a real differential check against the untransformed program.
    pub guard: GuardConfig,
    /// When set, a deterministic fault injector corrupts each procedure
    /// after its formation + compaction (the guard's post-pass seam),
    /// exercising the recovery boundary under load. The injector is seeded
    /// from this value and the benchmark name only, so the same faults hit
    /// the same procedures no matter how runs are scheduled across workers.
    pub fault_seed: Option<u64>,
}

impl RunConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        RunConfig::default()
    }
}

/// FNV-1a over `bytes` — stable benchmark-name hashing for fault seeds
/// (`std`'s hasher is randomized per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The measured result of one benchmark × scheme run.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme that produced the code.
    pub scheme: Scheme,
    /// Cycle count on the testing input, perfect I-cache.
    pub cycles: u64,
    /// Cycle count including I-cache miss penalties.
    pub cycles_icache: u64,
    /// I-cache miss rate per instruction fetch.
    pub miss_rate: f64,
    /// I-cache fetch accesses.
    pub accesses: u64,
    /// I-cache misses.
    pub misses: u64,
    /// Figure 7 statistics (testing input).
    pub sb_stats: SbDynStats,
    /// Laid-out code size in instructions.
    pub static_instrs: u64,
    /// Formation statistics.
    pub form_stats: FormStats,
    /// Dynamic counts of the testing run.
    pub counts: DynCounts,
    /// Guardrail outcome: incidents recorded and procedures degraded while
    /// producing this run (empty/zero on a clean run).
    pub guard: GuardReport,
}

/// Runs the complete methodology for `bench` under `scheme`:
/// train-profile → form → compact → train-layout → measure on test input.
///
/// The formation + compaction step runs inside the pipeline's recovery
/// boundary ([`guarded_form_and_compact`]): in
/// [`GuardMode::Degrade`](pps_core::GuardMode) a procedure that fails its
/// post-pass checks falls back to basic-block scheduling and the run
/// continues (see [`SchemeRun::guard`]); in strict mode the first incident
/// surfaces here as [`RunError::Pipeline`].
pub fn run_scheme(
    bench: &Benchmark,
    scheme: Scheme,
    config: &RunConfig,
) -> Result<SchemeRun, RunError> {
    run_scheme_obs(bench, scheme, config, &Obs::noop())
}

/// [`run_scheme`] with observability: the whole run executes under a
/// `run-scheme` span (children: `profile`, the guarded pipeline's
/// per-procedure spans, `layout`, and the two `simulate` runs), with
/// metrics and decision events labeled `bench` and `scheme`.
///
/// # Errors
/// As [`run_scheme`].
pub fn run_scheme_obs(
    bench: &Benchmark,
    scheme: Scheme,
    config: &RunConfig,
    obs: &Obs,
) -> Result<SchemeRun, RunError> {
    let obs = obs.with_label("bench", bench.name).with_label("scheme", scheme.name());
    let _run_span = obs
        .span("run-scheme")
        .arg("bench", bench.name)
        .arg("scheme", scheme.name());
    let mut program = bench.program.clone();
    let exec_config = ExecConfig::default();
    let exec_err = |stage: &'static str| {
        move |error: ExecError| RunError::Exec { bench: bench.name.to_string(), stage, error }
    };

    // 1. One training run feeds both profilers.
    let depth = config.path_depth.unwrap_or(DEFAULT_PATH_DEPTH);
    let profile_span = obs.span("profile").arg("depth", depth);
    let mut tee = TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, depth));
    Interp::new(&program, exec_config)
        .run_traced(&bench.train_args, &mut tee)
        .map_err(exec_err("train run"))?;
    let edge = tee.a.finish();
    let path = tee.b.finish();
    edge.record_metrics(&obs);
    path.record_metrics(&obs);
    drop(profile_span);

    // 2. Form + compact under the recovery boundary. The runner's machine
    // description is the single source of truth: it overrides the
    // compactor's copy so latency-model sweeps affect the schedules, not
    // just the cache simulation.
    let mut compact_config = config.compact;
    compact_config.machine = config.machine;
    let mut guard = config.guard.clone();
    if guard.oracle_inputs.is_empty() {
        guard.oracle_inputs = vec![bench.train_args.clone()];
    }
    let guarded = match config.fault_seed {
        None => guarded_form_and_compact_obs(
            &mut program,
            &edge,
            Some(&path),
            scheme,
            &config.form,
            &compact_config,
            &guard,
            &obs,
        ),
        Some(seed) => {
            // Seeded per (seed, benchmark) only — never per worker or run
            // order — so fault routing is identical at any job count.
            let mut injector = FaultInjector::new(seed ^ fnv1a(bench.name.as_bytes()));
            let inputs = vec![bench.train_args.clone()];
            let budget = guard.step_budget;
            guarded_form_and_compact_hooked_obs(
                &mut program,
                &edge,
                Some(&path),
                scheme,
                &config.form,
                &compact_config,
                &guard,
                &obs,
                &mut |prog, pid| {
                    let _ = injector.inject_effective(prog, pid, &inputs, budget, 32);
                },
            )
        }
    }
    .map_err(|error| RunError::Pipeline { bench: bench.name.to_string(), error })?;
    let compacted = guarded.compacted;
    let form_stats = guarded.stats;

    // 3. Training-input run over the transformed code for layout weights.
    let train_out = simulate_obs(
        &program,
        &compacted,
        &config.machine,
        None,
        &bench.train_args,
        &obs.with_label("stage", "layout"),
    )
    .map_err(exec_err("layout run"))?;
    let layout = {
        let _span = obs.span("layout");
        Layout::build(&program, &compacted, &train_out.transitions, &config.machine)
    };

    // 4. Measured run on the testing input.
    let out = simulate_obs(
        &program,
        &compacted,
        &config.machine,
        Some(&layout),
        &bench.test_args,
        &obs.with_label("stage", "test"),
    )
    .map_err(exec_err("test run"))?;

    // Sanity: the transformed program must behave like the original.
    debug_assert_eq!(
        out.exec.output,
        Interp::new(&bench.program, exec_config)
            .run(&bench.test_args)
            .expect("original runs")
            .output,
        "{}: transformation changed observable behavior",
        bench.name
    );

    let icache = out.icache.expect("layout supplied");
    if obs.is_recording() {
        obs.counter("form.static_before", form_stats.static_before);
        obs.counter("form.static_after", form_stats.static_after);
        obs.counter("compact.static_instrs", compacted.total_items());
    }
    Ok(SchemeRun {
        scheme,
        cycles: out.cycles,
        cycles_icache: out.cycles_with_icache(),
        miss_rate: icache.miss_rate(),
        accesses: icache.accesses,
        misses: icache.misses,
        sb_stats: out.sb_stats,
        static_instrs: compacted.total_items(),
        form_stats,
        counts: out.exec.counts,
        guard: guarded.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_suite::{benchmark_by_name, Scale};

    #[test]
    fn full_methodology_on_wc() {
        let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let bb = run_scheme(&bench, Scheme::BasicBlock, &config).unwrap();
        let m4 = run_scheme(&bench, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&bench, Scheme::P4, &config).unwrap();
        assert!(m4.cycles < bb.cycles, "M4 {} !< BB {}", m4.cycles, bb.cycles);
        assert!(p4.cycles < bb.cycles, "P4 {} !< BB {}", p4.cycles, bb.cycles);
        assert!(p4.sb_stats.avg_blocks_executed() > bb.sb_stats.avg_blocks_executed());
        assert!(p4.static_instrs >= bb.static_instrs);
        assert!(p4.miss_rate >= 0.0 && p4.miss_rate < 1.0);
        // The runs went through the guarded pipeline and were clean.
        assert!(bb.guard.clean() && m4.guard.clean() && p4.guard.clean());
    }

    #[test]
    fn micro_benchmarks_strongly_favor_paths() {
        let bench = benchmark_by_name("alt", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let m4 = run_scheme(&bench, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&bench, Scheme::P4, &config).unwrap();
        assert!(
            p4.cycles < m4.cycles,
            "alt: P4 {} !< M4 {} (path profiles must exploit the TTTF pattern)",
            p4.cycles,
            m4.cycles
        );
    }
}
