//! The per-figure experiment drivers and the parallel experiment engine.
//!
//! Every driver (`table1`, `fig4`…`fig7`, `missrates`, `ablate`) walks its
//! benchmark × scheme matrix through a [`RunCtx`]. The context can service
//! those walks three ways:
//!
//! - **Direct** — execute each cell inline (the serial path).
//! - **Plan** — record which cells the driver asks for, returning
//!   placeholder results. Driver control flow is data-independent, so one
//!   plan walk discovers the exact cell list of the real run.
//! - **Replay** — answer each cell from precomputed results.
//!
//! [`run_experiment_jobs`] composes them: plan the cells, execute the
//! unique ones across a scoped-thread pool ([`crate::pool`]) with each cell
//! recording into a private forked `Obs` sink, then replay the driver,
//! absorbing each cell's sink in matrix order. Because replay order never
//! depends on the job count, the rendered tables and the merged metrics
//! registry are byte-identical for any `--jobs` value.

use crate::pool;
use crate::report::{incident_table, millions, percent, ratio, Table};
use crate::runner::{run_scheme, run_scheme_obs, ProfileCache, RunConfig, RunError, SchemeRun};
use pps_core::config::Scheme;
use pps_core::{GuardMode, Incident};
use pps_machine::MachineConfig;
use pps_obs::Obs;
use pps_suite::{all_benchmarks, Benchmark, Scale};
use std::collections::HashMap;

/// All experiment identifiers accepted by the harness binary.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "fig4", "fig5", "fig6", "fig7", "missrates", "ablate", "tracecache", "predict",
    "diverge",
];

/// Selects benchmarks, optionally filtered by name.
pub fn select_benchmarks(scale: Scale, filter: Option<&str>) -> Vec<Benchmark> {
    all_benchmarks(scale)
        .into_iter()
        .filter(|b| filter.is_none_or(|f| f == b.name))
        .collect()
}

/// Identity of one benchmark × scheme × configuration cell. The config's
/// `Debug` rendering keys ablation variants apart.
type CellKey = (String, String, String);

fn cell_key(bench: &Benchmark, scheme: Scheme, config: &RunConfig) -> CellKey {
    (bench.name.to_string(), scheme.name(), config_fingerprint(config))
}

/// A deterministic identity string for a config variant. The derived
/// `Debug` won't do for `preloaded` profiles: their `HashMap`s iterate in
/// a per-instance order, and the plan / execute / replay walks each
/// retrain their own instances — so the pair is keyed by its canonical
/// content hash instead.
fn config_fingerprint(config: &RunConfig) -> String {
    let preloaded = config
        .preloaded
        .as_ref()
        .map(|p| pps_profile::profile_pair_hash(&p.0, &p.1));
    let mut slim = config.clone();
    slim.preloaded = None;
    format!("{slim:?} preloaded={preloaded:?}")
}

/// One cell the plan pass discovered.
#[derive(Debug, Clone)]
struct PlannedCell {
    bench: String,
    scheme: Scheme,
    config: RunConfig,
}

/// One executed cell awaiting replay: its result and the private `Obs`
/// fork it recorded into.
#[derive(Debug, Clone)]
struct ExecutedCell {
    result: Result<SchemeRun, RunError>,
    fork: Obs,
    absorbed: bool,
}

/// How a [`RunCtx`] services `run` calls (see the module docs).
#[derive(Debug, Clone, Default)]
enum CtxMode {
    /// Execute each cell inline.
    #[default]
    Direct,
    /// Record requested cells; return placeholders.
    Plan(Vec<PlannedCell>),
    /// Answer from precomputed results, absorbing each cell's sink once.
    Replay(HashMap<CellKey, ExecutedCell>),
}

/// Sweep context: the shared [`RunConfig`] plus every guardrail incident
/// collected across the sweep's runs, tagged with benchmark and scheme.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    /// Base configuration for every run of the sweep.
    pub config: RunConfig,
    /// `(benchmark, scheme, incident)` for every incident recorded.
    pub incidents: Vec<(String, String, Incident)>,
    /// Observability handle every run records into (no-op by default).
    pub obs: Obs,
    /// Per-benchmark trained-profile cache shared by every run of the
    /// sweep: a benchmark fanned across several schemes trains once.
    pub profiles: ProfileCache,
    mode: CtxMode,
}

impl RunCtx {
    /// The paper's configuration under the given guard mode.
    pub fn paper(mode: GuardMode) -> Self {
        let mut config = RunConfig::paper();
        config.guard.mode = mode;
        RunCtx { config, ..RunCtx::default() }
    }

    /// Runs `bench` × `scheme` under the context's own configuration.
    pub fn run(&mut self, bench: &Benchmark, scheme: Scheme) -> Result<SchemeRun, RunError> {
        let config = self.config.clone();
        self.run_with(bench, scheme, &config)
    }

    /// Runs `bench` × `scheme` under a configuration variant (ablations),
    /// still collecting its incidents into this context.
    pub fn run_with(
        &mut self,
        bench: &Benchmark,
        scheme: Scheme,
        config: &RunConfig,
    ) -> Result<SchemeRun, RunError> {
        match &mut self.mode {
            CtxMode::Direct => {
                let filled = self.profiles.fill(bench, scheme, config)?;
                let r = run_scheme_obs(bench, scheme, &filled, &self.obs)?;
                for inc in &r.guard.incidents {
                    self.incidents
                        .push((bench.name.to_string(), scheme.name(), inc.clone()));
                }
                Ok(r)
            }
            CtxMode::Plan(cells) => {
                let key = cell_key(bench, scheme, config);
                if !cells.iter().any(|c| cell_matches(c, &key)) {
                    cells.push(PlannedCell {
                        bench: bench.name.to_string(),
                        scheme,
                        config: config.clone(),
                    });
                }
                Ok(placeholder_run(scheme))
            }
            CtxMode::Replay(cells) => {
                let key = cell_key(bench, scheme, config);
                let cell = cells.get_mut(&key).expect("replayed cell was planned");
                // Absorb before inspecting the result so a failed cell's
                // partial metrics merge exactly as the direct path records
                // them. Repeat cells were executed once; their sink is
                // drained, so re-absorbing is a no-op.
                if !cell.absorbed {
                    cell.absorbed = true;
                    self.obs.absorb(&cell.fork);
                }
                let r = cell.result.clone()?;
                for inc in &r.guard.incidents {
                    self.incidents
                        .push((bench.name.to_string(), scheme.name(), inc.clone()));
                }
                Ok(r)
            }
        }
    }
}

fn cell_matches(cell: &PlannedCell, key: &CellKey) -> bool {
    cell.bench == key.0 && cell.scheme.name() == key.1 && config_fingerprint(&cell.config) == key.2
}

/// An empty [`SchemeRun`] for the plan pass. Drivers may do arithmetic on
/// it while planning (ratios of zeros and the like); the resulting tables
/// are discarded — only the recorded cell list matters.
fn placeholder_run(scheme: Scheme) -> SchemeRun {
    SchemeRun {
        scheme,
        cycles: 0,
        cycles_icache: 0,
        miss_rate: 0.0,
        accesses: 0,
        misses: 0,
        sb_stats: Default::default(),
        static_instrs: 0,
        form_stats: Default::default(),
        counts: Default::default(),
        guard: Default::default(),
    }
}

/// Runs one experiment by id, returning the rendered tables. When any run
/// degraded a procedure, an incident table is appended after the
/// experiment's own tables.
///
/// # Errors
/// Returns the first [`RunError`] — in [`GuardMode::Strict`] that includes
/// any procedure failing its post-pass checks.
///
/// # Panics
/// Panics on an unknown experiment id.
pub fn run_experiment(
    id: &str,
    scale: Scale,
    filter: Option<&str>,
    mode: GuardMode,
) -> Result<Vec<Table>, RunError> {
    run_experiment_obs(id, scale, filter, mode, &Obs::noop())
}

/// [`run_experiment`] with observability: the experiment runs under an
/// `experiment` span and every scheme run records its spans and metrics
/// into `obs` (see [`run_scheme_obs`]).
///
/// # Errors
/// As [`run_experiment`].
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_obs(
    id: &str,
    scale: Scale,
    filter: Option<&str>,
    mode: GuardMode,
    obs: &Obs,
) -> Result<Vec<Table>, RunError> {
    let _span = obs.span("experiment").arg("id", id);
    let benches = select_benchmarks(scale, filter);
    let mut ctx = RunCtx::paper(mode);
    ctx.obs = obs.clone();
    let mut tables = build_tables(id, &benches, &mut ctx)?;
    if !ctx.incidents.is_empty() {
        tables.push(incident_table(&ctx.incidents));
    }
    Ok(tables)
}

/// Dispatches an experiment id to its driver under the given context.
fn build_tables(
    id: &str,
    benches: &[Benchmark],
    ctx: &mut RunCtx,
) -> Result<Vec<Table>, RunError> {
    Ok(match id {
        "table1" => vec![table1(benches, ctx)?],
        "fig4" => vec![fig4(benches, ctx)?],
        "fig5" => vec![fig5(benches, ctx)?],
        "fig6" => vec![fig6(benches, ctx)?],
        "fig7" => vec![fig7(benches, ctx)?],
        "missrates" => vec![missrates(benches, ctx)?],
        "diverge" => vec![diverge(benches, ctx)?],
        "ablate" => ablate(benches, ctx)?,
        "tracecache" => vec![tracecache(benches)?],
        "predict" => vec![predict(benches)?],
        other => panic!("unknown experiment `{other}`; try one of {EXPERIMENTS:?}"),
    })
}

/// [`run_experiment_obs`] with the experiment's benchmark × scheme cells
/// executed across `jobs` worker threads (see the module docs for the
/// plan → execute → replay engine). Output — rendered tables, collected
/// incidents, and the metrics merged into `obs` — is byte-identical for
/// every `jobs` value, including 1.
///
/// # Errors
/// As [`run_experiment`]: the first failing cell in matrix order.
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_jobs(
    id: &str,
    scale: Scale,
    filter: Option<&str>,
    mode: GuardMode,
    jobs: usize,
    obs: &Obs,
) -> Result<Vec<Table>, RunError> {
    let mut config = RunConfig::paper();
    config.guard.mode = mode;
    run_experiment_jobs_config(id, scale, filter, &config, jobs, obs)
}

/// [`run_experiment_jobs`] with a caller-supplied base [`RunConfig`]
/// (fault-injection seeds, machine variants) instead of the paper default.
///
/// # Errors
/// As [`run_experiment_jobs`].
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_jobs_config(
    id: &str,
    scale: Scale,
    filter: Option<&str>,
    config: &RunConfig,
    jobs: usize,
    obs: &Obs,
) -> Result<Vec<Table>, RunError> {
    let _span = obs.span("experiment").arg("id", id).arg("jobs", jobs as u64);
    let benches = select_benchmarks(scale, filter);

    // `tracecache` and `predict` drive their own executions without a
    // context; they run inline exactly once (trivially job-count
    // independent).
    if id == "tracecache" {
        return Ok(vec![tracecache(&benches)?]);
    }
    if id == "predict" {
        return Ok(vec![predict(&benches)?]);
    }

    // Pass 1 (plan): walk the driver with placeholder results to discover
    // the unique cells of its matrix, in matrix order.
    let mut plan_ctx = RunCtx {
        config: config.clone(),
        mode: CtxMode::Plan(Vec::new()),
        ..RunCtx::default()
    };
    build_tables(id, &benches, &mut plan_ctx)?;
    let CtxMode::Plan(planned) = plan_ctx.mode else { unreachable!("plan mode preserved") };

    // Pass 2 (execute): run every unique cell across the pool. Each cell
    // records into a private fork of `obs`, so workers never contend on or
    // interleave into the parent sink. The profile cache is shared across
    // workers: each benchmark trains once (per racing worker at worst) no
    // matter how many schemes fan out from it.
    let profiles = ProfileCache::default();
    let executed: Vec<(CellKey, ExecutedCell)> = pool::run_indexed(jobs, planned.len(), |i| {
        let cell = &planned[i];
        let bench = benches
            .iter()
            .find(|b| b.name == cell.bench)
            .expect("planned bench selected");
        let fork = obs.fork_sink();
        let result = profiles
            .fill(bench, cell.scheme, &cell.config)
            .and_then(|filled| run_scheme_obs(bench, cell.scheme, &filled, &fork));
        (cell_key(bench, cell.scheme, &cell.config), ExecutedCell { result, fork, absorbed: false })
    });

    // Pass 3 (replay): walk the driver again, answering each cell from the
    // executed results and absorbing each cell's sink on first use — the
    // absorb order is the matrix order, independent of the job count.
    let mut ctx = RunCtx {
        config: config.clone(),
        obs: obs.clone(),
        mode: CtxMode::Replay(executed.into_iter().collect()),
        ..RunCtx::default()
    };
    let mut tables = build_tables(id, &benches, &mut ctx)?;
    if !ctx.incidents.is_empty() {
        tables.push(incident_table(&ctx.incidents));
    }
    Ok(tables)
}

/// Table 1: benchmark statistics under basic-block scheduling.
pub fn table1(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "Table 1: benchmarks, data sets, statistics (basic-block scheduled; counts in millions)",
        &["benchmark", "size(instrs)", "branches(M)", "cycles(M)", "instrs(M)"],
    );
    for b in benches {
        let r = ctx.run(b, Scheme::BasicBlock)?;
        t.row(vec![
            b.name.to_string(),
            r.static_instrs.to_string(),
            millions(r.counts.branches),
            millions(r.cycles),
            millions(r.counts.instrs),
        ]);
    }
    Ok(t)
}

/// Figure 4: path-scheme cycle counts vs M4 with a perfect I-cache — the
/// paper's P4 column plus the extension schemes (k-iteration `Pk2`/`Pk3`,
/// interprocedural `Px4`).
pub fn fig4(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "Figure 4: cycle counts, path schemes normalized to M4, ideal I-cache",
        &["benchmark", "M4 cycles", "P4", "Pk2", "Pk3", "Px4", "P4/M4", "Pk2/M4", "Px4/M4"],
    );
    for b in benches {
        let m4 = ctx.run(b, Scheme::M4)?;
        let p4 = ctx.run(b, Scheme::P4)?;
        let pk2 = ctx.run(b, Scheme::PK2)?;
        let pk3 = ctx.run(b, Scheme::PK3)?;
        let px4 = ctx.run(b, Scheme::PX4)?;
        t.row(vec![
            b.name.to_string(),
            m4.cycles.to_string(),
            p4.cycles.to_string(),
            pk2.cycles.to_string(),
            pk3.cycles.to_string(),
            px4.cycles.to_string(),
            ratio(p4.cycles, m4.cycles),
            ratio(pk2.cycles, m4.cycles),
            ratio(px4.cycles, m4.cycles),
        ]);
    }
    Ok(t)
}

/// Figure 5: P4 and P4e vs M4 with the 32KB direct-mapped I-cache.
pub fn fig5(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "Figure 5: cycle counts with 32KB I-cache, normalized to M4",
        &["benchmark", "M4", "P4", "P4e", "Pk2", "Px4", "P4/M4", "P4e/M4", "Pk2/M4", "Px4/M4"],
    );
    for b in benches {
        if b.category == pps_suite::Category::Micro {
            // The paper omits micros here: "they are so small that they
            // always fit in the cache".
            continue;
        }
        let m4 = ctx.run(b, Scheme::M4)?;
        let p4 = ctx.run(b, Scheme::P4)?;
        let p4e = ctx.run(b, Scheme::P4E)?;
        let pk2 = ctx.run(b, Scheme::PK2)?;
        let px4 = ctx.run(b, Scheme::PX4)?;
        t.row(vec![
            b.name.to_string(),
            m4.cycles_icache.to_string(),
            p4.cycles_icache.to_string(),
            p4e.cycles_icache.to_string(),
            pk2.cycles_icache.to_string(),
            px4.cycles_icache.to_string(),
            ratio(p4.cycles_icache, m4.cycles_icache),
            ratio(p4e.cycles_icache, m4.cycles_icache),
            ratio(pk2.cycles_icache, m4.cycles_icache),
            ratio(px4.cycles_icache, m4.cycles_icache),
        ]);
    }
    Ok(t)
}

/// Figure 6: P4e vs M16 with the I-cache (paths with limited unrolling
/// against aggressive unrolling).
pub fn fig6(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "Figure 6: cycle counts with 32KB I-cache, normalized to M4",
        &["benchmark", "M4", "M16", "P4e", "Pk2", "Px4", "M16/M4", "P4e/M4", "Pk2/M4", "Px4/M4"],
    );
    for b in benches {
        if b.category == pps_suite::Category::Micro {
            continue;
        }
        let m4 = ctx.run(b, Scheme::M4)?;
        let m16 = ctx.run(b, Scheme::M16)?;
        let p4e = ctx.run(b, Scheme::P4E)?;
        let pk2 = ctx.run(b, Scheme::PK2)?;
        let px4 = ctx.run(b, Scheme::PX4)?;
        t.row(vec![
            b.name.to_string(),
            m4.cycles_icache.to_string(),
            m16.cycles_icache.to_string(),
            p4e.cycles_icache.to_string(),
            pk2.cycles_icache.to_string(),
            px4.cycles_icache.to_string(),
            ratio(m16.cycles_icache, m4.cycles_icache),
            ratio(p4e.cycles_icache, m4.cycles_icache),
            ratio(pk2.cycles_icache, m4.cycles_icache),
            ratio(px4.cycles_icache, m4.cycles_icache),
        ]);
    }
    Ok(t)
}

/// Figure 7: average basic blocks executed per dynamic superblock (and the
/// average superblock size), for M4, M16, P4e, P4 — in the paper's
/// left-to-right bar order.
pub fn fig7(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "Figure 7: avg blocks executed per dynamic superblock / avg superblock size",
        &[
            "benchmark",
            "M4 avg", "M4 size",
            "M16 avg", "M16 size",
            "P4e avg", "P4e size",
            "P4 avg", "P4 size",
            "Pk2 avg", "Pk2 size",
            "Px4 avg", "Px4 size",
        ],
    );
    for b in benches {
        let mut cells = vec![b.name.to_string()];
        for scheme in
            [Scheme::M4, Scheme::M16, Scheme::P4E, Scheme::P4, Scheme::PK2, Scheme::PX4]
        {
            let r = ctx.run(b, scheme)?;
            cells.push(format!("{:.2}", r.sb_stats.avg_blocks_executed()));
            cells.push(format!("{:.2}", r.sb_stats.avg_size()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// In-text miss-rate study (the paper quotes gcc and go).
pub fn missrates(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    let mut t = Table::new(
        "I-cache miss rates per scheme (32KB direct-mapped, 32B lines)",
        &["benchmark", "M4", "M16", "P4", "P4e", "static M4", "static P4"],
    );
    for b in benches {
        if b.category == pps_suite::Category::Micro {
            continue;
        }
        let m4 = ctx.run(b, Scheme::M4)?;
        let m16 = ctx.run(b, Scheme::M16)?;
        let p4 = ctx.run(b, Scheme::P4)?;
        let p4e = ctx.run(b, Scheme::P4E)?;
        t.row(vec![
            b.name.to_string(),
            percent(m4.miss_rate),
            percent(m16.miss_rate),
            percent(p4.miss_rate),
            percent(p4e.miss_rate),
            m4.static_instrs.to_string(),
            p4.static_instrs.to_string(),
        ]);
    }
    Ok(t)
}

/// Weight-inverted copy of a path profile: every maximal window's count
/// becomes `max + 1 - count`, so the hot set becomes the cold set with the
/// same shape (the serve load generator's drift phase uses the same
/// construction to trip the continuous-PGO loop).
fn invert_path(path: &pps_profile::PathProfile) -> pps_profile::PathProfile {
    use pps_ir::ProcId;
    let per_proc: Vec<Vec<(Vec<_>, u64)>> = (0..path.num_procs())
        .map(|pi| {
            let windows = path.iter_maximal_windows(ProcId::new(pi as u32));
            let max = windows.iter().map(|(_, c)| *c).max().unwrap_or(0);
            windows.into_iter().map(|(w, c)| (w, max + 1 - c)).collect()
        })
        .collect();
    pps_profile::PathProfile::from_windows(path.depth(), per_proc)
}

/// Train/test divergence sweep: how each path-consuming scheme degrades
/// when its training profile diverges from the test workload. Three
/// regimes per scheme: `true` (the paper's methodology — train on the
/// training input), `inverted` (adversarial: the path profile's hot set
/// becomes its cold set), and `mixed` (phase-changing workload: true and
/// inverted mass merged, as a run whose behavior flips halfway through
/// would train). The edge profile stays true throughout, isolating the
/// path-profile contribution; ratios above 1.000 measure how much each
/// scheme trusts its path profile.
pub fn diverge(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Table, RunError> {
    use pps_profile::merge_paths;
    let mut t = Table::new(
        "Divergence sweep: cycles under true / inverted / phase-mixed path profiles \
         (ideal I-cache)",
        &["benchmark", "scheme", "true", "inverted", "mixed", "inv/true", "mix/true"],
    );
    for b in benches {
        for scheme in [Scheme::P4, Scheme::PK2, Scheme::PK3] {
            let truth = ctx.run(b, scheme)?;
            // The adversarial pairs derive from the same training run the
            // true regime used (the shared profile cache makes this one
            // training run per scheme kind, deterministic across plan /
            // execute / replay walks).
            let filled = ctx.profiles.fill(b, scheme, &ctx.config)?;
            let pair = filled.preloaded.clone().expect("fill preloads a pair");
            let inverted = invert_path(&pair.1);
            let mixed = merge_paths(&pair.1, &inverted).expect("same program, same depth");
            let inv_cfg = RunConfig {
                preloaded: Some(std::sync::Arc::new((pair.0.clone(), inverted))),
                ..ctx.config.clone()
            };
            let mix_cfg = RunConfig {
                preloaded: Some(std::sync::Arc::new((pair.0.clone(), mixed))),
                ..ctx.config.clone()
            };
            let inv = ctx.run_with(b, scheme, &inv_cfg)?;
            let mix = ctx.run_with(b, scheme, &mix_cfg)?;
            t.row(vec![
                b.name.to_string(),
                scheme.name(),
                truth.cycles.to_string(),
                inv.cycles.to_string(),
                mix.cycles.to_string(),
                ratio(inv.cycles, truth.cycles),
                ratio(mix.cycles, truth.cycles),
            ]);
        }
    }
    Ok(t)
}

/// Ablations: realistic latencies (paper: the path benefit grows), and the
/// compactor features (renaming, speculation) turned off.
pub fn ablate(benches: &[Benchmark], ctx: &mut RunCtx) -> Result<Vec<Table>, RunError> {
    let mut tables = Vec::new();

    // Realistic latencies.
    let mut t = Table::new(
        "Ablation: realistic latencies (load 3, mul 3, div 8) — P4/M4, ideal I-cache",
        &["benchmark", "unit P4/M4", "realistic P4/M4"],
    );
    for b in benches {
        let unit = ctx.config.clone();
        let real = RunConfig { machine: MachineConfig::realistic(), ..ctx.config.clone() };
        let m4u = ctx.run_with(b, Scheme::M4, &unit)?;
        let p4u = ctx.run_with(b, Scheme::P4, &unit)?;
        let m4r = ctx.run_with(b, Scheme::M4, &real)?;
        let p4r = ctx.run_with(b, Scheme::P4, &real)?;
        t.row(vec![
            b.name.to_string(),
            ratio(p4u.cycles, m4u.cycles),
            ratio(p4r.cycles, m4r.cycles),
        ]);
    }
    tables.push(t);

    // Compactor features off (P4 formation held fixed).
    let mut t = Table::new(
        "Ablation: compactor features (P4 cycles normalized to full compactor)",
        &["benchmark", "full", "no renaming", "no speculation"],
    );
    for b in benches {
        let full = ctx.run(b, Scheme::P4)?;
        let mut norename = ctx.config.clone();
        norename.compact.renaming = false;
        norename.compact.move_renaming = false;
        let nr = ctx.run_with(b, Scheme::P4, &norename)?;
        let mut nospec = ctx.config.clone();
        nospec.compact.speculate_loads = false;
        let ns = ctx.run_with(b, Scheme::P4, &nospec)?;
        t.row(vec![
            b.name.to_string(),
            "1.000".to_string(),
            ratio(nr.cycles, full.cycles),
            ratio(ns.cycles, full.cycles),
        ]);
    }
    tables.push(t);

    // Upward trace growth (paper footnote 2 predicts no noticeable
    // change).
    let mut t = Table::new(
        "Ablation: upward path-trace growth (footnote 2) — P4 cycles, ideal I-cache",
        &["benchmark", "downward only", "with upward", "ratio"],
    );
    for b in benches {
        let down = ctx.run(b, Scheme::P4)?;
        let mut up_cfg = ctx.config.clone();
        up_cfg.form.upward_growth = true;
        let up = ctx.run_with(b, Scheme::P4, &up_cfg)?;
        t.row(vec![
            b.name.to_string(),
            down.cycles.to_string(),
            up.cycles.to_string(),
            ratio(up.cycles, down.cycles),
        ]);
    }
    tables.push(t);

    // Enlargement-threshold sweep (path completion threshold).
    let mut t = Table::new(
        "Ablation: P4 completion-frequency threshold sweep (cycles, ideal I-cache)",
        &["benchmark", "thr 0.5", "thr 0.8", "thr 0.95"],
    );
    for b in benches {
        let mut cells = vec![b.name.to_string()];
        for thr in [0.5, 0.8, 0.95] {
            let mut cfg = ctx.config.clone();
            cfg.form.completion_threshold = thr;
            let r = ctx.run_with(b, Scheme::P4, &cfg)?;
            cells.push(r.cycles.to_string());
        }
        t.row(cells);
    }
    tables.push(t);
    Ok(tables)
}

/// Convenience: the four scheme runs of the paper's main comparison, for
/// one benchmark (used by integration tests and examples).
pub fn main_comparison(bench: &Benchmark) -> Result<[SchemeRun; 4], RunError> {
    let config = RunConfig::paper();
    Ok([
        run_scheme(bench, Scheme::M4, &config)?,
        run_scheme(bench, Scheme::M16, &config)?,
        run_scheme(bench, Scheme::P4E, &config)?,
        run_scheme(bench, Scheme::P4, &config)?,
    ])
}

/// §6 extension: hardware trace-cache effectiveness over the block streams
/// of the original and software-formed programs. Measures whether software
/// superblock formation helps a Rotenberg-style trace cache.
pub fn tracecache(benches: &[Benchmark]) -> Result<Table, RunError> {
    use pps_core::{form_program, FormConfig};
    use pps_ir::interp::ExecConfig;
    use pps_ir::trace::TeeSink;
    use pps_ir::Exec;
    use pps_profile::{EdgeProfiler, PathProfiler};
    use pps_sim::{TraceCacheConfig, TraceCacheSim};

    let mut t = Table::new(
        "Extension (paper §6): 64-entry trace cache over the dynamic block stream",
        &["benchmark", "BB hit%", "M4 hit%", "P4 hit%", "BB cover%", "P4 cover%"],
    );
    for b in benches {
        let mut cells = vec![b.name.to_string()];
        let mut hits = Vec::new();
        let mut covers = Vec::new();
        for scheme in [Scheme::BasicBlock, Scheme::M4, Scheme::P4] {
            let mut program = b.program.clone();
            let mut tee = TeeSink::new(
                EdgeProfiler::new(&program),
                PathProfiler::new(&program, 15),
            );
            Exec::new(&program, ExecConfig::default())
                .run_traced(&b.train_args, &mut tee)
                .map_err(|error| RunError::Exec {
                    bench: b.name.to_string(),
                    stage: "train run",
                    error,
                })?;
            form_program(
                &mut program,
                &tee.a.finish(),
                Some(&tee.b.finish()),
                scheme,
                &FormConfig::default(),
            )
            .map_err(|error| RunError::Pipeline { bench: b.name.to_string(), error })?;
            let mut sim = TraceCacheSim::new(&program, TraceCacheConfig::default());
            Exec::new(&program, ExecConfig::default())
                .run_traced(&b.test_args, &mut sim)
                .map_err(|error| RunError::Exec {
                    bench: b.name.to_string(),
                    stage: "test run",
                    error,
                })?;
            let stats = sim.finish();
            hits.push(stats.hit_rate());
            covers.push(stats.instr_coverage());
        }
        for h in &hits {
            cells.push(percent(*h));
        }
        cells.push(percent(covers[0]));
        cells.push(percent(covers[2]));
        t.row(cells);
    }
    Ok(t)
}

/// Companion-work extension: static branch prediction accuracy, edge
/// majority vs path-context (Young & Smith, ASPLOS 1994 — the paper's
/// reference [20] and the origin of the `corr` microbenchmark). Trained on
/// the training input, evaluated on the testing input.
pub fn predict(benches: &[Benchmark]) -> Result<Table, RunError> {
    use pps_ir::interp::ExecConfig;
    use pps_ir::trace::TeeSink;
    use pps_ir::Exec;
    use pps_profile::predict::{evaluate, EdgePredictor, PathPredictor};
    use pps_profile::{EdgeProfiler, PathProfiler};

    let exec_err = |bench: &str, stage: &'static str| {
        let bench = bench.to_string();
        move |error| RunError::Exec { bench, stage, error }
    };
    let mut t = Table::new(
        "Extension (ref [20]): static branch misprediction, edge majority vs path context",
        &["benchmark", "edge miss%", "path miss%", "branches(M)"],
    );
    for b in benches {
        let program = &b.program;
        let mut tee = TeeSink::new(EdgeProfiler::new(program), PathProfiler::new(program, 15));
        Exec::new(program, ExecConfig::default())
            .run_traced(&b.train_args, &mut tee)
            .map_err(exec_err(b.name, "train run"))?;
        let edge = tee.a.finish();
        let path = tee.b.finish();

        let ep = EdgePredictor::from_profile(program, &edge);
        let e = evaluate(program, &ep, 8, &b.test_args).map_err(exec_err(b.name, "edge eval"))?;
        let pp = PathPredictor::new(program, &path, 8);
        let p = evaluate(program, &pp, 8, &b.test_args).map_err(exec_err(b.name, "path eval"))?;
        t.row(vec![
            b.name.to_string(),
            percent(e.miss_rate()),
            percent(p.miss_rate()),
            millions(e.branches),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_all_run_on_one_benchmark() {
        for id in EXPERIMENTS {
            // `ablate` is heavy; use the smallest scale and one benchmark.
            let tables =
                run_experiment(id, Scale::quick(), Some("wc"), GuardMode::Strict).unwrap();
            assert!(!tables.is_empty(), "{id}");
            for t in &tables {
                let rendered = t.render();
                assert!(rendered.contains("=="), "{id} renders");
            }
        }
    }

    #[test]
    fn table1_covers_all_benchmarks() {
        let benches = select_benchmarks(Scale::quick(), None);
        assert_eq!(benches.len(), 14);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run_experiment("nope", Scale::quick(), None, GuardMode::Degrade);
    }

    #[test]
    fn plan_pass_discovers_cells_without_executing() {
        let benches = select_benchmarks(Scale::quick(), Some("wc"));
        let mut ctx = RunCtx {
            config: RunConfig::paper(),
            mode: CtxMode::Plan(Vec::new()),
            ..RunCtx::default()
        };
        build_tables("fig4", &benches, &mut ctx).unwrap();
        let CtxMode::Plan(cells) = &ctx.mode else { panic!("mode changed") };
        // fig4 runs M4, P4, Pk2, Pk3 and Px4 per benchmark.
        assert_eq!(cells.len(), 5);
        assert!(cells.iter().all(|c| c.bench == "wc"));
        assert!(ctx.incidents.is_empty());
    }

    #[test]
    fn repeated_cells_plan_once() {
        // `ablate` asks for (wc, P4, paper-config) from several of its
        // tables; planning must dedupe it while keeping variants distinct.
        let benches = select_benchmarks(Scale::quick(), Some("wc"));
        let mut ctx = RunCtx {
            config: RunConfig::paper(),
            mode: CtxMode::Plan(Vec::new()),
            ..RunCtx::default()
        };
        build_tables("ablate", &benches, &mut ctx).unwrap();
        let CtxMode::Plan(cells) = &ctx.mode else { panic!("mode changed") };
        let p4_paper = cells
            .iter()
            .filter(|c| cell_matches(c, &cell_key(&benches[0], Scheme::P4, &RunConfig::paper())))
            .count();
        assert_eq!(p4_paper, 1, "repeated paper-config P4 cell planned once");
        assert!(cells.len() > 4, "config variants stay distinct cells");
    }

    #[test]
    fn jobs_engine_matches_itself_across_job_counts() {
        let render = |jobs: usize| {
            let tables =
                run_experiment_jobs("fig4", Scale::quick(), Some("wc"), GuardMode::Degrade, jobs, &Obs::noop())
                    .unwrap();
            tables.iter().map(Table::render).collect::<Vec<_>>().join("\n")
        };
        let serial = render(1);
        let parallel = render(4);
        assert_eq!(serial, parallel);
        assert!(serial.contains("wc"));
    }
}
