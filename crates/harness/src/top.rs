//! `pps-harness top`: a live terminal dashboard for a `pps-serve` daemon
//! running with `--telemetry-addr`.
//!
//! Each poll does two HTTP GETs against the telemetry listener:
//!
//! - `/metrics` — parsed **and validated** with [`pps_obs::expo`] (series
//!   finite, histogram buckets cumulative and `+Inf`-terminated, `_count`
//!   consistent); request-rate and error-rate are counter *deltas*
//!   between consecutive scrapes, the same arithmetic a Prometheus
//!   `rate()` does;
//! - `/health` — the daemon's snapshot plus windowed rates and latency
//!   quantiles over the recent past (see
//!   [`pps_obs::WindowedRegistry`]).
//!
//! The default view repaints an ANSI dashboard per interval. With
//! `--watch-json` it instead emits one machine-readable JSON line per
//! poll (schema `pps-top` v1) — that mode doubles as the CI scrape
//! validator: any malformed exposition or unreachable endpoint is a hard
//! error, not a rendering detail.

use pps_obs::expo::{self, ExpoDoc};
use pps_obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Dashboard configuration (`pps-harness top` flags).
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Telemetry listener address (`HOST:PORT`).
    pub addr: String,
    /// Poll interval.
    pub interval: Duration,
    /// Stop after this many polls (`None` = until interrupted).
    pub iterations: Option<u64>,
    /// Emit one JSON line per poll instead of repainting the dashboard.
    pub json: bool,
}

impl Default for TopConfig {
    fn default() -> Self {
        TopConfig {
            addr: "127.0.0.1:9100".to_string(),
            interval: Duration::from_millis(1000),
            iterations: None,
            json: false,
        }
    }
}

/// One HTTP GET over a fresh connection; returns the body of a 200 reply.
///
/// # Errors
/// Connect/read failures, non-200 statuses, and malformed responses.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).map_err(|e| format!("GET {path}: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("read {path}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: missing header terminator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{path}: {status}"));
    }
    Ok(body.to_string())
}

/// Everything one poll extracted from the two endpoints.
#[derive(Debug, Clone)]
pub struct TopSample {
    at: Instant,
    /// Sum of `serve_requests_total` across labels.
    requests_total: f64,
    /// ... with error outcomes (not ok, not busy).
    errors_total: f64,
    /// ... with the busy outcome.
    busy_total: f64,
    /// Series count in the validated exposition.
    pub series: usize,
    /// The parsed `/health` document.
    pub health: Json,
}

fn outcome_of(labels: &[(String, String)]) -> &str {
    labels.iter().find(|(k, _)| k == "outcome").map_or("ok", |(_, v)| v.as_str())
}

fn sum_requests(doc: &ExpoDoc) -> (f64, f64, f64) {
    let (mut total, mut errors, mut busy) = (0.0, 0.0, 0.0);
    for s in doc.by_name("serve_requests_total") {
        total += s.value;
        match outcome_of(&s.labels) {
            "ok" => {}
            "busy" => busy += s.value,
            _ => errors += s.value,
        }
    }
    (total, errors, busy)
}

/// Polls both endpoints once and validates the exposition.
///
/// # Errors
/// Unreachable endpoints, non-200 replies, exposition parse/validation
/// failures, or unparseable health JSON — all fatal by design.
pub fn poll(addr: &str, timeout: Duration) -> Result<TopSample, String> {
    let exposition = http_get(addr, "/metrics", timeout)?;
    let doc = expo::parse(&exposition).map_err(|e| format!("/metrics parse: {e}"))?;
    expo::validate(&doc).map_err(|e| format!("/metrics validate: {e}"))?;
    let health_text = http_get(addr, "/health", timeout)?;
    let health = json::parse(&health_text).map_err(|e| format!("/health parse: {e}"))?;
    let (requests_total, errors_total, busy_total) = sum_requests(&doc);
    Ok(TopSample {
        at: Instant::now(),
        requests_total,
        errors_total,
        busy_total,
        series: doc.samples.len(),
        health,
    })
}

fn num(j: &Json, path: &[&str]) -> f64 {
    let mut cur = j;
    for key in path {
        match cur.get(key) {
            Some(v) => cur = v,
            None => return 0.0,
        }
    }
    cur.as_num().unwrap_or(0.0)
}

/// Derived view of one poll (deltas against the previous one, windowed
/// numbers from `/health`).
#[derive(Debug, Clone, Default)]
pub struct TopView {
    /// Requests/s from the counter delta between the last two scrapes
    /// (0 on the first poll).
    pub scrape_rps: f64,
    /// Error replies/s from the counter delta.
    pub scrape_error_rps: f64,
    /// Busy replies/s from the counter delta.
    pub scrape_busy_rps: f64,
    /// Requests/s over the daemon's rolling window.
    pub window_rps: f64,
    /// Error replies/s over the window.
    pub window_error_rps: f64,
    /// Busy replies/s over the window.
    pub window_busy_rps: f64,
    /// Windowed latency quantiles, milliseconds: (p50, p90, p95, p99, max).
    pub latency_ms: (f64, f64, f64, f64, f64),
    /// Worker utilization estimate in [0, 1]: windowed request-seconds
    /// per worker-second (Little's law on the windowed mean latency).
    pub utilization: f64,
    /// Queue depth / capacity / workers / connections.
    pub queue_depth: f64,
    /// Queue capacity.
    pub queue_capacity: f64,
    /// Worker threads.
    pub workers: f64,
    /// Connections accepted so far.
    pub connections: f64,
    /// PGO counters: (units, max_generation, drifted, recompiles, swaps,
    /// rollbacks, in_flight).
    pub pgo: (f64, f64, f64, f64, f64, f64, f64),
    /// Telemetry counters: (access_log_lines, traces_sampled).
    pub telemetry: (f64, f64),
    /// Cumulative request total from the scrape.
    pub requests_total: f64,
    /// Validated series count in the exposition.
    pub series: usize,
    /// Daemon uptime, seconds.
    pub uptime_s: f64,
}

/// Reduces a poll (and its predecessor, for deltas) to the display values.
pub fn view(prev: Option<&TopSample>, cur: &TopSample) -> TopView {
    let h = &cur.health;
    let mut v = TopView {
        window_rps: num(h, &["window", "rps"]),
        window_error_rps: num(h, &["window", "error_rps"]),
        window_busy_rps: num(h, &["window", "busy_rps"]),
        latency_ms: (
            num(h, &["window", "latency_ms", "p50"]),
            num(h, &["window", "latency_ms", "p90"]),
            num(h, &["window", "latency_ms", "p95"]),
            num(h, &["window", "latency_ms", "p99"]),
            num(h, &["window", "latency_ms", "max"]),
        ),
        queue_depth: num(h, &["queue_depth"]),
        queue_capacity: num(h, &["queue_capacity"]),
        workers: num(h, &["workers"]),
        connections: num(h, &["connections"]),
        pgo: (
            num(h, &["pgo", "units"]),
            num(h, &["pgo", "max_generation"]),
            num(h, &["pgo", "drifted_units"]),
            num(h, &["pgo", "recompiles"]),
            num(h, &["pgo", "swaps"]),
            num(h, &["pgo", "rollbacks"]),
            num(h, &["pgo", "in_flight_recompiles"]),
        ),
        telemetry: (
            num(h, &["telemetry", "access_log_lines"]),
            num(h, &["telemetry", "traces_sampled"]),
        ),
        requests_total: cur.requests_total,
        series: cur.series,
        uptime_s: num(h, &["uptime_s"]),
        ..TopView::default()
    };
    if let Some(p) = prev {
        let dt = cur.at.duration_since(p.at).as_secs_f64().max(1e-9);
        v.scrape_rps = ((cur.requests_total - p.requests_total) / dt).max(0.0);
        v.scrape_error_rps = ((cur.errors_total - p.errors_total) / dt).max(0.0);
        v.scrape_busy_rps = ((cur.busy_total - p.busy_total) / dt).max(0.0);
    }
    let mean_ms = num(h, &["window", "latency_ms", "mean"]);
    if v.workers > 0.0 {
        v.utilization = (v.window_rps * mean_ms / 1e3 / v.workers).clamp(0.0, 1.0);
    }
    v
}

/// One `--watch-json` output line (schema `pps-top` v1), without the
/// trailing newline.
pub fn json_line(seq: u64, v: &TopView) -> String {
    format!(
        "{{\"schema\":\"pps-top\",\"version\":1,\"seq\":{seq},\"uptime_s\":{},\
         \"rps\":{},\"error_rps\":{},\"busy_rps\":{},\
         \"window\":{{\"rps\":{},\"error_rps\":{},\"busy_rps\":{},\
         \"latency_ms\":{{\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}},\
         \"queue_depth\":{},\"queue_capacity\":{},\"workers\":{},\"connections\":{},\
         \"utilization\":{},\
         \"pgo\":{{\"units\":{},\"max_generation\":{},\"drifted_units\":{},\"recompiles\":{},\
         \"swaps\":{},\"rollbacks\":{},\"in_flight_recompiles\":{}}},\
         \"telemetry\":{{\"access_log_lines\":{},\"traces_sampled\":{}}},\
         \"exposition\":{{\"series\":{},\"valid\":true}},\"requests_total\":{}}}",
        json::number(v.uptime_s),
        json::number(v.scrape_rps),
        json::number(v.scrape_error_rps),
        json::number(v.scrape_busy_rps),
        json::number(v.window_rps),
        json::number(v.window_error_rps),
        json::number(v.window_busy_rps),
        json::number(v.latency_ms.0),
        json::number(v.latency_ms.1),
        json::number(v.latency_ms.2),
        json::number(v.latency_ms.3),
        json::number(v.latency_ms.4),
        json::number(v.queue_depth),
        json::number(v.queue_capacity),
        json::number(v.workers),
        json::number(v.connections),
        json::number(v.utilization),
        json::number(v.pgo.0),
        json::number(v.pgo.1),
        json::number(v.pgo.2),
        json::number(v.pgo.3),
        json::number(v.pgo.4),
        json::number(v.pgo.5),
        json::number(v.pgo.6),
        json::number(v.telemetry.0),
        json::number(v.telemetry.1),
        v.series,
        json::number(v.requests_total),
    )
}

/// The repainted dashboard frame (ANSI home+clear prefix included).
pub fn render(addr: &str, v: &TopView) -> String {
    let bar = |frac: f64| {
        let width = 20usize;
        let filled = ((frac * width as f64).round() as usize).min(width);
        format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
    };
    let queue_frac =
        if v.queue_capacity > 0.0 { v.queue_depth / v.queue_capacity } else { 0.0 };
    format!(
        "\x1b[H\x1b[2J\
         pps-harness top — {addr}   uptime {up:.1}s   series {series}\n\
         \n\
         rps      {rps:8.1}  (scrape Δ)    window {wrps:8.1}/s\n\
         errors   {erps:8.2}/s             busy   {brps:8.2}/s\n\
         latency  p50 {p50:7.2}  p90 {p90:7.2}  p95 {p95:7.2}  p99 {p99:7.2}  max {max:7.2}  ms\n\
         \n\
         queue    {qd:.0}/{qc:.0} {qbar}\n\
         workers  {wk:.0}   util {ubar} {util:3.0}%   conns {conns:.0}\n\
         \n\
         pgo      units {units:.0}  gen {generation:.0}  drifted {drifted:.0}  recompiles {rc:.0}  \
         swaps {swaps:.0}  rollbacks {rb:.0}  in-flight {inflight:.0}\n\
         telemetry  access-log lines {lines:.0}   traces sampled {traces:.0}\n",
        up = v.uptime_s,
        series = v.series,
        rps = v.scrape_rps,
        wrps = v.window_rps,
        erps = v.scrape_error_rps,
        brps = v.scrape_busy_rps,
        p50 = v.latency_ms.0,
        p90 = v.latency_ms.1,
        p95 = v.latency_ms.2,
        p99 = v.latency_ms.3,
        max = v.latency_ms.4,
        qd = v.queue_depth,
        qc = v.queue_capacity,
        qbar = bar(queue_frac),
        wk = v.workers,
        ubar = bar(v.utilization),
        util = v.utilization * 100.0,
        conns = v.connections,
        units = v.pgo.0,
        generation = v.pgo.1,
        drifted = v.pgo.2,
        rc = v.pgo.3,
        swaps = v.pgo.4,
        rb = v.pgo.5,
        inflight = v.pgo.6,
        lines = v.telemetry.0,
        traces = v.telemetry.1,
    )
}

/// Runs the dashboard loop, writing frames (or JSON lines) to `out`.
///
/// # Errors
/// A failed poll (unreachable daemon, invalid exposition) or a failed
/// write to `out`; in JSON mode both are fatal so CI can rely on the
/// exit status.
pub fn run(config: &TopConfig, out: &mut dyn std::io::Write) -> Result<(), String> {
    let timeout = config.interval.max(Duration::from_millis(250)) * 4;
    let mut prev: Option<TopSample> = None;
    let mut seq = 0u64;
    loop {
        let sample = poll(&config.addr, timeout)?;
        let v = view(prev.as_ref(), &sample);
        seq += 1;
        let text = if config.json {
            let mut line = json_line(seq, &v);
            line.push('\n');
            line
        } else {
            render(&config.addr, &v)
        };
        out.write_all(text.as_bytes()).map_err(|e| format!("write: {e}"))?;
        out.flush().ok();
        prev = Some(sample);
        if let Some(n) = config.iterations {
            if seq >= n {
                return Ok(());
            }
        }
        std::thread::sleep(config.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(requests: f64, errors: f64, at: Instant, health: &str) -> TopSample {
        TopSample {
            at,
            requests_total: requests,
            errors_total: errors,
            busy_total: 0.0,
            series: 7,
            health: json::parse(health).unwrap(),
        }
    }

    const HEALTH: &str = r#"{"schema":"pps-health","uptime_s":12.5,"queue_depth":3,
        "queue_capacity":64,"workers":4,"connections":9,"requests":500,
        "pgo":{"enabled":true,"units":2,"max_generation":3,"drifted_units":1,
               "recompiles":5,"swaps":4,"rollbacks":1,"in_flight_recompiles":0},
        "telemetry":{"enabled":true,"access_log_lines":500,"traces_sampled":7},
        "window":{"seconds":4.0,"requests":400,"rps":100.0,"error_rps":0.5,"busy_rps":0,
                  "latency_ms":{"count":400,"mean":20.0,"p50":15.0,"p90":30.0,
                                "p95":35.0,"p99":60.0,"max":80.0}}}"#;

    #[test]
    fn view_computes_scrape_deltas_and_utilization() {
        let t0 = Instant::now();
        let a = sample(100.0, 1.0, t0, HEALTH);
        let b = sample(300.0, 3.0, t0 + Duration::from_secs(2), HEALTH);
        let v = view(Some(&a), &b);
        assert!((v.scrape_rps - 100.0).abs() < 1e-6, "{}", v.scrape_rps);
        assert!((v.scrape_error_rps - 1.0).abs() < 1e-6);
        assert!((v.window_rps - 100.0).abs() < 1e-6);
        assert_eq!(v.latency_ms.3, 60.0);
        // 100 rps × 20 ms = 2 request-seconds/s over 4 workers → 50%.
        assert!((v.utilization - 0.5).abs() < 1e-6, "{}", v.utilization);
        assert_eq!(v.pgo.4, 4.0, "swaps");
        // First poll has no baseline: deltas are zero, window numbers live.
        let first = view(None, &a);
        assert_eq!(first.scrape_rps, 0.0);
        assert!((first.window_rps - 100.0).abs() < 1e-6);
    }

    #[test]
    fn json_line_parses_and_carries_the_numbers() {
        let t0 = Instant::now();
        let a = sample(0.0, 0.0, t0, HEALTH);
        let b = sample(50.0, 0.0, t0 + Duration::from_secs(1), HEALTH);
        let v = view(Some(&a), &b);
        let doc = json::parse(&json_line(3, &v)).expect("top JSON line parses");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("pps-top"));
        assert_eq!(doc.get("seq").unwrap().as_num(), Some(3.0));
        assert!((doc.get("rps").unwrap().as_num().unwrap() - 50.0).abs() < 1e-6);
        let window = doc.get("window").unwrap();
        assert_eq!(window.get("latency_ms").unwrap().get("p95").unwrap().as_num(), Some(35.0));
        assert_eq!(doc.get("utilization").unwrap().as_num(), Some(0.5));
        assert_eq!(doc.get("exposition").unwrap().get("series").unwrap().as_num(), Some(7.0));
    }

    #[test]
    fn render_mentions_the_key_numbers() {
        let t0 = Instant::now();
        let s = sample(10.0, 0.0, t0, HEALTH);
        let frame = render("127.0.0.1:9", &view(None, &s));
        for needle in ["pps-harness top", "latency", "queue", "workers", "pgo", "swaps 4"] {
            assert!(frame.contains(needle), "missing {needle:?} in frame:\n{frame}");
        }
    }
}
