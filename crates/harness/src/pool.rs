//! Zero-dependency scoped-thread work pool.
//!
//! The experiment engine fans benchmark × scheme cells out across worker
//! threads with [`run_indexed`]: workers claim indices through one atomic
//! counter and write results into per-index slots, so the returned vector
//! is always in input order no matter which worker ran which cell.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (the `--jobs` default); 1 when the
/// runtime cannot tell.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work(i)` for every `i in 0..n` across up to `jobs` scoped worker
/// threads and returns the results in index order.
///
/// `jobs` is clamped to `[1, n]`; with `jobs == 1` the work runs inline on
/// the calling thread (no pool, no locks). Worker panics propagate to the
/// caller when the scope joins.
pub fn run_indexed<T, F>(jobs: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return (0..n).map(work).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = work(i);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 7, 64] {
            let out = run_indexed(jobs, 40, |i| {
                // Stagger completion so claim order differs from finish order.
                std::thread::sleep(std::time::Duration::from_micros((40 - i as u64) * 10));
                i * i
            });
            assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_items_and_zero_jobs_are_fine() {
        assert!(run_indexed(0, 0, |i| i).is_empty());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_indexed(4, 16, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
