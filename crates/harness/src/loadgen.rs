//! Load generator for the `pps-serve` daemon.
//!
//! Drives N concurrent connections through a fixed request mix
//! (`Profile`, `Compile` against a client-supplied profile, `RunCell`)
//! and verifies every reply is **byte-identical** to what the in-process
//! pipeline produces for the same request — the daemon must never drift
//! from the library. Reports throughput and p50/p95/p99/max latency, and
//! can optionally probe the frame layer with malformed input
//! (`--probe-malformed`) and drain the daemon (`--shutdown`).

use pps_obs::{Level, Obs};
use pps_serve::frame::{self, HEADER_LEN, MAX_PAYLOAD, VERSION};
use pps_serve::proto::{encode_response, Envelope, ProfileText, Request, Response};
use pps_serve::service::execute;
use pps_serve::Client;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What to drive at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Benchmark every request targets.
    pub bench: String,
    /// Suite scale for that benchmark.
    pub scale: u32,
    /// Scheme for `Compile`/`RunCell` requests.
    pub scheme: String,
    /// Also send malformed frames and assert they are rejected cleanly.
    pub probe_malformed: bool,
    /// Send `Shutdown` after the run and expect `ShuttingDown`.
    pub shutdown: bool,
    /// Per-reply timeout. Pipeline requests on a loaded box can take a
    /// while; default 300s.
    pub reply_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            conns: 4,
            requests: 16,
            bench: "wc".to_string(),
            scale: 1,
            scheme: "P4".to_string(),
            probe_malformed: false,
            shutdown: false,
            reply_timeout: Duration::from_secs(300),
        }
    }
}

/// Latency percentiles over the successful requests, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst request.
    pub max: f64,
}

/// Outcome of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests that completed with the expected reply bytes.
    pub ok: usize,
    /// Requests whose reply decoded but differed from the in-process
    /// pipeline's bytes.
    pub mismatches: usize,
    /// Transport/decode failures.
    pub errors: usize,
    /// `Busy` replies absorbed by retry (each retry counts once).
    pub busy_retries: usize,
    /// Wall-clock for the measured request phase, seconds.
    pub elapsed_s: f64,
    /// `ok / elapsed_s`.
    pub throughput_rps: f64,
    /// Latency distribution of successful requests.
    pub latency: LatencyMs,
    /// Requests per mix slot: `[profile, compile, runcell]`.
    pub mix: [usize; 3],
    /// Malformed probes run / passed (zeros when not requested).
    pub probes_run: usize,
    /// Probes that were rejected cleanly (structured error or clean
    /// close, no hang).
    pub probes_passed: usize,
    /// First few human-readable failure descriptions.
    pub failures: Vec<String>,
}

impl LoadgenReport {
    /// True when every request verified and every probe passed.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.errors == 0 && self.probes_passed == self.probes_run
    }

    /// The report as a JSON object (hand-rendered; keys are fixed and
    /// values numeric, so no escaping is needed beyond the failure
    /// strings).
    pub fn to_json(&self, config: &LoadgenConfig) -> String {
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\n  \"bench\": \"{bench}\",\n  \"scale\": {scale},\n  \"scheme\": \"{scheme}\",\n  \
             \"conns\": {conns},\n  \"requests\": {requests},\n  \"ok\": {ok},\n  \
             \"mismatches\": {mismatches},\n  \"errors\": {errors},\n  \"busy_retries\": {busy},\n  \
             \"elapsed_s\": {elapsed:.3},\n  \"throughput_rps\": {rps:.2},\n  \
             \"latency_ms\": {{\"p50\": {p50:.2}, \"p95\": {p95:.2}, \"p99\": {p99:.2}, \"max\": {max:.2}}},\n  \
             \"mix\": {{\"profile\": {m0}, \"compile\": {m1}, \"runcell\": {m2}}},\n  \
             \"probes\": {{\"run\": {pr}, \"passed\": {pp}}},\n  \
             \"failures\": [{failures}]\n}}\n",
            bench = config.bench,
            scale = config.scale,
            scheme = config.scheme,
            conns = config.conns,
            requests = config.requests,
            ok = self.ok,
            mismatches = self.mismatches,
            errors = self.errors,
            busy = self.busy_retries,
            elapsed = self.elapsed_s,
            rps = self.throughput_rps,
            p50 = self.latency.p50,
            p95 = self.latency.p95,
            p99 = self.latency.p99,
            max = self.latency.max,
            m0 = self.mix[0],
            m1 = self.mix[1],
            m2 = self.mix[2],
            pr = self.probes_run,
            pp = self.probes_passed,
            failures = failures.join(", "),
        )
    }
}

/// The request for mix slot `i % 3`, given the profile the mix's
/// `Compile` requests carry.
fn mix_request(config: &LoadgenConfig, slot: usize, profile: &ProfileText) -> Request {
    match slot {
        0 => Request::Profile { bench: config.bench.clone(), scale: config.scale, depth: 0 },
        1 => Request::Compile {
            bench: config.bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            profile: Some(profile.clone()),
        },
        _ => Request::RunCell {
            bench: config.bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            strict: false,
        },
    }
}

/// Shared worker state: the next request index and accumulated outcomes.
struct Shared {
    next: AtomicUsize,
    total: usize,
    results: Mutex<WorkerTally>,
}

#[derive(Default)]
struct WorkerTally {
    ok: usize,
    mismatches: usize,
    errors: usize,
    busy_retries: usize,
    latencies_us: Vec<u64>,
    mix: [usize; 3],
    failures: Vec<String>,
}

fn worker(
    config: &LoadgenConfig,
    shared: &Shared,
    expected: &[Vec<u8>; 3],
    profile: &ProfileText,
) {
    let mut client = match Client::connect(&config.addr, Some(config.reply_timeout)) {
        Ok(c) => c,
        Err(e) => {
            let mut tally = shared.results.lock().unwrap();
            // Every request this worker would have served becomes an error
            // only if no other worker picks it up; workers share one
            // counter, so just record the connect failure once.
            tally.failures.push(format!("connect {}: {e}", config.addr));
            tally.errors += 1;
            return;
        }
    };
    let mut local = WorkerTally::default();
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.total {
            break;
        }
        let slot = i % 3;
        local.mix[slot] += 1;
        let request = mix_request(config, slot, profile);
        let env = Envelope::new(request);
        // Busy means the bounded queue rejected us: back off and retry the
        // same request on the same connection.
        let mut backoff = Duration::from_millis(5);
        let outcome = loop {
            let start = Instant::now();
            match client.call(&env) {
                Ok(Response::Busy) => {
                    local.busy_retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
                Ok(resp) => break Ok((resp, start.elapsed())),
                Err(e) => break Err(format!("request {i} ({}): {e}", env.request.kind_name())),
            }
        };
        match outcome {
            Ok((resp, elapsed)) => {
                let got = encode_response(&resp);
                if got == expected[slot] {
                    local.ok += 1;
                    local.latencies_us.push(elapsed.as_micros() as u64);
                } else {
                    local.mismatches += 1;
                    if local.failures.len() < 5 {
                        local.failures.push(format!(
                            "request {i} ({}): reply bytes differ from in-process \
                             pipeline ({} vs {} bytes, outcome {})",
                            env.request.kind_name(),
                            got.len(),
                            expected[slot].len(),
                            resp.outcome_name(),
                        ));
                    }
                }
            }
            Err(msg) => {
                local.errors += 1;
                if local.failures.len() < 5 {
                    local.failures.push(msg);
                }
            }
        }
    }
    let mut tally = shared.results.lock().unwrap();
    tally.ok += local.ok;
    tally.mismatches += local.mismatches;
    tally.errors += local.errors;
    tally.busy_retries += local.busy_retries;
    tally.latencies_us.extend(local.latencies_us);
    for (a, b) in tally.mix.iter_mut().zip(local.mix) {
        *a += b;
    }
    tally.failures.extend(local.failures);
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

/// Runs the load phase (plus optional probes and shutdown) against a
/// daemon at `config.addr`.
///
/// # Errors
/// Returns `Err` only when the run cannot start at all (expected-reply
/// precomputation failed, e.g. unknown benchmark). Per-request failures
/// are reported in the [`LoadgenReport`]; check [`LoadgenReport::clean`].
///
/// # Panics
/// Panics if a worker thread panics (it holds no locks across request
/// handling, so this indicates a bug in loadgen itself).
pub fn run(config: &LoadgenConfig, obs: &Obs) -> Result<LoadgenReport, String> {
    let _span = obs.span("loadgen").arg("conns", config.conns as u64).arg(
        "requests",
        config.requests as u64,
    );

    // Precompute the mix's expected replies in-process. `execute` is a pure
    // function of the request, so these are exactly the bytes the daemon
    // must produce.
    obs.log(Level::Info, || {
        format!(
            "precomputing expected replies for {} scale {} scheme {} ...",
            config.bench, config.scale, config.scheme
        )
    });
    let profile_req =
        Request::Profile { bench: config.bench.clone(), scale: config.scale, depth: 0 };
    let profile_resp = execute(&profile_req, &Obs::noop());
    let Response::Profile { edge, path } = &profile_resp else {
        return Err(format!("profile precompute failed: {profile_resp:?}"));
    };
    let profile = ProfileText { edge: edge.clone(), path: path.clone() };
    let expected: [Vec<u8>; 3] = [0usize, 1, 2].map(|slot| {
        let req = mix_request(config, slot, &profile);
        encode_response(&execute(&req, &Obs::noop()))
    });

    let shared = Shared {
        next: AtomicUsize::new(0),
        total: config.requests,
        results: Mutex::new(WorkerTally::default()),
    };

    obs.log(Level::Info, || {
        format!("driving {} requests over {} connections ...", config.requests, config.conns)
    });
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.conns.max(1) {
            scope.spawn(|| worker(config, &shared, &expected, &profile));
        }
    });
    let elapsed = start.elapsed();

    let mut tally = shared.results.into_inner().unwrap();
    tally.latencies_us.sort_unstable();
    let mut report = LoadgenReport {
        ok: tally.ok,
        mismatches: tally.mismatches,
        errors: tally.errors,
        busy_retries: tally.busy_retries,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: tally.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencyMs {
            p50: percentile(&tally.latencies_us, 0.50),
            p95: percentile(&tally.latencies_us, 0.95),
            p99: percentile(&tally.latencies_us, 0.99),
            max: percentile(&tally.latencies_us, 1.0),
        },
        mix: tally.mix,
        probes_run: 0,
        probes_passed: 0,
        failures: std::mem::take(&mut tally.failures),
    };

    if config.probe_malformed {
        probe_malformed(config, &mut report, obs);
    }

    if config.shutdown {
        match Client::connect(&config.addr, Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.request(Request::Shutdown).map_err(|e| e.to_string()))
        {
            Ok(Response::ShuttingDown) => {
                obs.log(Level::Info, || "daemon acknowledged shutdown".to_string());
            }
            Ok(other) => {
                report.errors += 1;
                report.failures.push(format!(
                    "shutdown: expected ShuttingDown, got {}",
                    other.outcome_name()
                ));
            }
            Err(e) => {
                report.errors += 1;
                report.failures.push(format!("shutdown: {e}"));
            }
        }
    }

    Ok(report)
}

/// One malformed-input case: raw bytes to send, and whether to half-close
/// the write side afterwards (the truncation probe).
struct Probe {
    name: &'static str,
    bytes: Vec<u8>,
    half_close: bool,
}

fn probes() -> Vec<Probe> {
    let good = frame::encode_frame(b"never decoded");
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"XPSF");
    let mut bad_version = good.clone();
    bad_version[4] = VERSION.wrapping_add(7);
    let mut oversized = good.clone();
    oversized[6..10].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_be_bytes());
    let mut bad_checksum = good.clone();
    let last = bad_checksum.len() - 1;
    bad_checksum[last] ^= 0xff;
    let truncated = good[..HEADER_LEN + 4].to_vec();
    vec![
        Probe { name: "bad-magic", bytes: bad_magic, half_close: false },
        Probe { name: "bad-version", bytes: bad_version, half_close: false },
        Probe { name: "oversized-length", bytes: oversized, half_close: false },
        Probe { name: "checksum-mismatch", bytes: bad_checksum, half_close: false },
        Probe { name: "truncated-frame", bytes: truncated, half_close: true },
    ]
}

/// A probe passes when the daemon answers with a structured error and/or
/// closes the connection — without hanging — and a fresh connection still
/// serves a good request afterwards.
fn probe_malformed(config: &LoadgenConfig, report: &mut LoadgenReport, obs: &Obs) {
    for probe in probes() {
        report.probes_run += 1;
        match run_probe(&config.addr, &probe) {
            Ok(()) => {
                report.probes_passed += 1;
                obs.log(Level::Debug, || format!("probe {}: rejected cleanly", probe.name));
            }
            Err(e) => {
                report.failures.push(format!("probe {}: {e}", probe.name));
                obs.log(Level::Error, || format!("probe {} FAILED: {e}", probe.name));
            }
        }
    }
    // The daemon must still be healthy after absorbing garbage.
    report.probes_run += 1;
    match Client::connect(&config.addr, Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())
        .and_then(|mut c| c.request(Request::Ping).map_err(|e| e.to_string()))
    {
        Ok(Response::Pong) => report.probes_passed += 1,
        Ok(other) => report
            .failures
            .push(format!("post-probe ping: expected Pong, got {}", other.outcome_name())),
        Err(e) => report.failures.push(format!("post-probe ping: {e}")),
    }
}

fn run_probe(addr: &str, probe: &Probe) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream.write_all(&probe.bytes).map_err(|e| format!("send: {e}"))?;
    if probe.half_close {
        stream.shutdown(Shutdown::Write).map_err(|e| format!("half-close: {e}"))?;
    }
    // The daemon replies with one structured-error frame and closes, or —
    // for header corruption it cannot safely frame a reply into — just
    // closes. Either way the stream must reach EOF without a hang.
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => {}
        // A reset after the daemon closed is also a clean rejection.
        Err(e)
            if e.kind() == std::io::ErrorKind::ConnectionReset
                || e.kind() == std::io::ErrorKind::ConnectionAborted => {}
        Err(e) => return Err(format!("read: {e} (timeout = daemon hung on garbage)")),
    }
    if reply.is_empty() {
        return Ok(()); // clean close without a reply
    }
    let payload = frame::read_frame(&mut reply.as_slice())
        .map_err(|e| format!("reply frame: {e}"))?;
    match pps_serve::proto::decode_response(&payload) {
        Ok(Response::Error { .. }) => Ok(()),
        Ok(other) => Err(format!("expected a structured error, got {}", other.outcome_name())),
        Err(e) => Err(format!("reply decode: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((percentile(&us, 0.50) - 50.0).abs() < 1.5);
        assert!((percentile(&us, 0.95) - 95.0).abs() < 1.5);
        assert!((percentile(&us, 1.0) - 100.0).abs() < 0.01);
    }

    #[test]
    fn probe_set_covers_every_header_failure() {
        let names: Vec<&str> = probes().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["bad-magic", "bad-version", "oversized-length", "checksum-mismatch", "truncated-frame"]
        );
        // Bytes really are malformed: each probe must fail frame decoding
        // (the truncated probe by EOF).
        for p in probes() {
            assert!(
                frame::read_frame(&mut p.bytes.as_slice()).is_err(),
                "probe {} decoded as a valid frame",
                p.name
            );
        }
    }

    #[test]
    fn report_json_is_parseable() {
        let config = LoadgenConfig { addr: "127.0.0.1:0".into(), ..LoadgenConfig::default() };
        let mut report = LoadgenReport::default();
        report.failures.push("a \"quoted\" failure".to_string());
        let json = report.to_json(&config);
        pps_obs::json::parse(&json).expect("loadgen report JSON parses");
    }
}
