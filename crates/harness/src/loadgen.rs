//! Load generator for the `pps-serve` daemon.
//!
//! Drives N concurrent connections through a fixed request mix
//! (`Profile`, `Compile` against a client-supplied profile, `RunCell`)
//! and verifies every reply is **byte-identical** to what the in-process
//! pipeline produces for the same request — the daemon must never drift
//! from the library. Reports throughput and p50/p95/p99/max latency, and
//! can optionally probe the frame layer with malformed input
//! (`--probe-malformed`), drain the daemon (`--shutdown`), or run the
//! **drifting-workload mode** (`--drift`): after a steady phase of true
//! profiles, the mix phase-shifts to `Compile` requests carrying a
//! weight-inverted path profile, then polls the in-band health snapshot
//! until the daemon's continuous-PGO loop detects the drift and hot-swaps
//! a recompiled unit — with every reply still byte-verified.
//!
//! Transient failures — `Busy` backpressure, reply timeouts, mid-request
//! disconnects — are absorbed by a bounded [`RetryPolicy`] (exponential
//! backoff with deterministic jitter, per-run retry budget); everything
//! retried is reported in the JSON summary.
//!
//! **Cluster mode** (`--cluster`) targets a `pps-shard` router instead of
//! a single daemon: it drives a repeat-heavy key distribution over a set
//! of distinct artifacts (several benchmarks × schemes, picked with a
//! skewed deterministic distribution so a few artifacts dominate), still
//! byte-verifying every reply against the in-process pipeline, and then
//! reads the router's fanned-in health snapshot to report cluster-wide
//! cache hit rate, routed counts, and queue depth.

use pps_ir::ProcId;
use pps_obs::quantile::percentile_sorted;
use pps_obs::{Level, Obs};
use pps_profile::path::PathProfile;
use pps_profile::serialize::{path_from_text, path_to_text};
use pps_serve::frame::{self, FrameError, HEADER_LEN, MAX_PAYLOAD, VERSION};
use pps_serve::proto::{encode_response, Envelope, HealthSnapshot, ProfileText, Request, Response};
use pps_serve::service::execute;
use pps_serve::{Client, ClientError};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Bounded retry for transient request failures. Two failure classes get
/// separate bounds: *transport faults* (reply timeouts, mid-request
/// disconnects) are capped at [`RetryPolicy::max_attempts`] per request
/// and draw from a per-run [`RetryPolicy::budget`] shared across all
/// connections — when it runs dry, failures surface instead of masking a
/// sick daemon under infinite patience. `Busy` replies are backpressure,
/// not faults: the daemon is healthy and explicitly asking the client to
/// wait, so they get their own, much larger per-request cap
/// ([`RetryPolicy::busy_attempts`]) and don't consume the fault budget.
/// Backoff is exponential from [`RetryPolicy::base`] to
/// [`RetryPolicy::cap`] with deterministic "equal jitter" (half fixed,
/// half seeded by request index and attempt), so concurrent workers don't
/// retry in lockstep yet runs stay reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Transport-fault attempts per request, including the first
    /// (1 = no retry).
    pub max_attempts: usize,
    /// `Busy` replies tolerated per request before giving up. At the
    /// backoff ceiling this bounds the per-request wait to roughly
    /// `busy_attempts × cap`.
    pub busy_attempts: usize,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Total transport-fault retries allowed per run, shared across
    /// connections.
    pub budget: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            busy_attempts: 256,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            budget: 1024,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based) of request `index`:
    /// exponential with deterministic equal jitter.
    fn backoff(&self, index: usize, attempt: usize) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16) as u32)
            .min(self.cap);
        // splitmix64 over (index, attempt) — no RNG dependency, and the
        // same request retries with the same delays in every run.
        let z = pps_core::hash::splitmix64(
            (index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(attempt as u64),
        );
        let jitter = (z % 1000) as f64 / 1000.0;
        exp.mul_f64(0.5 + 0.5 * jitter)
    }
}

/// What to drive at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Benchmark every request targets.
    pub bench: String,
    /// Suite scale for that benchmark.
    pub scale: u32,
    /// Scheme for `Compile`/`RunCell` requests.
    pub scheme: String,
    /// Also send malformed frames and assert they are rejected cleanly.
    pub probe_malformed: bool,
    /// Send `Shutdown` after the run and expect `ShuttingDown`.
    pub shutdown: bool,
    /// Per-reply timeout. Pipeline requests on a loaded box can take a
    /// while; default 300s.
    pub reply_timeout: Duration,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Drifting-workload mode: phase-shift to weight-inverted profiles
    /// after the steady phase and wait for a continuous-PGO hot-swap.
    pub drift: bool,
    /// How long drift mode waits for the daemon to swap (and then to
    /// finish in-flight recompiles) before declaring failure.
    pub drift_timeout: Duration,
    /// Cluster mode: drive a repeat-heavy distribution over distinct
    /// artifacts (instead of the 3-slot mix) and report the cluster-wide
    /// cache/routing stats from the router's fanned-in health snapshot.
    pub cluster: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            conns: 4,
            requests: 16,
            bench: "wc".to_string(),
            scale: 1,
            scheme: "P4".to_string(),
            probe_malformed: false,
            shutdown: false,
            reply_timeout: Duration::from_secs(300),
            retry: RetryPolicy::default(),
            drift: false,
            drift_timeout: Duration::from_secs(120),
            cluster: false,
        }
    }
}

/// Latency percentiles over the successful requests, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst request.
    pub max: f64,
}

/// Continuous-PGO observations of a drift-mode run, from the daemon's
/// in-band health snapshots plus per-phase `RunCell` latencies.
#[derive(Debug, Clone, Default)]
pub struct DriftStats {
    /// Steady-phase (true profiles) `RunCell` latency.
    pub phase_a_runcell: LatencyMs,
    /// Drifted-phase (inverted profiles) `RunCell` latency.
    pub phase_b_runcell: LatencyMs,
    /// `RunCell` requests measured per phase.
    pub runcells: [usize; 2],
    /// Profiles the daemon folded into its aggregate by run end.
    pub profiles_merged: u64,
    /// Background recompiles the daemon attempted.
    pub recompiles: u64,
    /// Hot-swaps that landed.
    pub swaps: u64,
    /// Recompiles rolled back (must be 0 without injected faults).
    pub rollbacks: u64,
    /// Highest unit generation seen (≥ 2 proves a swap).
    pub max_generation: u64,
    /// In-flight recompiles at the final health poll (0 = clean drain).
    pub in_flight_final: u32,
    /// Health polls issued while waiting.
    pub health_polls: usize,
    /// Seconds from the phase shift to the first observed swap.
    pub swap_wait_s: f64,
}

/// Cluster-mode observations: deltas of the router's fanned-in counters
/// over the measured phase, plus the shape of the driven key set.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Distinct artifacts (benchmark × scheme × request-class) driven.
    pub distinct_artifacts: usize,
    /// Shards behind the router (0 when pointed at a single daemon).
    pub shards: u32,
    /// Requests the router relayed during the run.
    pub routed: u64,
    /// Cluster-wide compile-cache hits during the run.
    pub cache_hits: u64,
    /// Cluster-wide compile-cache misses during the run.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` over the run; with repeats per artifact
    /// this must be well above zero.
    pub hit_rate: f64,
    /// Cache entries resident cluster-wide at run end.
    pub cache_entries: u32,
    /// Summed queue depth across shards at the final health poll.
    pub queue_depth: u32,
}

/// Outcome of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests that completed with the expected reply bytes.
    pub ok: usize,
    /// Requests whose reply decoded but differed from the in-process
    /// pipeline's bytes.
    pub mismatches: usize,
    /// Transport/decode failures (after retries were exhausted).
    pub errors: usize,
    /// `Busy` replies absorbed by retry (each retry counts once).
    pub busy_retries: usize,
    /// Timeouts/disconnects absorbed by reconnect-and-retry.
    pub transport_retries: usize,
    /// Requests that failed because the per-run retry budget ran dry.
    pub budget_exhausted: usize,
    /// The run's retry budget (from [`RetryPolicy::budget`]).
    pub retry_budget: usize,
    /// Drift-mode observations (`None` unless `--drift`).
    pub drift: Option<DriftStats>,
    /// Cluster-mode observations (`None` unless `--cluster`).
    pub cluster: Option<ClusterStats>,
    /// Wall-clock for the measured request phase, seconds.
    pub elapsed_s: f64,
    /// `ok / elapsed_s`.
    pub throughput_rps: f64,
    /// Latency distribution of successful requests.
    pub latency: LatencyMs,
    /// Requests per mix slot: `[profile, compile, runcell]`.
    pub mix: [usize; 3],
    /// Malformed probes run / passed (zeros when not requested).
    pub probes_run: usize,
    /// Probes that were rejected cleanly (structured error or clean
    /// close, no hang).
    pub probes_passed: usize,
    /// First few human-readable failure descriptions.
    pub failures: Vec<String>,
}

impl LoadgenReport {
    /// True when every request verified and every probe passed.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.errors == 0 && self.probes_passed == self.probes_run
    }

    /// The report as a JSON object (hand-rendered; keys are fixed and
    /// values numeric, so no escaping is needed beyond the failure
    /// strings).
    pub fn to_json(&self, config: &LoadgenConfig) -> String {
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        let drift = match &self.drift {
            None => "null".to_string(),
            Some(d) => format!(
                "{{\n    \"phase_a_runcell_ms\": {{\"p50\": {ap50:.2}, \"p95\": {ap95:.2}, \"count\": {ac}}},\n    \
                 \"phase_b_runcell_ms\": {{\"p50\": {bp50:.2}, \"p95\": {bp95:.2}, \"count\": {bc}}},\n    \
                 \"profiles_merged\": {merged},\n    \"recompiles\": {recompiles},\n    \
                 \"swaps\": {swaps},\n    \"rollbacks\": {rollbacks},\n    \
                 \"max_generation\": {max_gen},\n    \"in_flight_final\": {in_flight},\n    \
                 \"health_polls\": {polls},\n    \"swap_wait_s\": {wait:.3}\n  }}",
                ap50 = d.phase_a_runcell.p50,
                ap95 = d.phase_a_runcell.p95,
                ac = d.runcells[0],
                bp50 = d.phase_b_runcell.p50,
                bp95 = d.phase_b_runcell.p95,
                bc = d.runcells[1],
                merged = d.profiles_merged,
                recompiles = d.recompiles,
                swaps = d.swaps,
                rollbacks = d.rollbacks,
                max_gen = d.max_generation,
                in_flight = d.in_flight_final,
                polls = d.health_polls,
                wait = d.swap_wait_s,
            ),
        };
        let cluster = match &self.cluster {
            None => "null".to_string(),
            Some(c) => format!(
                "{{\"distinct_artifacts\": {}, \"shards\": {}, \"routed\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}, \
                 \"cache_entries\": {}, \"queue_depth\": {}}}",
                c.distinct_artifacts,
                c.shards,
                c.routed,
                c.cache_hits,
                c.cache_misses,
                c.hit_rate,
                c.cache_entries,
                c.queue_depth,
            ),
        };
        format!(
            "{{\n  \"bench\": \"{bench}\",\n  \"scale\": {scale},\n  \"scheme\": \"{scheme}\",\n  \
             \"conns\": {conns},\n  \"requests\": {requests},\n  \"ok\": {ok},\n  \
             \"mismatches\": {mismatches},\n  \"errors\": {errors},\n  \"busy_retries\": {busy},\n  \
             \"retry\": {{\"busy\": {busy}, \"transport\": {transport}, \"budget\": {budget}, \
             \"budget_exhausted\": {exhausted}}},\n  \
             \"elapsed_s\": {elapsed:.3},\n  \"throughput_rps\": {rps:.2},\n  \
             \"latency_ms\": {{\"p50\": {p50:.2}, \"p95\": {p95:.2}, \"p99\": {p99:.2}, \"max\": {max:.2}}},\n  \
             \"mix\": {{\"profile\": {m0}, \"compile\": {m1}, \"runcell\": {m2}}},\n  \
             \"probes\": {{\"run\": {pr}, \"passed\": {pp}}},\n  \
             \"drift\": {drift},\n  \
             \"cluster\": {cluster},\n  \
             \"failures\": [{failures}]\n}}\n",
            bench = config.bench,
            scale = config.scale,
            scheme = config.scheme,
            conns = config.conns,
            requests = config.requests,
            ok = self.ok,
            mismatches = self.mismatches,
            errors = self.errors,
            busy = self.busy_retries,
            transport = self.transport_retries,
            budget = self.retry_budget,
            exhausted = self.budget_exhausted,
            elapsed = self.elapsed_s,
            rps = self.throughput_rps,
            p50 = self.latency.p50,
            p95 = self.latency.p95,
            p99 = self.latency.p99,
            max = self.latency.max,
            m0 = self.mix[0],
            m1 = self.mix[1],
            m2 = self.mix[2],
            pr = self.probes_run,
            pp = self.probes_passed,
            failures = failures.join(", "),
        )
    }
}

/// The request for mix slot `i % 3`, given the profile the mix's
/// `Compile` requests carry.
fn mix_request(config: &LoadgenConfig, slot: usize, profile: &ProfileText) -> Request {
    match slot {
        0 => Request::Profile { bench: config.bench.clone(), scale: config.scale, depth: 0 },
        1 => Request::Compile {
            bench: config.bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            profile: Some(profile.clone()),
        },
        _ => Request::RunCell {
            bench: config.bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            strict: false,
        },
    }
}

/// Shared worker state: the next request index, the run-level retry
/// budget (shared across phases), and accumulated outcomes.
struct Shared<'a> {
    next: AtomicUsize,
    total: usize,
    retry_budget: &'a AtomicUsize,
    results: Mutex<WorkerTally>,
}

impl Shared<'_> {
    /// Takes one retry from the shared budget; false when it ran dry.
    fn take_retry(&self) -> bool {
        self.retry_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }
}

#[derive(Default)]
struct WorkerTally {
    ok: usize,
    mismatches: usize,
    errors: usize,
    busy_retries: usize,
    transport_retries: usize,
    budget_exhausted: usize,
    latencies_us: Vec<u64>,
    runcell_us: Vec<u64>,
    mix: [usize; 3],
    failures: Vec<String>,
}

impl WorkerTally {
    fn absorb(&mut self, local: WorkerTally) {
        self.ok += local.ok;
        self.mismatches += local.mismatches;
        self.errors += local.errors;
        self.busy_retries += local.busy_retries;
        self.transport_retries += local.transport_retries;
        self.budget_exhausted += local.budget_exhausted;
        self.latencies_us.extend(local.latencies_us);
        self.runcell_us.extend(local.runcell_us);
        for (a, b) in self.mix.iter_mut().zip(local.mix) {
            *a += b;
        }
        self.failures.extend(local.failures);
    }
}

/// True for failures worth retrying on a fresh connection: reply timeouts
/// and mid-request disconnects. After a timeout the old stream may carry a
/// late reply, so the retry must reconnect — same-connection retry would
/// desynchronize request/reply pairing.
fn retryable(e: &ClientError) -> bool {
    fn io_retryable(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
        )
    }
    match e {
        ClientError::Io(e) => io_retryable(e),
        ClientError::Frame(FrameError::Io(e)) => io_retryable(e),
        ClientError::Frame(FrameError::Truncated) => true,
        _ => false,
    }
}

/// One request through the retry policy. Returns the verified-decodable
/// response and its latency, or an error string once retries are
/// exhausted. `client` is reconnected as needed and left usable (or
/// `None`) for the next request.
fn call_with_retry(
    config: &LoadgenConfig,
    shared: &Shared,
    local: &mut WorkerTally,
    client: &mut Option<Client>,
    env: &Envelope,
    index: usize,
) -> Result<(Response, Duration), String> {
    let policy = &config.retry;
    let kind = env.request.kind_name();
    let max_faults = policy.max_attempts.max(1);
    let max_busy = policy.busy_attempts.max(1);
    // Failed transport attempts (including the initial try) and Busy
    // replies for this request, bounded separately — backpressure waits
    // must not eat into the fault allowance.
    let mut faults = 0usize;
    let mut busy = 0usize;
    let mut last_error;
    // Takes a shared-budget token and sleeps before a transport-fault
    // retry; `Err` when the run-wide budget is dry.
    let fault_backoff = |local: &mut WorkerTally, attempt: usize, last: &str| {
        if !shared.take_retry() {
            local.budget_exhausted += 1;
            return Err(format!(
                "request {index} ({kind}): retry budget exhausted after: {last}"
            ));
        }
        std::thread::sleep(policy.backoff(index, attempt));
        Ok(())
    };
    loop {
        if client.is_none() {
            match Client::connect(&config.addr, Some(config.reply_timeout)) {
                Ok(c) => *client = Some(c),
                Err(e) => {
                    faults += 1;
                    local.transport_retries += 1;
                    last_error = format!("reconnect: {e}");
                    if faults >= max_faults {
                        break;
                    }
                    fault_backoff(local, faults, &last_error)?;
                    continue;
                }
            }
        }
        let c = client.as_mut().expect("connected above");
        let start = Instant::now();
        match c.call(env) {
            Ok(Response::Busy) => {
                local.busy_retries += 1;
                busy += 1;
                if busy >= max_busy {
                    return Err(format!(
                        "request {index} ({kind}): still busy after {max_busy} replies"
                    ));
                }
                // Backpressure, not a fault: wait out the queue without
                // drawing the shared fault budget.
                std::thread::sleep(policy.backoff(index, busy));
            }
            Ok(resp) => return Ok((resp, start.elapsed())),
            Err(e) if retryable(&e) => {
                // The stream can no longer be trusted; retry reconnects.
                *client = None;
                faults += 1;
                local.transport_retries += 1;
                last_error = e.to_string();
                if faults >= max_faults {
                    break;
                }
                fault_backoff(local, faults, &last_error)?;
            }
            Err(e) => return Err(format!("request {index} ({kind}): {e}")),
        }
    }
    Err(format!(
        "request {index} ({kind}): {max_faults} attempts exhausted, last: {last_error}"
    ))
}

fn worker(
    config: &LoadgenConfig,
    shared: &Shared,
    expected: &[Vec<u8>; 3],
    profile: &ProfileText,
) {
    let mut client: Option<Client> = None;
    let mut local = WorkerTally::default();
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.total {
            break;
        }
        let slot = i % 3;
        local.mix[slot] += 1;
        let env = Envelope::new(mix_request(config, slot, profile));
        match call_with_retry(config, shared, &mut local, &mut client, &env, i) {
            Ok((resp, elapsed)) => {
                let got = encode_response(&resp);
                if got == expected[slot] {
                    local.ok += 1;
                    local.latencies_us.push(elapsed.as_micros() as u64);
                    if slot == 2 {
                        local.runcell_us.push(elapsed.as_micros() as u64);
                    }
                } else {
                    local.mismatches += 1;
                    if local.failures.len() < 5 {
                        local.failures.push(format!(
                            "request {i} ({}): reply bytes differ from in-process \
                             pipeline ({} vs {} bytes, outcome {})",
                            env.request.kind_name(),
                            got.len(),
                            expected[slot].len(),
                            resp.outcome_name(),
                        ));
                    }
                }
            }
            Err(msg) => {
                local.errors += 1;
                if local.failures.len() < 5 {
                    local.failures.push(msg);
                }
            }
        }
    }
    shared.results.lock().unwrap().absorb(local);
}

/// Drives `requests` requests of the standard mix over
/// `config.conns` connections, verifying against `expected`, and returns
/// the phase's tally. `budget` is the run-level retry budget, decremented
/// in place so successive phases share it.
fn drive(
    config: &LoadgenConfig,
    budget: &AtomicUsize,
    expected: &[Vec<u8>; 3],
    profile: &ProfileText,
    requests: usize,
) -> WorkerTally {
    let shared = Shared {
        next: AtomicUsize::new(0),
        total: requests,
        retry_budget: budget,
        results: Mutex::new(WorkerTally::default()),
    };
    std::thread::scope(|scope| {
        for _ in 0..config.conns.max(1) {
            scope.spawn(|| worker(config, &shared, expected, profile));
        }
    });
    shared.results.into_inner().unwrap()
}

fn latency_ms(us: &mut [u64]) -> LatencyMs {
    us.sort_unstable();
    // Microsecond samples, reported in milliseconds; the nearest-rank
    // quantile itself is the shared `pps_obs::quantile` helper (the same
    // convention the bucketed histograms estimate against).
    LatencyMs {
        p50: percentile_sorted(us, 0.50) / 1e3,
        p95: percentile_sorted(us, 0.95) / 1e3,
        p99: percentile_sorted(us, 0.99) / 1e3,
        max: percentile_sorted(us, 1.0) / 1e3,
    }
}

/// One `Ping` round-trip for the daemon's health snapshot.
fn poll_health(addr: &str) -> Result<HealthSnapshot, String> {
    let mut client = Client::connect(addr, Some(Duration::from_secs(10)))
        .map_err(|e| format!("health connect: {e}"))?;
    match client.request(Request::Ping).map_err(|e| format!("health ping: {e}"))? {
        Response::Pong { health } => Ok(health),
        other => Err(format!("health ping: expected Pong, got {}", other.outcome_name())),
    }
}

/// The distinct artifacts cluster mode drives: for each of a handful of
/// benchmarks (the micro suite, plus `config.bench` when different), a
/// profile-guided `Compile`, a baseline `Compile`, and a `RunCell` —
/// distinct artifact keys that spread across the ring while every repeat
/// of one key lands on the same shard's cache.
fn cluster_requests(config: &LoadgenConfig) -> Vec<Request> {
    let mut benches: Vec<String> =
        ["alt", "ph", "corr", "wc"].iter().map(|s| s.to_string()).collect();
    if !benches.contains(&config.bench) {
        benches.push(config.bench.clone());
    }
    let mut requests = Vec::new();
    for bench in &benches {
        requests.push(Request::Compile {
            bench: bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            profile: None,
        });
        if config.scheme != "BB" {
            requests.push(Request::Compile {
                bench: bench.clone(),
                scale: config.scale,
                scheme: "BB".to_string(),
                profile: None,
            });
        }
        requests.push(Request::RunCell {
            bench: bench.clone(),
            scale: config.scale,
            scheme: config.scheme.clone(),
            strict: false,
        });
    }
    requests
}

/// Repeat-heavy pick: request `i` draws artifact `k` with triangular
/// weight `n - k`, so artifact 0 is roughly `n` times hotter than the
/// coldest — a skewed, deterministic key distribution (splitmix64 over
/// the request index; no RNG dependency, identical in every run).
fn pick_artifact(i: usize, n: usize) -> usize {
    debug_assert!(n > 0);
    let total = (n * (n + 1) / 2) as u64;
    let mut r = pps_core::hash::splitmix64(i as u64) % total;
    for k in 0..n {
        let w = (n - k) as u64;
        if r < w {
            return k;
        }
        r -= w;
    }
    n - 1
}

/// Cluster-mode worker: like [`worker`], but over the artifact table with
/// the skewed pick instead of the 3-slot round-robin mix.
fn cluster_worker(config: &LoadgenConfig, shared: &Shared, artifacts: &[(Envelope, Vec<u8>)]) {
    let mut client: Option<Client> = None;
    let mut local = WorkerTally::default();
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.total {
            break;
        }
        let (env, expected) = &artifacts[pick_artifact(i, artifacts.len())];
        match call_with_retry(config, shared, &mut local, &mut client, env, i) {
            Ok((resp, elapsed)) => {
                let got = encode_response(&resp);
                if got == *expected {
                    local.ok += 1;
                    local.latencies_us.push(elapsed.as_micros() as u64);
                } else {
                    local.mismatches += 1;
                    if local.failures.len() < 5 {
                        local.failures.push(format!(
                            "request {i} ({}): cluster reply bytes differ from in-process \
                             pipeline ({} vs {} bytes, outcome {})",
                            env.request.kind_name(),
                            got.len(),
                            expected.len(),
                            resp.outcome_name(),
                        ));
                    }
                }
            }
            Err(msg) => {
                local.errors += 1;
                if local.failures.len() < 5 {
                    local.failures.push(msg);
                }
            }
        }
    }
    shared.results.lock().unwrap().absorb(local);
}

/// Cluster mode: precompute expected bytes for every distinct artifact,
/// drive the repeat-heavy distribution through the router, and report the
/// delta of the fanned-in cluster counters over the run.
fn run_cluster(config: &LoadgenConfig, obs: &Obs) -> Result<LoadgenReport, String> {
    let _span = obs
        .span("loadgen-cluster")
        .arg("conns", config.conns as u64)
        .arg("requests", config.requests as u64);

    let requests = cluster_requests(config);
    obs.log(Level::Info, || {
        format!("precomputing expected replies for {} distinct artifacts ...", requests.len())
    });
    let mut artifacts: Vec<(Envelope, Vec<u8>)> = Vec::with_capacity(requests.len());
    for req in requests {
        let resp = execute(&req, &Obs::noop());
        if let Response::Error { message, .. } = &resp {
            return Err(format!("artifact precompute failed ({}): {message}", req.kind_name()));
        }
        artifacts.push((Envelope::new(req), encode_response(&resp)));
    }

    // Counter deltas, so a warm router/daemon doesn't skew the run.
    let base = poll_health(&config.addr)?;
    let budget = AtomicUsize::new(config.retry.budget);
    obs.log(Level::Info, || {
        format!(
            "driving {} requests over {} connections across {} artifacts ...",
            config.requests,
            config.conns,
            artifacts.len()
        )
    });
    let shared = Shared {
        next: AtomicUsize::new(0),
        total: config.requests,
        retry_budget: &budget,
        results: Mutex::new(WorkerTally::default()),
    };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.conns.max(1) {
            scope.spawn(|| cluster_worker(config, &shared, &artifacts));
        }
    });
    let elapsed = start.elapsed();
    let mut tally = shared.results.into_inner().unwrap();

    let last = poll_health(&config.addr)?;
    let hits = last.cache_hits.saturating_sub(base.cache_hits);
    let misses = last.cache_misses.saturating_sub(base.cache_misses);
    let cluster = ClusterStats {
        distinct_artifacts: artifacts.len(),
        shards: last.shards,
        routed: last.routed.saturating_sub(base.routed),
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: hits as f64 / ((hits + misses).max(1)) as f64,
        cache_entries: last.cache_entries,
        queue_depth: last.queue_depth,
    };

    let mut report = LoadgenReport {
        ok: tally.ok,
        mismatches: tally.mismatches,
        errors: tally.errors,
        busy_retries: tally.busy_retries,
        transport_retries: tally.transport_retries,
        budget_exhausted: tally.budget_exhausted,
        retry_budget: config.retry.budget,
        drift: None,
        cluster: Some(cluster),
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: tally.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: latency_ms(&mut tally.latencies_us),
        mix: tally.mix,
        probes_run: 0,
        probes_passed: 0,
        failures: std::mem::take(&mut tally.failures),
    };

    if config.probe_malformed {
        probe_malformed(config, &mut report, obs);
    }
    if config.shutdown {
        shutdown_daemon(config, &mut report, obs);
    }
    Ok(report)
}

/// Weight-inverts the path profile so its hot set becomes its cold set:
/// every maximal window's count becomes `(max + 1 - count) * BOOST`. The
/// boost makes the inverted mass dominate the daemon's aggregate even
/// though the mix's `Profile`/`RunCell` slots keep feeding true profiles
/// into it.
fn drifted_profile_text(profile: &ProfileText) -> Result<ProfileText, String> {
    const BOOST: u64 = 100;
    let path = path_from_text(&profile.path).map_err(|e| format!("parse path profile: {e}"))?;
    let per_proc: Vec<Vec<(Vec<_>, u64)>> = (0..path.num_procs())
        .map(|pi| {
            let windows = path.iter_maximal_windows(ProcId::new(pi as u32));
            let max = windows.iter().map(|(_, c)| *c).max().unwrap_or(0);
            windows
                .into_iter()
                .map(|(w, c)| (w, (max + 1 - c).saturating_mul(BOOST)))
                .collect()
        })
        .collect();
    let inverted = PathProfile::from_windows(path.depth(), per_proc);
    Ok(ProfileText { edge: profile.edge.clone(), path: path_to_text(&inverted) })
}

/// The drifting-workload phase: shift the mix's `Compile` slot to a
/// weight-inverted profile, drive another `config.requests` requests (all
/// still byte-verified), then poll the health snapshot until the daemon's
/// continuous-PGO loop hot-swaps a recompiled unit and finishes every
/// in-flight recompile. Phase-B outcomes are absorbed into `tally`.
fn drift_phase(
    config: &LoadgenConfig,
    budget: &AtomicUsize,
    profile: &ProfileText,
    tally: &mut WorkerTally,
    obs: &Obs,
) -> Result<(DriftStats, Duration), String> {
    let start = Instant::now();
    let base = poll_health(&config.addr)?;
    if !base.pgo_enabled {
        return Err("drift mode needs a daemon running with --pgo on".to_string());
    }

    let mut stats = DriftStats {
        phase_a_runcell: latency_ms(&mut tally.runcell_us.clone()),
        ..DriftStats::default()
    };
    stats.runcells[0] = tally.runcell_us.len();

    let drifted = drifted_profile_text(profile)?;
    let expected_b: [Vec<u8>; 3] = [0usize, 1, 2].map(|slot| {
        let req = mix_request(config, slot, &drifted);
        encode_response(&execute(&req, &Obs::noop()))
    });
    obs.log(Level::Info, || {
        format!(
            "drift phase: driving {} requests with weight-inverted profiles ...",
            config.requests
        )
    });
    let phase_b = drive(config, budget, &expected_b, &drifted, config.requests);
    stats.phase_b_runcell = latency_ms(&mut phase_b.runcell_us.clone());
    stats.runcells[1] = phase_b.runcell_us.len();
    tally.absorb(phase_b);

    // Wait for the hot-swap, then for the recompile tier to go idle.
    let shift = Instant::now();
    let deadline = shift + config.drift_timeout;
    let mut last;
    loop {
        last = poll_health(&config.addr)?;
        stats.health_polls += 1;
        if last.swaps > base.swaps {
            stats.swap_wait_s = shift.elapsed().as_secs_f64();
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "no hot-swap within {:?} (recompiles {}, swaps {}, rollbacks {}, \
                 profiles merged {}, drifted units {})",
                config.drift_timeout,
                last.recompiles,
                last.swaps,
                last.rollbacks,
                last.profiles_merged,
                last.drifted_units,
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    while last.in_flight_recompiles > 0 {
        if Instant::now() >= deadline {
            break; // reported via in_flight_final
        }
        std::thread::sleep(Duration::from_millis(100));
        last = poll_health(&config.addr)?;
        stats.health_polls += 1;
    }
    obs.log(Level::Info, || {
        format!(
            "drift detected and swapped after {:.2}s ({} recompiles, {} swaps, {} rollbacks)",
            stats.swap_wait_s, last.recompiles, last.swaps, last.rollbacks
        )
    });

    stats.profiles_merged = last.profiles_merged;
    stats.recompiles = last.recompiles;
    stats.swaps = last.swaps;
    stats.rollbacks = last.rollbacks;
    stats.max_generation = last.max_generation;
    stats.in_flight_final = last.in_flight_recompiles;
    Ok((stats, start.elapsed()))
}

/// Runs the load phase (plus optional probes and shutdown) against a
/// daemon at `config.addr`.
///
/// # Errors
/// Returns `Err` only when the run cannot start at all (expected-reply
/// precomputation failed, e.g. unknown benchmark). Per-request failures
/// are reported in the [`LoadgenReport`]; check [`LoadgenReport::clean`].
///
/// # Panics
/// Panics if a worker thread panics (it holds no locks across request
/// handling, so this indicates a bug in loadgen itself).
pub fn run(config: &LoadgenConfig, obs: &Obs) -> Result<LoadgenReport, String> {
    if config.cluster {
        return run_cluster(config, obs);
    }
    let _span = obs.span("loadgen").arg("conns", config.conns as u64).arg(
        "requests",
        config.requests as u64,
    );

    // Precompute the mix's expected replies in-process. `execute` is a pure
    // function of the request, so these are exactly the bytes the daemon
    // must produce.
    obs.log(Level::Info, || {
        format!(
            "precomputing expected replies for {} scale {} scheme {} ...",
            config.bench, config.scale, config.scheme
        )
    });
    let profile_req =
        Request::Profile { bench: config.bench.clone(), scale: config.scale, depth: 0 };
    let profile_resp = execute(&profile_req, &Obs::noop());
    let Response::Profile { edge, path } = &profile_resp else {
        return Err(format!("profile precompute failed: {profile_resp:?}"));
    };
    let profile = ProfileText { edge: edge.clone(), path: path.clone() };
    let expected: [Vec<u8>; 3] = [0usize, 1, 2].map(|slot| {
        let req = mix_request(config, slot, &profile);
        encode_response(&execute(&req, &Obs::noop()))
    });

    let budget = AtomicUsize::new(config.retry.budget);
    obs.log(Level::Info, || {
        format!("driving {} requests over {} connections ...", config.requests, config.conns)
    });
    let start = Instant::now();
    let mut tally = drive(config, &budget, &expected, &profile, config.requests);
    let mut elapsed = start.elapsed();

    // Drift mode rides on the same tally and retry budget: phase A above
    // was the steady phase; phase B shifts the profile under the daemon.
    let mut drift = None;
    if config.drift {
        match drift_phase(config, &budget, &profile, &mut tally, obs) {
            Ok((stats, phase_elapsed)) => {
                elapsed += phase_elapsed;
                drift = Some(stats);
            }
            Err(e) => {
                tally.errors += 1;
                tally.failures.push(format!("drift: {e}"));
            }
        }
    }

    let mut report = LoadgenReport {
        ok: tally.ok,
        mismatches: tally.mismatches,
        errors: tally.errors,
        busy_retries: tally.busy_retries,
        transport_retries: tally.transport_retries,
        budget_exhausted: tally.budget_exhausted,
        retry_budget: config.retry.budget,
        drift,
        cluster: None,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: tally.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: latency_ms(&mut tally.latencies_us),
        mix: tally.mix,
        probes_run: 0,
        probes_passed: 0,
        failures: std::mem::take(&mut tally.failures),
    };

    if config.probe_malformed {
        probe_malformed(config, &mut report, obs);
    }

    if config.shutdown {
        shutdown_daemon(config, &mut report, obs);
    }

    Ok(report)
}

/// Sends `Shutdown` and expects `ShuttingDown`; through a router this
/// fans out and drains the whole cluster.
fn shutdown_daemon(config: &LoadgenConfig, report: &mut LoadgenReport, obs: &Obs) {
    match Client::connect(&config.addr, Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())
        .and_then(|mut c| c.request(Request::Shutdown).map_err(|e| e.to_string()))
    {
        Ok(Response::ShuttingDown) => {
            obs.log(Level::Info, || "daemon acknowledged shutdown".to_string());
        }
        Ok(other) => {
            report.errors += 1;
            report
                .failures
                .push(format!("shutdown: expected ShuttingDown, got {}", other.outcome_name()));
        }
        Err(e) => {
            report.errors += 1;
            report.failures.push(format!("shutdown: {e}"));
        }
    }
}

/// One malformed-input case: raw bytes to send, and whether to half-close
/// the write side afterwards (the truncation probe).
struct Probe {
    name: &'static str,
    bytes: Vec<u8>,
    half_close: bool,
}

fn probes() -> Vec<Probe> {
    let good = frame::encode_frame(b"never decoded");
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"XPSF");
    let mut bad_version = good.clone();
    bad_version[4] = VERSION.wrapping_add(7);
    let mut oversized = good.clone();
    oversized[6..10].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_be_bytes());
    let mut bad_checksum = good.clone();
    let last = bad_checksum.len() - 1;
    bad_checksum[last] ^= 0xff;
    let truncated = good[..HEADER_LEN + 4].to_vec();
    vec![
        Probe { name: "bad-magic", bytes: bad_magic, half_close: false },
        Probe { name: "bad-version", bytes: bad_version, half_close: false },
        Probe { name: "oversized-length", bytes: oversized, half_close: false },
        Probe { name: "checksum-mismatch", bytes: bad_checksum, half_close: false },
        Probe { name: "truncated-frame", bytes: truncated, half_close: true },
    ]
}

/// A probe passes when the daemon answers with a structured error and/or
/// closes the connection — without hanging — and a fresh connection still
/// serves a good request afterwards.
fn probe_malformed(config: &LoadgenConfig, report: &mut LoadgenReport, obs: &Obs) {
    for probe in probes() {
        report.probes_run += 1;
        match run_probe(&config.addr, &probe) {
            Ok(()) => {
                report.probes_passed += 1;
                obs.log(Level::Debug, || format!("probe {}: rejected cleanly", probe.name));
            }
            Err(e) => {
                report.failures.push(format!("probe {}: {e}", probe.name));
                obs.log(Level::Error, || format!("probe {} FAILED: {e}", probe.name));
            }
        }
    }
    // The daemon must still be healthy after absorbing garbage.
    report.probes_run += 1;
    match Client::connect(&config.addr, Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())
        .and_then(|mut c| c.request(Request::Ping).map_err(|e| e.to_string()))
    {
        Ok(Response::Pong { .. }) => report.probes_passed += 1,
        Ok(other) => report
            .failures
            .push(format!("post-probe ping: expected Pong, got {}", other.outcome_name())),
        Err(e) => report.failures.push(format!("post-probe ping: {e}")),
    }
}

fn run_probe(addr: &str, probe: &Probe) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream.write_all(&probe.bytes).map_err(|e| format!("send: {e}"))?;
    if probe.half_close {
        stream.shutdown(Shutdown::Write).map_err(|e| format!("half-close: {e}"))?;
    }
    // The daemon replies with one structured-error frame and closes, or —
    // for header corruption it cannot safely frame a reply into — just
    // closes. Either way the stream must reach EOF without a hang.
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => {}
        // A reset after the daemon closed is also a clean rejection.
        Err(e)
            if e.kind() == std::io::ErrorKind::ConnectionReset
                || e.kind() == std::io::ErrorKind::ConnectionAborted => {}
        Err(e) => return Err(format!("read: {e} (timeout = daemon hung on garbage)")),
    }
    if reply.is_empty() {
        return Ok(()); // clean close without a reply
    }
    let payload = frame::read_frame(&mut reply.as_slice())
        .map_err(|e| format!("reply frame: {e}"))?;
    match pps_serve::proto::decode_response(&payload) {
        Ok(Response::Error { .. }) => Ok(()),
        Ok(other) => Err(format!("expected a structured error, got {}", other.outcome_name())),
        Err(e) => Err(format!("reply decode: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        let mut empty: [u64; 0] = [];
        assert_eq!(latency_ms(&mut empty).p50, 0.0);
        let mut us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let lat = latency_ms(&mut us);
        assert!((lat.p50 - 50.0).abs() < 1.5);
        assert!((lat.p95 - 95.0).abs() < 1.5);
        assert!((lat.max - 100.0).abs() < 0.01);
    }

    #[test]
    fn probe_set_covers_every_header_failure() {
        let names: Vec<&str> = probes().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["bad-magic", "bad-version", "oversized-length", "checksum-mismatch", "truncated-frame"]
        );
        // Bytes really are malformed: each probe must fail frame decoding
        // (the truncated probe by EOF).
        for p in probes() {
            assert!(
                frame::read_frame(&mut p.bytes.as_slice()).is_err(),
                "probe {} decoded as a valid frame",
                p.name
            );
        }
    }

    #[test]
    fn report_json_is_parseable() {
        let config = LoadgenConfig { addr: "127.0.0.1:0".into(), ..LoadgenConfig::default() };
        let mut report = LoadgenReport::default();
        report.failures.push("a \"quoted\" failure".to_string());
        let json = report.to_json(&config);
        pps_obs::json::parse(&json).expect("loadgen report JSON parses");
        // With cluster stats attached, still parseable.
        report.cluster = Some(ClusterStats {
            distinct_artifacts: 12,
            shards: 2,
            routed: 64,
            cache_hits: 52,
            cache_misses: 12,
            hit_rate: 52.0 / 64.0,
            cache_entries: 12,
            queue_depth: 0,
        });
        pps_obs::json::parse(&report.to_json(&config)).expect("cluster report JSON parses");
    }

    #[test]
    fn artifact_pick_is_skewed_deterministic_and_in_range() {
        let n = 12;
        let mut counts = vec![0usize; n];
        for i in 0..4096 {
            let k = pick_artifact(i, n);
            assert!(k < n);
            assert_eq!(k, pick_artifact(i, n), "pick must be deterministic");
            counts[k] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every artifact repeats: {counts:?}");
        assert!(
            counts[0] > counts[n - 1] * 3,
            "hot artifact must dominate the cold one: {counts:?}"
        );
    }

    #[test]
    fn cluster_request_set_is_distinct_and_covers_classes() {
        let config = LoadgenConfig { scheme: "P4".into(), ..LoadgenConfig::default() };
        let requests = cluster_requests(&config);
        assert_eq!(requests.len(), 12, "4 benches x (2 compiles + 1 runcell)");
        let encoded: std::collections::HashSet<Vec<u8>> =
            requests.iter().map(|r| pps_serve::proto::encode_request(&Envelope::new(r.clone()))).collect();
        assert_eq!(encoded.len(), requests.len(), "artifacts must be distinct");
        // A scheme of "BB" collapses the two compile slots.
        let config = LoadgenConfig { scheme: "BB".into(), ..LoadgenConfig::default() };
        assert_eq!(cluster_requests(&config).len(), 8);
    }

    /// Fake daemon for retry-policy tests: replies `Busy` to the first
    /// `busy_replies` requests on each connection, then `Pong`. With
    /// `busy_replies == usize::MAX` it is permanently saturated.
    fn busy_then_pong_server(busy_replies: usize) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || {
            // One connection is enough for these tests; exit when the
            // client hangs up.
            let (mut stream, _) = listener.accept().expect("accept");
            let mut served = 0usize;
            while frame::read_frame(&mut stream).is_ok() {
                let resp = if served < busy_replies {
                    Response::Busy
                } else {
                    Response::Pong { health: HealthSnapshot::default() }
                };
                served += 1;
                if frame::write_frame(&mut stream, &encode_response(&resp)).is_err() {
                    break;
                }
            }
        });
        (addr, handle)
    }

    fn fast_retry(max_attempts: usize, busy_attempts: usize, budget: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            busy_attempts,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
            budget,
        }
    }

    fn test_shared(budget: &AtomicUsize) -> Shared<'_> {
        Shared {
            next: AtomicUsize::new(0),
            total: 0,
            retry_budget: budget,
            results: Mutex::new(WorkerTally::default()),
        }
    }

    #[test]
    fn busy_replies_are_not_bounded_by_fault_attempts_or_budget() {
        // 10 Busy replies with max_attempts 2 and a ZERO fault budget:
        // backpressure waits must succeed anyway, without touching either
        // bound.
        let (addr, server) = busy_then_pong_server(10);
        let config = LoadgenConfig {
            addr,
            retry: fast_retry(2, 256, 0),
            ..LoadgenConfig::default()
        };
        let budget = AtomicUsize::new(config.retry.budget);
        let shared = test_shared(&budget);
        let mut local = WorkerTally::default();
        let mut client = None;
        let env = Envelope::new(Request::Ping);
        let got = call_with_retry(&config, &shared, &mut local, &mut client, &env, 0);
        assert!(matches!(got, Ok((Response::Pong { .. }, _))), "got {got:?}");
        assert_eq!(local.busy_retries, 10);
        assert_eq!(local.transport_retries, 0);
        assert_eq!(local.budget_exhausted, 0);
        assert_eq!(budget.load(Ordering::Relaxed), 0, "Busy must not draw the fault budget");
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn saturated_daemon_exhausts_the_busy_cap() {
        let (addr, server) = busy_then_pong_server(usize::MAX);
        let config = LoadgenConfig {
            addr,
            retry: fast_retry(6, 5, 1024),
            ..LoadgenConfig::default()
        };
        let budget = AtomicUsize::new(config.retry.budget);
        let shared = test_shared(&budget);
        let mut local = WorkerTally::default();
        let mut client = None;
        let env = Envelope::new(Request::Ping);
        let got = call_with_retry(&config, &shared, &mut local, &mut client, &env, 0);
        let err = got.expect_err("permanently busy daemon must fail the request");
        assert!(err.contains("still busy after 5"), "unexpected error: {err}");
        assert_eq!(local.busy_retries, 5);
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn transport_faults_still_drain_the_shared_budget() {
        // A server that drops the connection mid-request: the retry is a
        // transport fault, and with a zero budget it must surface as
        // budget exhaustion rather than retrying forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let _ = frame::read_frame(&mut stream);
            // Drop without replying: the client sees EOF.
        });
        let config =
            LoadgenConfig { addr, retry: fast_retry(6, 256, 0), ..LoadgenConfig::default() };
        let budget = AtomicUsize::new(config.retry.budget);
        let shared = test_shared(&budget);
        let mut local = WorkerTally::default();
        let mut client = None;
        let env = Envelope::new(Request::Ping);
        let got = call_with_retry(&config, &shared, &mut local, &mut client, &env, 0);
        let err = got.expect_err("dropped connection with zero budget must fail");
        assert!(err.contains("retry budget exhausted"), "unexpected error: {err}");
        assert_eq!(local.transport_retries, 1);
        assert_eq!(local.budget_exhausted, 1);
        server.join().expect("server thread");
    }
}
