//! Command-line experiment driver.
//!
//! ```text
//! pps-harness --experiment fig4 [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]
//!             [--jobs N] [--trace-out FILE] [--metrics-out FILE] [--log-level LEVEL]
//! pps-harness --all
//! ```
//!
//! `--jobs N` runs each experiment's benchmark × scheme cells on N worker
//! threads (default: the machine's available parallelism); tables and
//! metrics output are byte-identical for every N. `--trace-out` writes a
//! Chrome-trace-event JSON file (open it at <https://ui.perfetto.dev>);
//! `--metrics-out` writes the metrics registry as JSON; `--log-level`
//! controls progress logging on stderr (off|error|warn|info|debug, default
//! info).

use pps_core::GuardMode;
use pps_harness::experiments::{run_experiment_jobs, EXPERIMENTS};
use pps_harness::pool::default_jobs;
use pps_obs::{Level, Obs, ObsConfig};
use pps_suite::Scale;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pps-harness --experiment <id> [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]\n\
         \x20                  [--jobs N] [--trace-out FILE] [--metrics-out FILE] [--log-level off|error|warn|info|debug]\n\
         \x20      pps-harness --all [--scale N] [--csv] [--mode strict|degrade] [--jobs N]\n\
         experiments: {}\n\
         modes: strict  = abort on the first pipeline incident (CI, paper tables)\n\
         \x20      degrade = fall back to basic-block scheduling per failed procedure (default)\n\
         parallelism: --jobs runs benchmark x scheme cells on N worker threads\n\
         \x20           (default: available parallelism; output is identical for every N)\n\
         observability: --trace-out writes Chrome-trace JSON (view in Perfetto);\n\
         \x20             --metrics-out writes the counters/histograms registry as JSON",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::paper();
    let mut bench: Option<String> = None;
    let mut csv = false;
    let mut all = false;
    let mut mode = GuardMode::Degrade;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut level = Level::Info;
    let mut jobs = default_jobs();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => {
                experiment = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--scale" | "-s" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bench" | "-b" => {
                bench = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--mode" | "-m" => match it.next().unwrap_or_else(|| usage()).as_str() {
                "strict" => mode = GuardMode::Strict,
                "degrade" => mode = GuardMode::Degrade,
                _ => usage(),
            },
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            "--all" => all = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let ids: Vec<&str> = if all {
        EXPERIMENTS.to_vec()
    } else {
        match &experiment {
            Some(e) if EXPERIMENTS.contains(&e.as_str()) => vec![e.as_str()],
            Some(e) => {
                eprintln!("unknown experiment `{e}`");
                usage();
            }
            None => usage(),
        }
    };

    // Recording is selected per sink: spans/events only when --trace-out is
    // given, metrics only when --metrics-out is given. Logging always goes
    // through the same handle so `--log-level` governs all progress output.
    let obs = Obs::recording(ObsConfig {
        level,
        trace: trace_out.is_some(),
        metrics: metrics_out.is_some(),
    });

    let code = run_experiments(&ids, scale, bench.as_deref(), mode, jobs, csv, &obs);

    // Exports happen even when a run failed: a trace of the failure is
    // exactly what the flag was for.
    let mut export_failed = false;
    if let Some(path) = &trace_out {
        match obs.write_trace(path) {
            Ok(_) => obs.log(Level::Info, || format!("trace written to {path}")),
            Err(e) => {
                eprintln!("[pps error] writing trace to {path}: {e}");
                export_failed = true;
            }
        }
    }
    if let Some(path) = &metrics_out {
        match obs.write_metrics(path) {
            Ok(_) => obs.log(Level::Info, || format!("metrics written to {path}")),
            Err(e) => {
                eprintln!("[pps error] writing metrics to {path}: {e}");
                export_failed = true;
            }
        }
    }
    if export_failed {
        return ExitCode::FAILURE;
    }
    code
}

/// Runs every selected experiment under one root span, printing each table
/// as text or CSV.
fn run_experiments(
    ids: &[&str],
    scale: Scale,
    bench: Option<&str>,
    mode: GuardMode,
    jobs: usize,
    csv: bool,
    obs: &Obs,
) -> ExitCode {
    let _root = obs.span("pps-harness").arg("experiments", ids.len());
    for id in ids {
        obs.log(Level::Info, || {
            format!("running {id} at scale {} (mode {mode}, jobs {jobs}) ...", scale.0)
        });
        let start = std::time::Instant::now();
        let tables = match run_experiment_jobs(id, scale, bench, mode, jobs, obs) {
            Ok(tables) => tables,
            Err(e) => {
                obs.log(Level::Error, || format!("{id} failed: {e}"));
                return ExitCode::FAILURE;
            }
        };
        for t in &tables {
            if csv {
                print!("{}", t.to_csv());
            } else {
                println!("{}", t.render());
            }
        }
        obs.log(Level::Info, || {
            format!("{id} done in {:.1}s", start.elapsed().as_secs_f64())
        });
    }
    ExitCode::SUCCESS
}
