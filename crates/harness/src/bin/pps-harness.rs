//! Command-line experiment driver.
//!
//! ```text
//! pps-harness --experiment fig4 [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]
//! pps-harness --all
//! ```

use pps_core::GuardMode;
use pps_harness::experiments::{run_experiment, EXPERIMENTS};
use pps_suite::Scale;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pps-harness --experiment <id> [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]\n\
         \x20      pps-harness --all [--scale N] [--csv] [--mode strict|degrade]\n\
         experiments: {}\n\
         modes: strict  = abort on the first pipeline incident (CI, paper tables)\n\
         \x20      degrade = fall back to basic-block scheduling per failed procedure (default)",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::paper();
    let mut bench: Option<String> = None;
    let mut csv = false;
    let mut all = false;
    let mut mode = GuardMode::Degrade;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => {
                experiment = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--scale" | "-s" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bench" | "-b" => {
                bench = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--mode" | "-m" => match it.next().unwrap_or_else(|| usage()).as_str() {
                "strict" => mode = GuardMode::Strict,
                "degrade" => mode = GuardMode::Degrade,
                _ => usage(),
            },
            "--csv" => csv = true,
            "--all" => all = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let ids: Vec<&str> = if all {
        EXPERIMENTS.to_vec()
    } else {
        match &experiment {
            Some(e) if EXPERIMENTS.contains(&e.as_str()) => vec![e.as_str()],
            Some(e) => {
                eprintln!("unknown experiment `{e}`");
                usage();
            }
            None => usage(),
        }
    };

    for id in ids {
        eprintln!("[pps-harness] running {id} at scale {} (mode {mode}) ...", scale.0);
        let start = std::time::Instant::now();
        let tables = match run_experiment(id, scale, bench.as_deref(), mode) {
            Ok(tables) => tables,
            Err(e) => {
                eprintln!("[pps-harness] {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for t in &tables {
            if csv {
                print!("{}", t.to_csv());
            } else {
                println!("{}", t.render());
            }
        }
        eprintln!("[pps-harness] {id} done in {:.1}s", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
