//! Command-line experiment driver.
//!
//! ```text
//! pps-harness --experiment fig4 [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]
//!             [--jobs N] [--profile-in DIR] [--profile-out DIR]
//!             [--trace-out FILE] [--metrics-out FILE] [--log-level LEVEL]
//! pps-harness --all
//! pps-harness loadgen --addr HOST:PORT [--conns N] [--requests M] ...
//! ```
//!
//! `--jobs N` runs each experiment's benchmark × scheme cells on N worker
//! threads (default: the machine's available parallelism); tables and
//! metrics output are byte-identical for every N. `--profile-out DIR`
//! saves each benchmark's training profiles (`pps_profile::serialize` text
//! formats) into DIR; `--profile-in DIR` loads them instead of re-running
//! the training input (with `--profile-out` too, misses fall back to
//! training and save — cache semantics). `--trace-out` writes a
//! Chrome-trace-event JSON file (open it at <https://ui.perfetto.dev>);
//! `--metrics-out` writes the metrics registry as JSON; `--log-level`
//! controls progress logging on stderr (off|error|warn|info|debug, default
//! info).
//!
//! The `loadgen` subcommand drives a running `pps-serve` daemon and
//! verifies replies byte-for-byte against the in-process pipeline; see
//! `pps-harness loadgen --help`.

use pps_core::GuardMode;
use pps_harness::experiments::{run_experiment_jobs_config, EXPERIMENTS};
use pps_harness::loadgen::{self, LoadgenConfig};
use pps_harness::top::{self, TopConfig};
use pps_harness::pool::default_jobs;
use pps_harness::runner::RunConfig;
use pps_obs::{Level, Obs, ObsConfig};
use pps_suite::Scale;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pps-harness --experiment <id> [--scale N] [--bench NAME] [--csv] [--mode strict|degrade]\n\
         \x20                  [--jobs N] [--profile-in DIR] [--profile-out DIR]\n\
         \x20                  [--trace-out FILE] [--metrics-out FILE] [--log-level off|error|warn|info|debug]\n\
         \x20      pps-harness --all [--scale N] [--csv] [--mode strict|degrade] [--jobs N]\n\
         \x20      pps-harness loadgen --addr HOST:PORT [options]  (see `loadgen --help`)\n\
         \x20      pps-harness ping --addr HOST:PORT  (one health snapshot as JSON)\n\
         \x20      pps-harness top --addr HOST:PORT [options]      (see `top --help`)\n\
         experiments: {}\n\
         modes: strict  = abort on the first pipeline incident (CI, paper tables)\n\
         \x20      degrade = fall back to basic-block scheduling per failed procedure (default)\n\
         parallelism: --jobs runs benchmark x scheme cells on N worker threads\n\
         \x20           (default: available parallelism; output is identical for every N)\n\
         profiles: --profile-out saves training profiles; --profile-in reuses them\n\
         observability: --trace-out writes Chrome-trace JSON (view in Perfetto);\n\
         \x20             --metrics-out writes the counters/histograms registry as JSON",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn loadgen_usage() -> ! {
    eprintln!(
        "usage: pps-harness loadgen --addr HOST:PORT [--conns N] [--requests M]\n\
         \x20                          [--bench NAME] [--scale N] [--scheme NAME]\n\
         \x20                          [--probe-malformed] [--shutdown] [--out FILE]\n\
         \x20                          [--retries N] [--retry-budget N]\n\
         \x20                          [--busy-retries N]\n\
         \x20                          [--drift] [--drift-timeout-s N] [--cluster]\n\
         \x20                          [--log-level off|error|warn|info|debug]\n\
         Drives a pps-serve daemon with a Profile/Compile/RunCell mix over N\n\
         concurrent connections, verifying every reply byte-for-byte against\n\
         the in-process pipeline. Busy replies, timeouts, and disconnects are\n\
         retried with bounded backoff: --retries caps transport-fault attempts\n\
         per request, --retry-budget caps total fault retries per run, and\n\
         --busy-retries caps Busy (backpressure) waits per request, which\n\
         don't draw on the fault budget. --probe-malformed also\n\
         sends corrupt frames and asserts clean rejection; --shutdown drains\n\
         the daemon afterwards; --drift phase-shifts the workload's profiles\n\
         and waits up to --drift-timeout-s for a continuous-PGO hot-swap\n\
         (needs a daemon with --pgo on); --cluster drives a repeat-heavy\n\
         multi-artifact distribution (point --addr at a pps-shard router)\n\
         and reports cluster-wide cache hit rate and routing stats;\n\
         --out writes the report as JSON."
    );
    std::process::exit(2);
}

/// `pps-harness loadgen ...`: exit 0 only when every reply verified.
fn loadgen_main(args: &[String]) -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut out: Option<String> = None;
    let mut level = Level::Info;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().unwrap_or_else(|| loadgen_usage()).clone(),
            "--conns" => {
                config.conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| loadgen_usage());
            }
            "--requests" => {
                config.requests =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| loadgen_usage());
            }
            "--bench" => config.bench = it.next().unwrap_or_else(|| loadgen_usage()).clone(),
            "--scale" => {
                config.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| loadgen_usage());
            }
            "--scheme" => {
                // Canonicalize up front (`pk2` -> `Pk2`) so the report and
                // every request carry the same name the daemon keys by.
                config.scheme = it
                    .next()
                    .and_then(|v| pps_core::Scheme::parse(v))
                    .unwrap_or_else(|| loadgen_usage())
                    .name();
            }
            "--probe-malformed" => config.probe_malformed = true,
            "--shutdown" => config.shutdown = true,
            "--retries" => {
                config.retry.max_attempts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| loadgen_usage());
            }
            "--retry-budget" => {
                config.retry.budget =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| loadgen_usage());
            }
            "--busy-retries" => {
                config.retry.busy_attempts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| loadgen_usage());
            }
            "--drift" => config.drift = true,
            "--cluster" => config.cluster = true,
            "--drift-timeout-s" => {
                let s: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| loadgen_usage());
                config.drift_timeout = std::time::Duration::from_secs(s);
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| loadgen_usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| loadgen_usage()))
                    .unwrap_or_else(|| loadgen_usage());
            }
            "--help" | "-h" => loadgen_usage(),
            _ => loadgen_usage(),
        }
    }
    if config.addr.is_empty() {
        loadgen_usage();
    }

    let obs = Obs::recording(ObsConfig { level, trace: false, metrics: false });
    let report = match loadgen::run(&config, &obs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[loadgen error] {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} ok, {} mismatches, {} errors, {} busy + {} transport retries \
         in {:.2}s ({:.1} req/s; p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms max {:.1}ms; \
         probes {}/{})",
        report.ok,
        report.mismatches,
        report.errors,
        report.busy_retries,
        report.transport_retries,
        report.elapsed_s,
        report.throughput_rps,
        report.latency.p50,
        report.latency.p95,
        report.latency.p99,
        report.latency.max,
        report.probes_passed,
        report.probes_run,
    );
    if let Some(d) = &report.drift {
        println!(
            "loadgen drift: swap after {:.2}s ({} recompiles, {} swaps, {} rollbacks, \
             max generation {}, {} in flight at drain); runcell p50 {:.1}ms -> {:.1}ms",
            d.swap_wait_s,
            d.recompiles,
            d.swaps,
            d.rollbacks,
            d.max_generation,
            d.in_flight_final,
            d.phase_a_runcell.p50,
            d.phase_b_runcell.p50,
        );
    }
    if let Some(c) = &report.cluster {
        println!(
            "loadgen cluster: {} shards, {} routed over {} artifacts; cache {} hits / {} \
             misses ({:.0}% hit rate, {} entries), queue depth {}",
            c.shards,
            c.routed,
            c.distinct_artifacts,
            c.cache_hits,
            c.cache_misses,
            c.hit_rate * 100.0,
            c.cache_entries,
            c.queue_depth,
        );
    }
    for f in &report.failures {
        eprintln!("[loadgen failure] {f}");
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json(&config)) {
            eprintln!("[loadgen error] writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        obs.log(Level::Info, || format!("report written to {path}"));
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn top_usage() -> ! {
    eprintln!(
        "usage: pps-harness top --addr HOST:PORT [--interval-ms N] [--iterations N]\n\
         \x20                      [--watch-json]\n\
         Live dashboard for a pps-serve daemon started with --telemetry-addr:\n\
         polls /metrics (validated Prometheus exposition; rps from counter\n\
         deltas) and /health (windowed rates + latency quantiles) every\n\
         interval. --watch-json emits one machine-readable JSON line per poll\n\
         (schema pps-top v1) instead of repainting; --iterations N exits after\n\
         N polls (useful for scripts and CI)."
    );
    std::process::exit(2);
}

/// `pps-harness top ...`: exit 0 only while every poll scrapes cleanly.
fn top_main(args: &[String]) -> ExitCode {
    let mut config = TopConfig::default();
    let mut addr_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it.next().unwrap_or_else(|| top_usage()).clone();
                addr_set = true;
            }
            "--interval-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| top_usage());
                config.interval = std::time::Duration::from_millis(ms);
            }
            "--iterations" => {
                config.iterations = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| top_usage()),
                );
            }
            "--watch-json" => config.json = true,
            "--help" | "-h" => top_usage(),
            _ => top_usage(),
        }
    }
    if !addr_set {
        top_usage();
    }
    let mut stdout = std::io::stdout();
    match top::run(&config, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[top error] {e}");
            ExitCode::FAILURE
        }
    }
}

/// `pps-harness ping --addr HOST:PORT`: one PPSF `Ping` round-trip,
/// printing the raw health snapshot as one JSON line. Pointed at a
/// `pps-serve` daemon this is that shard's own counters; pointed at a
/// `pps-shard` router it is the fanned-in cluster view.
fn ping_main(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned(),
            _ => {
                eprintln!("usage: pps-harness ping --addr HOST:PORT");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: pps-harness ping --addr HOST:PORT");
        return ExitCode::from(2);
    };
    let health = match pps_serve::Client::connect(&addr, Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())
        .and_then(|mut c| {
            c.request(pps_serve::Request::Ping).map_err(|e| e.to_string())
        }) {
        Ok(pps_serve::Response::Pong { health }) => health,
        Ok(other) => {
            eprintln!("[ping error] expected Pong, got {}", other.outcome_name());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("[ping error] {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{{\"schema\":\"pps-ping\",\"proto_minor\":{},\"queue_depth\":{},\"queue_capacity\":{},\
         \"workers\":{},\"connections\":{},\"requests\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_evictions\":{},\"cache_invalidations\":{},\"cache_entries\":{},\
         \"routed\":{},\"shards\":{}}}",
        health.proto_minor,
        health.queue_depth,
        health.queue_capacity,
        health.workers,
        health.connections,
        health.requests,
        health.cache_hits,
        health.cache_misses,
        health.cache_evictions,
        health.cache_invalidations,
        health.cache_entries,
        health.routed,
        health.shards,
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("loadgen") {
        return loadgen_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return top_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("ping") {
        return ping_main(&args[1..]);
    }
    let mut experiment: Option<String> = None;
    let mut scale = Scale::paper();
    let mut bench: Option<String> = None;
    let mut csv = false;
    let mut all = false;
    let mut mode = GuardMode::Degrade;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut level = Level::Info;
    let mut jobs = default_jobs();
    let mut profile_in: Option<String> = None;
    let mut profile_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => {
                experiment = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--scale" | "-s" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bench" | "-b" => {
                bench = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--mode" | "-m" => match it.next().unwrap_or_else(|| usage()).as_str() {
                "strict" => mode = GuardMode::Strict,
                "degrade" => mode = GuardMode::Degrade,
                _ => usage(),
            },
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--profile-in" => profile_in = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--profile-out" => profile_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            "--all" => all = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let ids: Vec<&str> = if all {
        EXPERIMENTS.to_vec()
    } else {
        match &experiment {
            Some(e) if EXPERIMENTS.contains(&e.as_str()) => vec![e.as_str()],
            Some(e) => {
                eprintln!("unknown experiment `{e}`");
                usage();
            }
            None => usage(),
        }
    };

    // Recording is selected per sink: spans/events only when --trace-out is
    // given, metrics only when --metrics-out is given. Logging always goes
    // through the same handle so `--log-level` governs all progress output.
    let obs = Obs::recording(ObsConfig {
        level,
        trace: trace_out.is_some(),
        metrics: metrics_out.is_some(),
    });

    let mut config = RunConfig::paper();
    config.guard.mode = mode;
    config.profile_in = profile_in;
    config.profile_out = profile_out;

    let code = run_experiments(&ids, scale, bench.as_deref(), &config, jobs, csv, &obs);

    // Exports happen even when a run failed: a trace of the failure is
    // exactly what the flag was for.
    let mut export_failed = false;
    if let Some(path) = &trace_out {
        match obs.write_trace(path) {
            Ok(_) => obs.log(Level::Info, || format!("trace written to {path}")),
            Err(e) => {
                eprintln!("[pps error] writing trace to {path}: {e}");
                export_failed = true;
            }
        }
    }
    if let Some(path) = &metrics_out {
        match obs.write_metrics(path) {
            Ok(_) => obs.log(Level::Info, || format!("metrics written to {path}")),
            Err(e) => {
                eprintln!("[pps error] writing metrics to {path}: {e}");
                export_failed = true;
            }
        }
    }
    if export_failed {
        return ExitCode::FAILURE;
    }
    code
}

/// Runs every selected experiment under one root span, printing each table
/// as text or CSV.
fn run_experiments(
    ids: &[&str],
    scale: Scale,
    bench: Option<&str>,
    config: &RunConfig,
    jobs: usize,
    csv: bool,
    obs: &Obs,
) -> ExitCode {
    let _root = obs.span("pps-harness").arg("experiments", ids.len());
    for id in ids {
        let mode = config.guard.mode;
        obs.log(Level::Info, || {
            format!("running {id} at scale {} (mode {mode}, jobs {jobs}) ...", scale.0)
        });
        let start = std::time::Instant::now();
        let tables = match run_experiment_jobs_config(id, scale, bench, config, jobs, obs) {
            Ok(tables) => tables,
            Err(e) => {
                obs.log(Level::Error, || format!("{id} failed: {e}"));
                return ExitCode::FAILURE;
            }
        };
        for t in &tables {
            if csv {
                print!("{}", t.to_csv());
            } else {
                println!("{}", t.render());
            }
        }
        obs.log(Level::Info, || {
            format!("{id} done in {:.1}s", start.elapsed().as_secs_f64())
        });
    }
    ExitCode::SUCCESS
}
