//! Developer tool: dump what formation and compaction did to a benchmark.
//!
//! ```text
//! pps-explore --bench wc [--scheme P4] [--scale N] [--ir] [--dot] [--schedules]
//!             [--trace-out FILE] [--metrics-out FILE] [--log-level LEVEL]
//! ```
//!
//! Prints per-procedure superblock summaries (blocks, sizes, schedules) and
//! optionally the transformed program's textual IR or Graphviz CFGs.
//! `--trace-out` / `--metrics-out` record formation + compaction the same
//! way `pps-harness` does (Chrome-trace JSON / metrics JSON).

use pps_core::{form_program_obs, FormConfig, Scheme};
use pps_compact::{try_compact_program_obs, CompactConfig};
use pps_ir::interp::ExecConfig;
use pps_ir::trace::TeeSink;
use pps_ir::Exec;
use pps_obs::{Level, Obs, ObsConfig};
use pps_profile::{EdgeProfiler, PathProfiler};
use pps_suite::{benchmark_by_name, Scale};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: pps-explore --bench NAME [--scheme BB|M4|M16|P4|P4e|Pk2|Pk3|Px4] [--scale N] \
         [--ir] [--dot] [--schedules] \
         [--trace-out FILE] [--metrics-out FILE] [--log-level off|error|warn|info|debug]"
    );
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    Scheme::parse(s)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_name = None;
    let mut scheme = Scheme::P4;
    let mut scale = Scale(2);
    let mut show_ir = false;
    let mut show_dot = false;
    let mut show_schedules = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut level = Level::Info;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" | "-b" => bench_name = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--scheme" => {
                scheme = parse_scheme(it.next().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| usage())
            }
            "--scale" | "-s" => {
                scale = Scale(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--ir" => show_ir = true,
            "--dot" => show_dot = true,
            "--schedules" => show_schedules = true,
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let Some(bench_name) = bench_name else { usage() };
    let Some(bench) = benchmark_by_name(&bench_name, scale) else {
        eprintln!("unknown benchmark `{bench_name}`");
        return ExitCode::FAILURE;
    };

    let obs = Obs::recording(ObsConfig {
        level,
        trace: trace_out.is_some(),
        metrics: metrics_out.is_some(),
    });
    let root = obs
        .span("pps-explore")
        .arg("bench", bench_name.as_str())
        .arg("scheme", scheme.name());

    let mut program = bench.program.clone();
    let profile_span = obs.span("profile");
    let train = |program: &pps_ir::Program| {
        let mut tee = TeeSink::new(EdgeProfiler::new(program), PathProfiler::new(program, 15));
        Exec::new(program, ExecConfig::default())
            .run_traced(&bench.train_args, &mut tee)
            .expect("train run");
        (tee.a.finish(), tee.b.finish())
    };
    let (edge, path) = match scheme.kpath_k() {
        // `Pk*`: derive the path profile from a k-iteration training run.
        Some(k) => {
            let mut tee = TeeSink::new(
                EdgeProfiler::new(&program),
                pps_profile::KPathProfiler::new(&program, k as usize),
            );
            Exec::new(&program, ExecConfig::default())
                .run_traced(&bench.train_args, &mut tee)
                .expect("train run");
            let kprof = tee.b.finish();
            println!(
                "k-path profile (k={k}): {} distinct paths across {} procs",
                (0..kprof.num_procs())
                    .map(|p| kprof.distinct_paths(pps_ir::ProcId::new(p as u32)))
                    .sum::<usize>(),
                kprof.num_procs(),
            );
            (tee.a.finish(), kprof.to_path_profile(15))
        }
        None => train(&program),
    };
    // `Px4`: guarded inlining of the hottest call sites, then a retrain on
    // the inlined program — the same two-phase flow the runner uses.
    let (edge, path) = if matches!(scheme, Scheme::Inter { .. }) {
        let inline_config = pps_core::InlineConfig {
            oracle_inputs: vec![bench.train_args.clone()],
            ..pps_core::InlineConfig::default()
        };
        let outcome = pps_core::inline_hot_calls(&mut program, &edge, &inline_config);
        println!(
            "inline phase: {} sites inlined, {} rolled back, {} skipped",
            outcome.inlined.len(),
            outcome.rolled_back,
            outcome.skipped,
        );
        if outcome.inlined.is_empty() { (edge, path) } else { train(&program) }
    } else {
        (edge, path)
    };
    edge.record_metrics(&obs);
    path.record_metrics(&obs);
    drop(profile_span);
    let formed = match form_program_obs(
        &mut program,
        &edge,
        Some(&path),
        scheme,
        &FormConfig::default(),
        &obs,
    ) {
        Ok(formed) => formed,
        Err(e) => {
            eprintln!("{bench_name}: formation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "benchmark {bench_name}, scheme {}: {} superblocks, static {} -> {} instrs, \
         {} tail-dup + {} enlargement blocks, {} splits",
        scheme.name(),
        formed.stats.superblocks,
        formed.stats.static_before,
        formed.stats.static_after,
        formed.stats.tail_dup_blocks,
        formed.stats.enlarged_blocks,
        formed.stats.splits,
    );

    let compacted =
        match try_compact_program_obs(&mut program, &formed.partition, &CompactConfig::default(), &obs)
        {
            Ok(compacted) => compacted,
            Err(e) => {
                eprintln!("{bench_name}: compaction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    for (pid, proc) in program.iter_procs() {
        let cp = compacted.proc(pid);
        println!("\nproc {} ({} blocks, {} superblocks):", proc.name, proc.blocks.len(), cp.superblocks.len());
        for (i, sb) in cp.superblocks.iter().enumerate() {
            let s = &sb.schedule;
            println!(
                "  sb{i}: head {}, {} blocks, {} instrs in {} cycles",
                sb.spec.head(),
                sb.spec.len(),
                s.n_items,
                s.n_cycles
            );
            if show_schedules {
                for (pos, &b) in sb.spec.blocks.iter().enumerate() {
                    match s.exit_cycles[pos] {
                        Some(c) => println!(
                            "      {b} exit@cycle {c} (fetch {} instrs)",
                            s.fetch_counts[pos]
                        ),
                        None => println!("      {b} (internal jump, elided)"),
                    }
                }
            }
        }
        if show_dot {
            println!("\n{}", pps_ir::dot::proc_to_dot(proc));
        }
    }
    if show_ir {
        println!("\n=== transformed program ===\n{}", pps_ir::text::print_program(&program));
    }
    drop(root);
    if let Some(p) = &trace_out {
        if let Err(e) = obs.write_trace(p) {
            eprintln!("[pps error] writing trace to {p}: {e}");
            return ExitCode::FAILURE;
        }
        obs.log(Level::Info, || format!("trace written to {p}"));
    }
    if let Some(p) = &metrics_out {
        if let Err(e) = obs.write_metrics(p) {
            eprintln!("[pps error] writing metrics to {p}: {e}");
            return ExitCode::FAILURE;
        }
        obs.log(Level::Info, || format!("metrics written to {p}"));
    }
    ExitCode::SUCCESS
}
