//! `perl` — interpreted programming language (Table 1: `primes` input).
//!
//! perl's profile is a stack-machine opcode dispatch loop with a skewed
//! opcode distribution. Matching the paper's `primes` workload, the
//! synthetic "script" computes a prime sieve: the analog interprets a
//! bytecode program (push/arith/compare/jump/store ops) that counts primes
//! by trial division — an interpreter loop whose *interpreted* program
//! supplies the characteristic opcode stream.

use crate::util::{Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};

/// Opcodes of the interpreted stack machine.
const OP_PUSH: i64 = 0; // push imm
const OP_LOAD: i64 = 1; // push var[imm]
const OP_STORE: i64 = 2; // var[imm] = pop
const OP_ADD: i64 = 3;
const OP_REM: i64 = 4;
const OP_LT: i64 = 5;
const OP_EQZ: i64 = 6; // top = (top == 0)
const OP_JZ: i64 = 7; // jump to imm if pop == 0
const OP_JMP: i64 = 8;
const OP_HALT: i64 = 9;

fn op(code: i64, imm: i64) -> i64 {
    code | imm << 8
}

/// The interpreted "script": count primes in 2..limit by trial division.
///
/// vars: 0 = n (candidate), 1 = d (divisor), 2 = count, 3 = limit,
/// 4 = scratch.
fn primes_script() -> Vec<i64> {
    // n = 2; count = 0
    let mut s = vec![
        op(OP_PUSH, 2),  // 0
        op(OP_STORE, 0), // 1
        op(OP_PUSH, 0),  // 2
        op(OP_STORE, 2), // 3
    ];
    let outer = s.len() as i64; // 4
    // if !(n < limit) halt
    s.push(op(OP_LOAD, 0)); // 4
    s.push(op(OP_LOAD, 3)); // 5
    s.push(op(OP_LT, 0)); // 6
    let jz_halt_at = s.len();
    s.push(op(OP_JZ, 0)); // 7 (patched)
    // d = 2
    s.push(op(OP_PUSH, 2)); // 8
    s.push(op(OP_STORE, 1)); // 9
    let inner = s.len() as i64; // 10
    // if !(d < n) -> prime
    s.push(op(OP_LOAD, 1));
    s.push(op(OP_LOAD, 0));
    s.push(op(OP_LT, 0));
    let jz_prime_at = s.len();
    s.push(op(OP_JZ, 0)); // patched -> prime
    // if n % d == 0 -> not prime
    s.push(op(OP_LOAD, 0));
    s.push(op(OP_LOAD, 1));
    s.push(op(OP_REM, 0));
    s.push(op(OP_EQZ, 0));
    let jz_cont_at = s.len();
    s.push(op(OP_JZ, 0)); // patched -> continue divisor loop
    let jmp_notprime_at = s.len();
    s.push(op(OP_JMP, 0)); // patched -> next candidate
    // continue divisor loop: d += 1; goto inner
    let cont = s.len() as i64;
    s.push(op(OP_LOAD, 1));
    s.push(op(OP_PUSH, 1));
    s.push(op(OP_ADD, 0));
    s.push(op(OP_STORE, 1));
    s.push(op(OP_JMP, inner));
    // prime: count += 1
    let prime = s.len() as i64;
    s.push(op(OP_LOAD, 2));
    s.push(op(OP_PUSH, 1));
    s.push(op(OP_ADD, 0));
    s.push(op(OP_STORE, 2));
    // next: n += 1; goto outer
    let next = s.len() as i64;
    s.push(op(OP_LOAD, 0));
    s.push(op(OP_PUSH, 1));
    s.push(op(OP_ADD, 0));
    s.push(op(OP_STORE, 0));
    s.push(op(OP_JMP, outer));
    let halt = s.len() as i64;
    s.push(op(OP_HALT, 0));
    // Patch forward jumps.
    s[jz_halt_at] = op(OP_JZ, halt);
    s[jz_prime_at] = op(OP_JZ, prime);
    s[jz_cont_at] = op(OP_JZ, cont);
    s[jmp_notprime_at] = op(OP_JMP, next);
    s
}

/// Builds the `perl` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let script = primes_script();
    let script_base = 0i64;
    let vars_base = script.len() as i64;
    let stack_base = vars_base + 8;
    let mut data = script;
    data.extend_from_slice(&[0; 8]);
    let mem = (stack_base + 256) as usize + 1024;

    // Train and test differ by the sieve limit (different dynamic opcode
    // streams).
    let train_limit = scale.iters(260);
    let test_limit = scale.iters(300) + 17;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);

    let mut f = pb.begin_proc("main", 1);
    let limit = Reg::new(0);
    let pc = f.reg();
    let sp = f.reg();
    let word = f.reg();
    let opc = f.reg();
    let imm = f.reg();
    let a = f.reg();
    let b = f.reg();
    let c = f.reg();
    let addr = f.reg();
    let steps = f.reg();
    // var[3] = limit
    f.mov(addr, vars_base + 3);
    f.store(Operand::Reg(limit), addr, 0);
    f.mov(pc, 0i64);
    f.mov(sp, stack_base);
    f.mov(steps, 0i64);

    let head = f.new_block();
    let exit = f.new_block();
    let cases: Vec<_> = (0..10).map(|_| f.new_block()).collect();
    let jz_taken = f.new_block();
    let jz_not = f.new_block();
    let next_pc = f.new_block();

    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::Add, addr, pc, script_base);
    f.load(word, addr, 0);
    f.alu(AluOp::And, opc, word, 0xFFi64);
    f.alu(AluOp::Shr, imm, word, 8i64);
    f.alu(AluOp::Add, steps, steps, 1i64);
    f.switch(opc, cases.clone(), exit);

    // push imm
    f.switch_to(cases[OP_PUSH as usize]);
    f.store(Operand::Reg(imm), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // load var
    f.switch_to(cases[OP_LOAD as usize]);
    f.alu(AluOp::Add, addr, imm, vars_base);
    f.load(a, addr, 0);
    f.store(Operand::Reg(a), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // store var
    f.switch_to(cases[OP_STORE as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::Add, addr, imm, vars_base);
    f.store(Operand::Reg(a), addr, 0);
    f.jump(next_pc);
    // add
    f.switch_to(cases[OP_ADD as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(b, sp, 0);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::Add, a, a, b);
    f.store(Operand::Reg(a), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // rem
    f.switch_to(cases[OP_REM as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(b, sp, 0);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::Rem, a, a, b);
    f.store(Operand::Reg(a), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // lt
    f.switch_to(cases[OP_LT as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(b, sp, 0);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::CmpLt, a, a, b);
    f.store(Operand::Reg(a), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // eqz
    f.switch_to(cases[OP_EQZ as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::CmpEq, a, a, 0i64);
    f.store(Operand::Reg(a), sp, 0);
    f.alu(AluOp::Add, sp, sp, 1i64);
    f.jump(next_pc);
    // jz
    f.switch_to(cases[OP_JZ as usize]);
    f.alu(AluOp::Sub, sp, sp, 1i64);
    f.load(a, sp, 0);
    f.alu(AluOp::CmpEq, c, a, 0i64);
    f.branch(c, jz_taken, jz_not);
    f.switch_to(jz_taken);
    f.mov(pc, Operand::Reg(imm));
    f.jump(head);
    f.switch_to(jz_not);
    f.jump(next_pc);
    // jmp
    f.switch_to(cases[OP_JMP as usize]);
    f.mov(pc, Operand::Reg(imm));
    f.jump(head);
    // halt
    f.switch_to(cases[OP_HALT as usize]);
    f.jump(exit);

    f.switch_to(next_pc);
    f.alu(AluOp::Add, pc, pc, 1i64);
    f.jump(head);

    f.switch_to(exit);
    // Output the prime count (var 2) and dynamic step count.
    f.mov(addr, vars_base + 2);
    f.load(a, addr, 0);
    f.out(a);
    f.out(steps);
    f.ret(Some(Operand::Reg(a)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "perl",
        description: "Interpreted programming lang.",
        category: Category::Spec95,
        program,
        train_args: vec![train_limit],
        test_args: vec![test_limit],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    fn host_primes(limit: i64) -> i64 {
        (2..limit).filter(|&n| (2..n).all(|d| n % d != 0)).count() as i64
    }

    #[test]
    fn interpreted_sieve_counts_primes() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        assert_eq!(r.output[0], host_primes(b.train_args[0]));
    }

    #[test]
    fn dispatch_dominates() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let steps = r.output[1] as u64;
        assert!(steps > 1000, "interpreted steps: {steps}");
        // Each step executes one switch; branch count is dominated by
        // dispatch.
        assert!(r.counts.branches >= steps);
    }
}
