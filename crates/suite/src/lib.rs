#![warn(missing_docs)]

//! The benchmark suite of Table 1, as synthetic analogs.
//!
//! The paper evaluates three microbenchmarks (`alt`, `ph`, `corr` — built
//! here exactly as described in Table 1's caption) and eleven SPECint
//! programs. SPEC sources, reference inputs and an Alpha toolchain are not
//! available in this environment, so each SPEC program is replaced by a
//! synthetic analog that reproduces the control-flow character the paper
//! attributes to it (see DESIGN.md §4 for the substitution table): `wc`'s
//! byte-classification loop, `compress`'s hash match/miss loop, `eqntott`'s
//! tiny correlated-branch-guarded block, `espresso`'s data-dependent
//! bit-set loops, `gcc`'s large call-heavy switch-driven CFG, `go`'s
//! recursion over low-iteration loops, `ijpeg`'s deep regular loop nests,
//! `li`'s interpreter dispatch with short list walks, `m88ksim`'s
//! decode–dispatch loop, `perl`'s stack-machine opcode dispatch, and
//! `vortex`'s method-call-heavy object store.
//!
//! Every benchmark carries distinct *training* and *testing* inputs (the
//! paper's methodology): profiles are collected with
//! [`Benchmark::train_args`] and performance is measured with
//! [`Benchmark::test_args`]. Both input datasets live in the program's data
//! section; the argument vector selects which one a run uses.
//!
//! # Example
//!
//! ```
//! use pps_suite::{all_benchmarks, Scale};
//! let benches = all_benchmarks(Scale::quick());
//! assert_eq!(benches.len(), 14);
//! assert!(benches.iter().any(|b| b.name == "alt"));
//! ```

pub mod com;
pub mod eqn;
pub mod esp;
pub mod gcc;
pub mod go;
pub mod ijpeg;
pub mod li;
pub mod m88k;
pub mod micro;
pub mod perl;
pub mod util;
pub mod vortex;
pub mod wc;

pub use util::{Benchmark, Category, Scale};

/// Builds all fourteen benchmarks of Table 1 at the given scale.
pub fn all_benchmarks(scale: Scale) -> Vec<Benchmark> {
    vec![
        micro::alt(scale),
        micro::ph(scale),
        micro::corr(scale),
        wc::build(scale),
        com::build(scale),
        eqn::build(scale),
        esp::build(scale),
        gcc::build(scale),
        go::build(scale),
        ijpeg::build(scale),
        li::build(scale),
        m88k::build(scale),
        perl::build(scale),
        vortex::build(scale),
    ]
}

/// Finds a benchmark by name.
pub fn benchmark_by_name(name: &str, scale: Scale) -> Option<Benchmark> {
    all_benchmarks(scale).into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;

    #[test]
    fn all_benchmarks_run_on_both_inputs() {
        for b in all_benchmarks(Scale::quick()) {
            verify_program(&b.program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let interp = Interp::new(&b.program, ExecConfig::default());
            let train = interp
                .run(&b.train_args)
                .unwrap_or_else(|e| panic!("{} train: {e}", b.name));
            let test = interp
                .run(&b.test_args)
                .unwrap_or_else(|e| panic!("{} test: {e}", b.name));
            assert!(!train.output.is_empty(), "{} emits a checksum", b.name);
            assert!(!test.output.is_empty(), "{} emits a checksum", b.name);
            assert!(
                train.counts.branches > 100,
                "{} train too small: {} branches",
                b.name,
                train.counts.branches
            );
        }
    }

    #[test]
    fn train_and_test_inputs_differ_behaviorally() {
        for b in all_benchmarks(Scale::quick()) {
            if matches!(b.name, "alt" | "ph" | "corr") {
                // Micros take "null" input in the paper; train == test is
                // acceptable there.
                continue;
            }
            let interp = Interp::new(&b.program, ExecConfig::default());
            let train = interp.run(&b.train_args).unwrap();
            let test = interp.run(&b.test_args).unwrap();
            assert_ne!(
                train.output, test.output,
                "{}: train and test must exercise different data",
                b.name
            );
        }
    }

    #[test]
    fn scale_grows_dynamic_size() {
        for (small, large) in all_benchmarks(Scale::quick())
            .into_iter()
            .zip(all_benchmarks(Scale(4)))
        {
            let i1 = Interp::new(&small.program, ExecConfig::default());
            let r1 = i1.run(&small.test_args).unwrap();
            let i2 = Interp::new(&large.program, ExecConfig::default());
            let r2 = i2.run(&large.test_args).unwrap();
            assert!(
                r2.counts.branches > r1.counts.branches,
                "{}: scaling must grow work",
                small.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("gcc", Scale::quick()).is_some());
        assert!(benchmark_by_name("nonesuch", Scale::quick()).is_none());
    }
}
