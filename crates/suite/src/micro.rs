//! The three microbenchmarks of Table 1.
//!
//! - `alt` — "a single loop containing a conditional that follows the
//!   repeated pattern TTTF TTTF …". Path profiles of depth ≥ 4 branches see
//!   the alternation exactly; edge profiles only see a 75% taken rate.
//! - `ph` — "a single loop containing a conditional … following the pattern
//!   TTT…TFFF…F" (phased behavior; Figure 3's PATH2).
//! - `corr` — the simple branch-correlation example of Young & Smith: a
//!   second branch whose direction is fully determined by an earlier one,
//!   invisible to point profiles.

use crate::util::{Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Program};

fn single_cond_loop(pattern_alt: bool, iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let c = f.reg();
    let t = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    if pattern_alt {
        // TTTF: taken when i % 4 != 3.
        f.alu(AluOp::Rem, t, i, 4i64);
        f.alu(AluOp::CmpNe, c, t, 3i64);
    } else {
        // Phased: taken during the first half of the run.
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(iters / 2));
    }
    f.branch(c, then_b, else_b);
    f.switch_to(then_b);
    f.alu(AluOp::Add, acc, acc, 3i64);
    f.alu(AluOp::Xor, acc, acc, i);
    f.jump(latch);
    f.switch_to(else_b);
    f.alu(AluOp::Mul, acc, acc, 5i64);
    f.alu(AluOp::And, acc, acc, 0xFFFFi64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(iters));
    f.branch(c, head, exit);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.finish(main)
}

/// The `alt` microbenchmark: TTTF-repeating conditional inside one loop.
pub fn alt(scale: Scale) -> Benchmark {
    let iters = scale.iters(20_000);
    Benchmark {
        name: "alt",
        description: "Sorted example",
        category: Category::Micro,
        program: single_cond_loop(true, iters),
        train_args: vec![],
        test_args: vec![],
    }
}

/// The `ph` microbenchmark: phased TTT…TFFF…F conditional inside one loop.
pub fn ph(scale: Scale) -> Benchmark {
    let iters = scale.iters(20_000);
    Benchmark {
        name: "ph",
        description: "Phased example",
        category: Category::Micro,
        program: single_cond_loop(false, iters),
        train_args: vec![],
        test_args: vec![],
    }
}

/// The `corr` microbenchmark: the second branch's direction is a function
/// of the first branch's direction within the same iteration.
pub fn corr(scale: Scale) -> Benchmark {
    let iters = scale.iters(5_000);
    let mut pb = ProgramBuilder::new();
    let mut f = pb.begin_proc("main", 0);
    let i = f.reg();
    let acc = f.reg();
    let x = f.reg();
    let c = f.reg();
    let t = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let a1 = f.new_block();
    let a2 = f.new_block();
    let mid = f.new_block();
    let b1 = f.new_block();
    let b2 = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    // First branch: i % 2.
    f.alu(AluOp::Rem, t, i, 2i64);
    f.alu(AluOp::CmpEq, c, t, 0i64);
    f.branch(c, a1, a2);
    f.switch_to(a1);
    f.mov(x, 1i64);
    f.alu(AluOp::Add, acc, acc, 7i64);
    f.jump(mid);
    f.switch_to(a2);
    f.mov(x, 0i64);
    f.alu(AluOp::Add, acc, acc, 11i64);
    f.jump(mid);
    f.switch_to(mid);
    // Some shared work separating the correlated pair.
    f.alu(AluOp::Xor, acc, acc, i);
    // Second branch: fully correlated with the first (x == 1).
    f.alu(AluOp::CmpEq, c, x, 1i64);
    f.branch(c, b1, b2);
    f.switch_to(b1);
    f.alu(AluOp::Add, acc, acc, 1i64);
    f.jump(latch);
    f.switch_to(b2);
    f.alu(AluOp::Sub, acc, acc, 1i64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(iters));
    f.branch(c, head, exit);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    Benchmark {
        name: "corr",
        description: "Branch corr. example",
        category: Category::Micro,
        program: pb.finish(main),
        train_args: vec![],
        test_args: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::BlockId;
    use pps_profile::PathProfiler;

    #[test]
    fn alt_pattern_is_tttf() {
        let b = alt(Scale::quick());
        let mut pp = PathProfiler::new(&b.program, 15);
        Interp::new(&b.program, ExecConfig::default())
            .run_traced(&[], &mut pp)
            .unwrap();
        let pp = pp.finish();
        let pid = b.program.entry;
        // Blocks: 0 entry, 1 head, 2 then, 3 else, 4 latch, 5 exit.
        let (head, then_b, else_b, latch) =
            (BlockId::new(1), BlockId::new(2), BlockId::new(3), BlockId::new(4));
        let taken = pp.freq(pid, &[head, then_b]);
        let not = pp.freq(pid, &[head, else_b]);
        assert!(taken > 0 && not > 0);
        assert_eq!(taken, 3 * not, "3:1 taken ratio");
        // Path evidence of alternation: T after three Ts never happens.
        let four_taken = [
            head, then_b, latch, head, then_b, latch, head, then_b, latch, head, then_b,
        ];
        assert_eq!(pp.freq(pid, &four_taken), 0, "TTTT never occurs");
        // But TTTF always follows.
        let tttf = [
            head, then_b, latch, head, then_b, latch, head, then_b, latch, head, else_b,
        ];
        assert!(pp.freq(pid, &tttf) > 0);
    }

    #[test]
    fn corr_second_branch_fully_correlated() {
        let b = corr(Scale::quick());
        let mut pp = PathProfiler::new(&b.program, 15);
        Interp::new(&b.program, ExecConfig::default())
            .run_traced(&[], &mut pp)
            .unwrap();
        let pp = pp.finish();
        let pid = b.program.entry;
        // Blocks: 0 entry, 1 head, 2 a1, 3 a2, 4 mid, 5 b1, 6 b2, 7 latch.
        let (a1, a2, mid, b1, b2) = (
            BlockId::new(2),
            BlockId::new(3),
            BlockId::new(4),
            BlockId::new(5),
            BlockId::new(6),
        );
        assert!(pp.freq(pid, &[a1, mid, b1]) > 0);
        assert_eq!(pp.freq(pid, &[a1, mid, b2]), 0, "a1 implies b1");
        assert!(pp.freq(pid, &[a2, mid, b2]) > 0);
        assert_eq!(pp.freq(pid, &[a2, mid, b1]), 0, "a2 implies b2");
    }

    #[test]
    fn ph_is_phased() {
        let b = ph(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default()).run(&[]).unwrap();
        // Branch count: one conditional + one loop branch per iteration.
        assert_eq!(r.counts.branches, 2 * 20_000);
    }
}
