//! `vortex` — object-oriented database (Table 1: SPEC95 test input).
//!
//! vortex is method-call-heavy: transactions look objects up in an index,
//! then dispatch through per-class methods that touch object fields. The
//! analog stores class-tagged objects in memory, processes a transaction
//! stream (lookup / update / query), probes a hash index with a short
//! collision loop, and dispatches on the object's class tag to one of
//! several method procedures.

use crate::util::{gen_uniform, rng, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, ProcId, Reg};
use rand::Rng;

const SALT: u64 = 0x7EC;
/// Objects: [class, key, field_a, field_b] (4 words).
const OBJ_WORDS: i64 = 4;
const CLASSES: i64 = 5;
const INDEX_SLOTS: i64 = 1024;

/// Builds the `vortex` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let n_objects = 300usize;
    let n_txns = scale.iters(3_000) as usize;
    let mut r = rng(SALT);
    // Object store.
    let mut objects = Vec::with_capacity(n_objects * OBJ_WORDS as usize);
    for k in 0..n_objects {
        objects.push(r.gen_range(0..CLASSES)); // class
        objects.push(k as i64 * 7 + 13); // key
        objects.push(r.gen_range(0..1000)); // field_a
        objects.push(r.gen_range(0..1000)); // field_b
    }
    // Hash index: slot -> object id + 1 (0 = empty), linear probing,
    // built host-side.
    let mut index = vec![0i64; INDEX_SLOTS as usize];
    for k in 0..n_objects {
        let key = k as i64 * 7 + 13;
        let mut slot = (key.wrapping_mul(2654435761) >> 8) & (INDEX_SLOTS - 1);
        while index[slot as usize] != 0 {
            slot = (slot + 1) & (INDEX_SLOTS - 1);
        }
        index[slot as usize] = k as i64 + 1;
    }
    // Transactions: key selectors (some missing keys).
    let train: Vec<i64> = gen_uniform(SALT + 1, n_txns, n_objects as i64 + 40);
    let test: Vec<i64> = gen_uniform(SALT + 2, n_txns, n_objects as i64 + 40);

    let objects_base = 0i64;
    let index_base = objects.len() as i64;
    let train_base = index_base + INDEX_SLOTS;
    let test_base = train_base + n_txns as i64;
    let mut data = objects;
    data.extend_from_slice(&index);
    data.extend_from_slice(&train);
    data.extend_from_slice(&test);
    let mem = data.len() + 1024;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);

    // Per-class method procedures: method(obj_base) -> value.
    let mut methods: Vec<ProcId> = Vec::new();
    for cls in 0..CLASSES {
        let m = pb.declare_proc(format!("method_{cls}"), 1);
        let mut f = pb.begin_declared(m);
        let obj = Reg::new(0);
        let a = f.reg();
        let b = f.reg();
        let v = f.reg();
        let c = f.reg();
        f.load(a, obj, 2);
        f.load(b, obj, 3);
        match cls % 3 {
            0 => {
                // Compare-and-pick.
                let hi = f.new_block();
                let lo = f.new_block();
                f.alu(AluOp::CmpLt, c, a, b);
                f.branch(c, hi, lo);
                f.switch_to(hi);
                f.alu(AluOp::Add, v, b, cls + 1);
                f.ret(Some(Operand::Reg(v)));
                f.switch_to(lo);
                f.alu(AluOp::Add, v, a, cls + 1);
                f.ret(Some(Operand::Reg(v)));
            }
            1 => {
                // Field update (writes back).
                f.alu(AluOp::Add, v, a, b);
                f.alu(AluOp::And, v, v, 0x3FFi64);
                f.store(Operand::Reg(v), obj, 2);
                f.ret(Some(Operand::Reg(v)));
            }
            _ => {
                // Small reduction loop over both fields.
                let i = f.reg();
                let acc = f.reg();
                f.mov(i, 0i64);
                f.mov(acc, 0i64);
                let head = f.new_block();
                let body = f.new_block();
                let exit = f.new_block();
                f.jump(head);
                f.switch_to(head);
                f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(3));
                f.branch(c, body, exit);
                f.switch_to(body);
                f.alu(AluOp::Add, acc, acc, a);
                f.alu(AluOp::Xor, acc, acc, b);
                f.alu(AluOp::Add, i, i, 1i64);
                f.jump(head);
                f.switch_to(exit);
                f.ret(Some(Operand::Reg(acc)));
            }
        }
        methods.push(f.finish());
    }

    // lookup(key) -> object id + 1, or 0. Hash probe with collision loop.
    let lookup = pb.declare_proc("lookup", 1);
    {
        let mut f = pb.begin_declared(lookup);
        let key = Reg::new(0);
        let slot = f.reg();
        let id = f.reg();
        let c = f.reg();
        let addr = f.reg();
        let probes = f.reg();
        f.alu(AluOp::Mul, slot, key, 2654435761i64);
        f.alu(AluOp::Shr, slot, slot, 8i64);
        f.alu(AluOp::And, slot, slot, INDEX_SLOTS - 1);
        f.mov(probes, 0i64);
        let head = f.new_block();
        let occupied = f.new_block();
        let check_key = f.new_block();
        let hit = f.new_block();
        let next = f.new_block();
        let miss = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Add, addr, slot, index_base);
        f.load(id, addr, 0);
        f.alu(AluOp::CmpNe, c, id, 0i64);
        f.branch(c, occupied, miss);
        f.switch_to(occupied);
        // Verify the stored object's key.
        let obj = f.reg();
        let k2 = f.reg();
        f.alu(AluOp::Sub, obj, id, 1i64);
        f.alu(AluOp::Mul, obj, obj, OBJ_WORDS);
        f.alu(AluOp::Add, obj, obj, objects_base);
        f.load(k2, obj, 1);
        f.jump(check_key);
        f.switch_to(check_key);
        f.alu(AluOp::CmpEq, c, k2, Operand::Reg(key));
        f.branch(c, hit, next);
        f.switch_to(hit);
        f.ret(Some(Operand::Reg(id)));
        f.switch_to(next);
        f.alu(AluOp::Add, slot, slot, 1i64);
        f.alu(AluOp::And, slot, slot, INDEX_SLOTS - 1);
        f.alu(AluOp::Add, probes, probes, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(probes), Operand::Imm(INDEX_SLOTS));
        f.branch(c, head, miss);
        f.switch_to(miss);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
    }

    // main(txn_base, n)
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let acc = f.reg();
    let missing = f.reg();
    let c = f.reg();
    let sel = f.reg();
    let key = f.reg();
    let id = f.reg();
    let obj = f.reg();
    let v = f.reg();
    let cls = f.reg();
    let addr = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    f.mov(missing, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let found = f.new_block();
    let not_found = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    let dispatch: Vec<_> = (0..CLASSES).map(|_| f.new_block()).collect();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(sel, addr, 0);
    f.alu(AluOp::Mul, key, sel, 7i64);
    f.alu(AluOp::Add, key, key, 13i64);
    f.call(lookup, vec![Operand::Reg(key)], Some(id));
    f.alu(AluOp::CmpNe, c, id, 0i64);
    f.branch(c, found, not_found);
    f.switch_to(found);
    f.alu(AluOp::Sub, obj, id, 1i64);
    f.alu(AluOp::Mul, obj, obj, OBJ_WORDS);
    f.alu(AluOp::Add, obj, obj, objects_base);
    f.load(cls, obj, 0);
    f.switch(cls, dispatch.clone(), latch);
    for (k, &d) in dispatch.iter().enumerate() {
        f.switch_to(d);
        f.call(methods[k], vec![Operand::Reg(obj)], Some(v));
        f.alu(AluOp::Add, acc, acc, v);
        f.jump(latch);
    }
    f.switch_to(not_found);
    f.alu(AluOp::Add, missing, missing, 1i64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::And, acc, acc, 0xFF_FFFFi64);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(acc);
    f.out(missing);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "vortex",
        description: "Object-oriented database",
        category: Category::Spec95,
        program,
        train_args: vec![train_base, n_txns as i64],
        test_args: vec![test_base, n_txns as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn lookups_mostly_hit_with_some_misses() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let missing = r.output[1];
        let n = b.train_args[1];
        assert!(missing > 0, "some transactions miss");
        assert!(missing < n / 4, "most hit: {missing}/{n}");
        // Call-heavy: lookup per txn + method per hit.
        assert!(r.counts.calls as i64 > n);
    }
}
