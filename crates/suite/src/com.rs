//! `com(press)` — Lempel/Ziv file compression (Table 1: MPEG movie data).
//!
//! The analog reproduces compress's dominant structure: a single hot loop
//! that extends the current match through a hash-table probe; a *hit*
//! extends the prefix (the common, fast path), a *miss* emits a code and
//! inserts a new table entry. "The run times of compress … are dominated by
//! few loops" (paper §4) — the hit/miss branch bias and the short probe
//! loop are what formation sees.

use crate::util::{gen_symbols, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};

const SALT: u64 = 0xC0;
/// Hash table size in words (two words per slot: key, code).
const TABLE_SLOTS: i64 = 4096;

/// Builds the `com` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let len = scale.iters(25_000) as usize;
    // Symbol stream over a small alphabet: repetitive, as in image data.
    let train = gen_symbols(SALT, len, 24);
    let test = gen_symbols(SALT + 1, len, 24);
    let table_words = (TABLE_SLOTS * 2) as usize;
    let input_base = table_words as i64;
    let mut data = vec![-1i64; table_words];
    data.extend_from_slice(&train);
    data.extend_from_slice(&test);
    let mem = table_words + 2 * len + 1024;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0); // input base
    let n = Reg::new(1);
    let i = f.reg();
    let prefix = f.reg();
    let next_code = f.reg();
    let emitted = f.reg();
    let ch = f.reg();
    let c = f.reg();
    let key = f.reg();
    let slot = f.reg();
    let addr = f.reg();
    let probe = f.reg();
    f.mov(i, 0i64);
    f.mov(prefix, 0i64);
    f.mov(next_code, 256i64);
    f.mov(emitted, 0i64);

    let head = f.new_block();
    let body = f.new_block();
    let probe_head = f.new_block();
    let probe_hit = f.new_block();
    let probe_empty = f.new_block();
    let probe_next = f.new_block();
    let latch = f.new_block();
    let do_insert = f.new_block();
    let reset = f.new_block();
    let exit = f.new_block();

    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);

    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(ch, addr, 0);
    // key = prefix * 256 + ch; slot = key hashed into the table.
    f.alu(AluOp::Mul, key, prefix, 256i64);
    f.alu(AluOp::Add, key, key, ch);
    f.alu(AluOp::Mul, slot, key, 2654435761i64);
    f.alu(AluOp::Shr, slot, slot, 16i64);
    f.alu(AluOp::And, slot, slot, TABLE_SLOTS - 1);
    f.jump(probe_head);

    // Linear probe: hit, empty, or collision.
    f.switch_to(probe_head);
    f.alu(AluOp::Mul, probe, slot, 2i64);
    f.load(c, probe, 0); // stored key
    let is_hit = f.reg();
    f.alu(AluOp::CmpEq, is_hit, c, Operand::Reg(key));
    f.branch(is_hit, probe_hit, probe_empty);

    f.switch_to(probe_empty);
    let is_empty = f.reg();
    f.alu(AluOp::CmpEq, is_empty, c, Operand::Imm(-1));
    f.branch(is_empty, latch, probe_next); // miss path handled at latch

    f.switch_to(probe_next);
    f.alu(AluOp::Add, slot, slot, 1i64);
    f.alu(AluOp::And, slot, slot, TABLE_SLOTS - 1);
    f.jump(probe_head);

    // Hit: extend the prefix with the stored code.
    f.switch_to(probe_hit);
    f.load(prefix, probe, 1);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);

    // Miss (empty slot found): emit a code; insert while the table has
    // room (compress freezes its dictionary when full), restart prefix.
    f.switch_to(latch);
    f.alu(AluOp::Add, emitted, emitted, 1i64);
    let room = f.reg();
    f.alu(AluOp::CmpLt, room, Operand::Reg(next_code), Operand::Imm(256 + TABLE_SLOTS * 3 / 4));
    f.branch(room, do_insert, reset);
    f.switch_to(do_insert);
    f.store(Operand::Reg(key), probe, 0);
    f.store(Operand::Reg(next_code), probe, 1);
    f.alu(AluOp::Add, next_code, next_code, 1i64);
    f.jump(reset);
    f.switch_to(reset);
    f.mov(prefix, Operand::Reg(ch));
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.out(emitted);
    f.out(next_code);
    f.ret(Some(Operand::Reg(emitted)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "com",
        description: "Lempel/Ziv file compression",
        category: Category::Spec92,
        program,
        train_args: vec![input_base, len as i64],
        test_args: vec![input_base + len as i64, len as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn compresses_repetitive_input() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let emitted = r.output[0];
        let len = b.train_args[1];
        assert!(emitted > 0);
        assert!(
            emitted < len,
            "repetitive input compresses: {emitted} codes for {len} symbols"
        );
    }

    #[test]
    fn table_is_shared_but_runs_are_deterministic() {
        let b = build(Scale::quick());
        let interp = Interp::new(&b.program, ExecConfig::default());
        let a1 = interp.run(&b.train_args).unwrap();
        let a2 = interp.run(&b.train_args).unwrap();
        assert_eq!(a1.output, a2.output, "fresh memory per run");
    }
}
