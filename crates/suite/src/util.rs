//! Shared benchmark infrastructure: the [`Benchmark`] type, scaling, and
//! deterministic synthetic-input generation.

use pps_ir::Program;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Benchmark category, mirroring Table 1's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Idealized examples of path-visible behavior (`alt`, `ph`, `corr`).
    Micro,
    /// SPECint92 analogs (`com`, `eqn`, `esp`).
    Spec92,
    /// SPECint95 analogs (the rest).
    Spec95,
}

/// Workload scale multiplier: iteration counts grow linearly with the inner
/// value. [`Scale::quick`] keeps debug-mode tests fast; [`Scale::paper`] is
/// the harness default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u32);

impl Scale {
    /// Tiny scale for unit tests.
    pub fn quick() -> Scale {
        Scale(1)
    }

    /// Harness scale (hundreds of thousands to millions of dynamic
    /// branches per benchmark).
    pub fn paper() -> Scale {
        Scale(64)
    }

    /// Scaled iteration count.
    pub fn iters(&self, base: u32) -> i64 {
        i64::from(base) * i64::from(self.0)
    }
}

/// One benchmark: a program plus its training and testing inputs.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name as used in the paper's tables and figures.
    pub name: &'static str,
    /// Table 1 description.
    pub description: &'static str,
    /// Table 1 grouping.
    pub category: Category,
    /// The executable program (both input datasets in its data section).
    pub program: Program,
    /// Arguments selecting the training input.
    pub train_args: Vec<i64>,
    /// Arguments selecting the testing input.
    pub test_args: Vec<i64>,
}

/// Deterministic RNG for synthetic inputs; `salt` separates train/test and
/// per-benchmark streams.
pub fn rng(salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5EED_0000 ^ salt)
}

/// Generates synthetic "text": a stream of byte-like values in 0..128 with
/// word/whitespace/newline structure (for `wc`-style benchmarks).
pub fn gen_text(salt: u64, len: usize) -> Vec<i64> {
    let mut r = rng(salt);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let word_len = r.gen_range(1..=9);
        for _ in 0..word_len {
            if out.len() >= len {
                break;
            }
            out.push(i64::from(r.gen_range(b'a'..=b'z')));
        }
        if out.len() >= len {
            break;
        }
        // Separator: mostly space, sometimes newline, occasionally tab.
        let sep = match r.gen_range(0..10) {
            0..=6 => b' ',
            7..=8 => b'\n',
            _ => b'\t',
        };
        out.push(i64::from(sep));
    }
    out.truncate(len);
    out
}

/// Generates a skewed "symbol" stream over `0..kinds`: a few kinds dominate
/// (Zipf-ish), as in token/opcode streams.
pub fn gen_symbols(salt: u64, len: usize, kinds: i64) -> Vec<i64> {
    let mut r = rng(salt);
    (0..len)
        .map(|_| {
            // Square a uniform draw to skew toward 0.
            let u: f64 = r.gen_range(0.0..1.0);
            ((u * u) * kinds as f64) as i64
        })
        .map(|k| k.min(kinds - 1))
        .collect()
}

/// Generates uniform values in `0..bound`.
pub fn gen_uniform(salt: u64, len: usize, bound: i64) -> Vec<i64> {
    let mut r = rng(salt);
    (0..len).map(|_| r.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_salted() {
        let a = gen_uniform(1, 16, 100);
        let b = gen_uniform(1, 16, 100);
        let c = gen_uniform(2, 16, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn text_has_separators_and_letters() {
        let t = gen_text(7, 500);
        assert_eq!(t.len(), 500);
        assert!(t.iter().any(|&c| c == i64::from(b' ')));
        assert!(t.iter().any(|&c| c == i64::from(b'\n')));
        assert!(t.iter().any(|&c| (97..=122).contains(&c)));
        assert!(t.iter().all(|&c| (0..128).contains(&c)));
    }

    #[test]
    fn symbols_are_skewed() {
        let s = gen_symbols(3, 10_000, 16);
        assert!(s.iter().all(|&k| (0..16).contains(&k)));
        let low = s.iter().filter(|&&k| k < 4).count();
        assert!(low > 4000, "skew toward low kinds: {low}");
    }

    #[test]
    fn scale_scales() {
        assert_eq!(Scale::quick().iters(100), 100);
        assert_eq!(Scale(8).iters(100), 800);
    }
}
