//! `m88k(sim)` — Motorola 88100 microprocessor simulator (Table 1: `dhry`
//! input).
//!
//! m88ksim's hot code is the fetch–decode–dispatch–execute loop: decode
//! bit-fields from an instruction word, switch on the opcode, execute a
//! short operation against the simulated register file. The analog
//! simulates a small register machine whose "binary" (a synthetic
//! Dhrystone-ish instruction stream) lives in memory.

use crate::util::{rng, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};
use rand::Rng;

const SALT: u64 = 0x88;
/// Simulated register count.
const SIM_REGS: i64 = 16;
/// Opcodes: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shl, 6 shr, 7 li,
/// 8 beq (skip next if eq), 9 bne, 10 mul, 11 nop.
const OPS: i64 = 12;

/// Encodes an instruction word: op | rd<<4 | rs<<8 | rt<<12 | imm<<16.
fn encode(op: i64, rd: i64, rs: i64, rt: i64, imm: i64) -> i64 {
    op | rd << 4 | rs << 8 | rt << 12 | imm << 16
}

/// Generates a short "program" that the simulated machine executes in a
/// loop (Dhrystone is a small, highly repetitive benchmark — the dispatch
/// sequence is periodic, which is precisely what makes m88ksim
/// path-predictable in the paper).
fn gen_binary(salt: u64, len: usize) -> Vec<i64> {
    let mut r = rng(salt);
    (0..len)
        .map(|_| {
            // Dhrystone-like mix: mostly ALU, some immediates, ~15%
            // compare-skips.
            let op = match r.gen_range(0..100) {
                0..=24 => 0,            // add
                25..=39 => 1,           // sub
                40..=49 => 2,           // and
                50..=59 => 3,           // or
                60..=66 => 4,           // xor
                67..=71 => 5,           // shl
                72..=76 => 6,           // shr
                77..=84 => 7,           // li
                85..=91 => 8,           // beq
                92..=97 => 9,           // bne
                _ => 10,                // mul
            };
            encode(
                op,
                r.gen_range(0..SIM_REGS),
                r.gen_range(0..SIM_REGS),
                r.gen_range(0..SIM_REGS),
                r.gen_range(0..256),
            )
        })
        .collect()
}

/// Length of the simulated program (instruction words).
const PROG_LEN: usize = 48;

/// Builds the `m88k` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let steps = scale.iters(9_000);
    let len = PROG_LEN;
    let train = gen_binary(SALT, len);
    let test = gen_binary(SALT + 1, len);
    // Memory: [simulated regfile][train binary][test binary].
    let regfile = 0i64;
    let train_base = SIM_REGS;
    let test_base = SIM_REGS + len as i64;
    let mut data = vec![0i64; SIM_REGS as usize];
    data.extend_from_slice(&train);
    data.extend_from_slice(&test);
    let mem = data.len() + 1024;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);

    let mut f = pb.begin_proc("main", 3);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let steps_lim = Reg::new(2);
    let pc = f.reg();
    let word = f.reg();
    let op = f.reg();
    let rd = f.reg();
    let rs = f.reg();
    let rt = f.reg();
    let imm = f.reg();
    let vs = f.reg();
    let vt = f.reg();
    let vres = f.reg();
    let c = f.reg();
    let addr = f.reg();
    let executed = f.reg();
    f.mov(pc, 0i64);
    f.mov(executed, 0i64);

    let head = f.new_block();
    let body = f.new_block();
    let writeback = f.new_block();
    let latch = f.new_block();
    let skip2 = f.new_block();
    let exit = f.new_block();
    let cases: Vec<_> = (0..OPS).map(|_| f.new_block()).collect();

    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(executed), Operand::Reg(steps_lim));
    f.branch(c, body, exit);

    f.switch_to(body);
    // Wrap the program counter (the simulated program loops, Dhrystone
    // style).
    f.alu(AluOp::Rem, pc, pc, n);
    // Fetch and decode.
    f.alu(AluOp::Add, addr, base, pc);
    f.load(word, addr, 0);
    f.alu(AluOp::And, op, word, 0xFi64);
    f.alu(AluOp::Shr, rd, word, 4i64);
    f.alu(AluOp::And, rd, rd, 0xFi64);
    f.alu(AluOp::Shr, rs, word, 8i64);
    f.alu(AluOp::And, rs, rs, 0xFi64);
    f.alu(AluOp::Shr, rt, word, 12i64);
    f.alu(AluOp::And, rt, rt, 0xFi64);
    f.alu(AluOp::Shr, imm, word, 16i64);
    // Read simulated sources.
    f.alu(AluOp::Add, addr, rs, regfile);
    f.load(vs, addr, 0);
    f.alu(AluOp::Add, addr, rt, regfile);
    f.load(vt, addr, 0);
    f.alu(AluOp::Add, executed, executed, 1i64);
    f.switch(op, cases.clone(), latch);

    // ALU ops write vres then fall to writeback.
    let alu_cases: [(usize, AluOp); 7] = [
        (0, AluOp::Add),
        (1, AluOp::Sub),
        (2, AluOp::And),
        (3, AluOp::Or),
        (4, AluOp::Xor),
        (10, AluOp::Mul),
        (11, AluOp::Or), // nop: rd = rs | rs
    ];
    for (k, aop) in alu_cases {
        f.switch_to(cases[k]);
        f.alu(aop, vres, vs, vt);
        f.jump(writeback);
    }
    // Shifts mask the amount.
    f.switch_to(cases[5]);
    f.alu(AluOp::And, vt, vt, 7i64);
    f.alu(AluOp::Shl, vres, vs, vt);
    f.alu(AluOp::And, vres, vres, 0xFFFF_FFFFi64);
    f.jump(writeback);
    f.switch_to(cases[6]);
    f.alu(AluOp::And, vt, vt, 7i64);
    f.alu(AluOp::Shr, vres, vs, vt);
    f.jump(writeback);
    // li
    f.switch_to(cases[7]);
    f.mov(vres, Operand::Reg(imm));
    f.jump(writeback);
    // beq / bne: conditionally skip the next instruction.
    f.switch_to(cases[8]);
    f.alu(AluOp::CmpEq, c, vs, vt);
    f.branch(c, skip2, latch);
    f.switch_to(cases[9]);
    f.alu(AluOp::CmpNe, c, vs, vt);
    f.branch(c, skip2, latch);
    f.switch_to(skip2);
    f.alu(AluOp::Add, pc, pc, 1i64);
    f.jump(latch);

    f.switch_to(writeback);
    f.alu(AluOp::Add, addr, rd, regfile);
    f.store(Operand::Reg(vres), addr, 0);
    f.jump(latch);

    f.switch_to(latch);
    f.alu(AluOp::Add, pc, pc, 1i64);
    f.jump(head);

    f.switch_to(exit);
    // Checksum the simulated register file.
    let i = f.reg();
    let acc = f.reg();
    let v = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let ck_head = f.new_block();
    let ck_body = f.new_block();
    let done = f.new_block();
    f.jump(ck_head);
    f.switch_to(ck_head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(SIM_REGS));
    f.branch(c, ck_body, done);
    f.switch_to(ck_body);
    f.alu(AluOp::Add, addr, i, regfile);
    f.load(v, addr, 0);
    f.alu(AluOp::Xor, acc, acc, v);
    f.alu(AluOp::Add, acc, acc, 1i64);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(ck_head);
    f.switch_to(done);
    f.out(acc);
    f.out(executed);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "m88k",
        description: "Microprocessor simulator",
        category: Category::Spec95,
        program,
        train_args: vec![train_base, len as i64, steps],
        test_args: vec![test_base, len as i64, steps + steps / 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn executes_requested_step_count() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let executed = r.output[1];
        assert_eq!(executed, b.train_args[2], "runs exactly `steps` instructions");
    }

    #[test]
    fn different_binaries_different_checksums() {
        let b = build(Scale::quick());
        let interp = Interp::new(&b.program, ExecConfig::default());
        let a = interp.run(&b.train_args).unwrap();
        let t = interp.run(&b.test_args).unwrap();
        assert_ne!(a.output[0], t.output[0]);
    }
}
