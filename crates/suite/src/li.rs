//! `li` — the XLISP interpreter (Table 1: SPEC95 ref input).
//!
//! li's time goes to recursive `xleval` dispatch over heap cells and very
//! short list traversals — with go, the paper's example of call-dominated,
//! low-iteration-count behavior that unrolling cannot help. The analog
//! builds expression trees of tagged 4-word heap cells and evaluates them
//! recursively: a switch over the cell tag, recursion for operators, and a
//! 1–4 element list walk for list cells.

use crate::util::{rng, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};
use rand::Rng;

const SALT: u64 = 0x11;

/// Cell tags.
const T_NUM: i64 = 0;
const T_ADD: i64 = 1;
const T_MUL: i64 = 2;
const T_IF: i64 = 3;
const T_LIST: i64 = 4;

/// Host-side heap builder: returns (cells, roots).
#[allow(clippy::type_complexity)]
fn gen_heap(salt: u64, n_roots: usize) -> (Vec<i64>, Vec<i64>) {
    let mut r = rng(salt);
    let mut cells: Vec<i64> = Vec::new();
    let mut alloc = |tag: i64, a: i64, b: i64, c: i64, cells: &mut Vec<i64>| -> i64 {
        let at = cells.len() as i64;
        cells.extend_from_slice(&[tag, a, b, c]);
        at
    };
    // Recursive tree generation, depth-bounded.
    fn tree(
        r: &mut impl Rng,
        depth: u32,
        cells: &mut Vec<i64>,
        alloc: &mut dyn FnMut(i64, i64, i64, i64, &mut Vec<i64>) -> i64,
    ) -> i64 {
        if depth == 0 || r.gen_range(0..100) < 25 {
            return alloc(T_NUM, r.gen_range(0..100), 0, 0, cells);
        }
        match r.gen_range(0..10) {
            0..=3 => {
                let a = tree(r, depth - 1, cells, alloc);
                let b = tree(r, depth - 1, cells, alloc);
                alloc(T_ADD, a, b, 0, cells)
            }
            4..=6 => {
                let a = tree(r, depth - 1, cells, alloc);
                let b = tree(r, depth - 1, cells, alloc);
                alloc(T_MUL, a, b, 0, cells)
            }
            7..=8 => {
                let c = tree(r, depth - 1, cells, alloc);
                let t = tree(r, depth - 1, cells, alloc);
                let e = tree(r, depth - 1, cells, alloc);
                alloc(T_IF, c, t, e, cells)
            }
            _ => {
                // A short list (1-4 nodes) of numbers.
                let len = r.gen_range(1..=4);
                let mut next = -1;
                for _ in 0..len {
                    next = alloc(T_LIST, r.gen_range(0..50), next, 0, cells);
                }
                next
            }
        }
    }
    let roots: Vec<i64> = (0..n_roots)
        .map(|_| tree(&mut r, 6, &mut cells, &mut alloc))
        .collect();
    (cells, roots)
}

/// Builds the `li` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let n_roots = scale.iters(40) as usize;
    let (train_cells, train_roots) = gen_heap(SALT, n_roots);
    let (test_cells, test_roots) = gen_heap(SALT + 1, n_roots);

    // Memory: [train heap][train roots][test heap (rebased)][test roots].
    let train_roots_base = train_cells.len() as i64;
    let test_heap_base = train_roots_base + n_roots as i64;
    let test_roots_base = test_heap_base + test_cells.len() as i64;
    let mut data = train_cells;
    data.extend(train_roots.iter().copied());
    // Rebase test-heap cell pointers.
    let rebased: Vec<i64> = test_cells
        .chunks(4)
        .flat_map(|cell| {
            let (tag, a, b, c) = (cell[0], cell[1], cell[2], cell[3]);
            match tag {
                T_NUM => vec![tag, a, b, c],
                T_ADD | T_MUL => vec![tag, a + test_heap_base, b + test_heap_base, c],
                T_IF => vec![tag, a + test_heap_base, b + test_heap_base, c + test_heap_base],
                T_LIST => vec![
                    tag,
                    a,
                    if b < 0 { b } else { b + test_heap_base },
                    c,
                ],
                _ => unreachable!(),
            }
        })
        .collect();
    data.extend(rebased);
    data.extend(test_roots.iter().map(|&r| r + test_heap_base));
    let mem = data.len() + 1024;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);

    // eval(cell) -> value
    let eval = pb.declare_proc("xleval", 1);
    {
        let mut f = pb.begin_declared(eval);
        let cell = Reg::new(0);
        let tag = f.reg();
        let a = f.reg();
        let b = f.reg();
        let cc = f.reg();
        let va = f.reg();
        let vb = f.reg();
        let res = f.reg();
        let cond = f.reg();
        f.load(tag, cell, 0);
        f.load(a, cell, 1);
        f.load(b, cell, 2);
        let case_num = f.new_block();
        let case_add = f.new_block();
        let case_mul = f.new_block();
        let case_if = f.new_block();
        let if_then = f.new_block();
        let if_else = f.new_block();
        let case_list = f.new_block();
        let list_head = f.new_block();
        let list_body = f.new_block();
        let list_done = f.new_block();
        let dflt = f.new_block();
        f.switch(
            tag,
            vec![case_num, case_add, case_mul, case_if, case_list],
            dflt,
        );
        f.switch_to(case_num);
        f.ret(Some(Operand::Reg(a)));
        f.switch_to(case_add);
        f.call(eval, vec![Operand::Reg(a)], Some(va));
        f.call(eval, vec![Operand::Reg(b)], Some(vb));
        f.alu(AluOp::Add, res, va, vb);
        f.ret(Some(Operand::Reg(res)));
        f.switch_to(case_mul);
        f.call(eval, vec![Operand::Reg(a)], Some(va));
        f.call(eval, vec![Operand::Reg(b)], Some(vb));
        f.alu(AluOp::Mul, res, va, vb);
        f.alu(AluOp::And, res, res, 0xFFFFi64);
        f.ret(Some(Operand::Reg(res)));
        f.switch_to(case_if);
        f.call(eval, vec![Operand::Reg(a)], Some(cond));
        f.alu(AluOp::And, cond, cond, 1i64);
        f.alu(AluOp::CmpNe, cc, cond, 0i64);
        f.branch(cc, if_then, if_else);
        f.switch_to(if_then);
        f.call(eval, vec![Operand::Reg(b)], Some(res));
        f.ret(Some(Operand::Reg(res)));
        f.switch_to(if_else);
        let e = f.reg();
        f.load(e, cell, 3);
        f.call(eval, vec![Operand::Reg(e)], Some(res));
        f.ret(Some(Operand::Reg(res)));
        // List: walk the chain summing values (1-4 iterations).
        f.switch_to(case_list);
        let cur = f.reg();
        f.mov(res, 0i64);
        f.mov(cur, Operand::Reg(cell));
        f.jump(list_head);
        f.switch_to(list_head);
        f.alu(AluOp::CmpLt, cc, Operand::Reg(cur), Operand::Imm(0));
        f.branch(cc, list_done, list_body);
        f.switch_to(list_body);
        let v = f.reg();
        let nxt = f.reg();
        f.load(v, cur, 1);
        f.load(nxt, cur, 2);
        f.alu(AluOp::Add, res, res, v);
        f.mov(cur, Operand::Reg(nxt));
        f.jump(list_head);
        f.switch_to(list_done);
        f.ret(Some(Operand::Reg(res)));
        f.switch_to(dflt);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
    }

    // main(roots_base, n)
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let acc = f.reg();
    let c = f.reg();
    let root = f.reg();
    let v = f.reg();
    let addr = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(root, addr, 0);
    f.call(eval, vec![Operand::Reg(root)], Some(v));
    f.alu(AluOp::Add, acc, acc, v);
    f.alu(AluOp::And, acc, acc, 0xFF_FFFFi64);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "li",
        description: "XLISP interpreter",
        category: Category::Spec95,
        program,
        train_args: vec![train_roots_base, n_roots as i64],
        test_args: vec![test_roots_base, n_roots as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    /// Host-side evaluator for cross-checking.
    fn host_eval(cells: &[i64], at: i64) -> i64 {
        let i = at as usize;
        let (tag, a, b, c) = (cells[i], cells[i + 1], cells[i + 2], cells[i + 3]);
        match tag {
            T_NUM => a,
            T_ADD => host_eval(cells, a) + host_eval(cells, b),
            T_MUL => (host_eval(cells, a) * host_eval(cells, b)) & 0xFFFF,
            T_IF => {
                if host_eval(cells, a) & 1 != 0 {
                    host_eval(cells, b)
                } else {
                    host_eval(cells, c)
                }
            }
            T_LIST => {
                let mut sum = 0;
                let mut cur = at;
                while cur >= 0 {
                    sum += cells[cur as usize + 1];
                    cur = cells[cur as usize + 2];
                }
                sum
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn eval_matches_host_reference() {
        let b = build(Scale::quick());
        let (cells, roots) = gen_heap(SALT, b.train_args[1] as usize);
        let mut acc: i64 = 0;
        for &r in &roots {
            acc = (acc + host_eval(&cells, r)) & 0xFF_FFFF;
        }
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        assert_eq!(r.output, vec![acc]);
    }

    #[test]
    fn call_heavy() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        assert!(r.counts.calls as i64 > 5 * b.train_args[1]);
    }
}
