//! `wc` — the UNIX word-count program (Table 1: "PostScript conference
//! paper" input).
//!
//! One hot loop classifies each input byte as whitespace or word material,
//! maintaining an in-word flag; lines, words and characters are counted.
//! The branch structure (separator tests plus the in-word state test) is
//! what superblock formation must capture; word-length regularity in the
//! input is visible to path profiles but not to edge profiles.

use crate::util::{gen_text, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};

/// RNG salt for this benchmark's synthetic inputs.
const SALT: u64 = 0x77C;

/// Builds the `wc` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let len = scale.iters(30_000) as usize;
    let train = gen_text(SALT, len);
    let test = gen_text(SALT + 1, len);
    let mut data = Vec::with_capacity(2 * len);
    data.extend_from_slice(&train);
    data.extend_from_slice(&test);

    let mut pb = ProgramBuilder::new();
    pb.set_memory((2 * len).max(1024), data);
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let chars = f.reg();
    let words = f.reg();
    let lines = f.reg();
    let in_word = f.reg();
    let ch = f.reg();
    let c = f.reg();
    let addr = f.reg();
    f.mov(i, 0i64);
    f.mov(chars, 0i64);
    f.mov(words, 0i64);
    f.mov(lines, 0i64);
    f.mov(in_word, 0i64);

    let head = f.new_block();
    let body = f.new_block();
    let is_nl = f.new_block();
    let after_nl = f.new_block();
    let sep_case = f.new_block();
    let word_case = f.new_block();
    let new_word = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();

    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);

    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(ch, addr, 0);
    f.alu(AluOp::Add, chars, chars, 1i64);
    // Newline?
    f.alu(AluOp::CmpEq, c, ch, 10i64);
    f.branch(c, is_nl, after_nl);
    f.switch_to(is_nl);
    f.alu(AluOp::Add, lines, lines, 1i64);
    f.jump(after_nl);
    f.switch_to(after_nl);
    // Separator? (space, tab, newline)
    let is_sp = f.reg();
    let is_tb = f.reg();
    f.alu(AluOp::CmpEq, is_sp, ch, 32i64);
    f.alu(AluOp::CmpEq, is_tb, ch, 9i64);
    f.alu(AluOp::Or, c, is_sp, is_tb);
    let is_n2 = f.reg();
    f.alu(AluOp::CmpEq, is_n2, ch, 10i64);
    f.alu(AluOp::Or, c, c, is_n2);
    f.branch(c, sep_case, word_case);
    f.switch_to(sep_case);
    f.mov(in_word, 0i64);
    f.jump(latch);
    f.switch_to(word_case);
    // Start of a new word?
    f.alu(AluOp::CmpEq, c, in_word, 0i64);
    f.branch(c, new_word, latch);
    f.switch_to(new_word);
    f.alu(AluOp::Add, words, words, 1i64);
    f.mov(in_word, 1i64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.out(lines);
    f.out(words);
    f.out(chars);
    f.ret(Some(Operand::Reg(words)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "wc",
        description: "UNIX word count program",
        category: Category::Spec92,
        program,
        train_args: vec![0, len as i64],
        test_args: vec![len as i64, len as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    /// Host-side reference word count for cross-checking the IR program.
    fn reference(text: &[i64]) -> (i64, i64, i64) {
        let mut lines = 0;
        let mut words = 0;
        let mut in_word = false;
        for &c in text {
            if c == 10 {
                lines += 1;
            }
            if c == 32 || c == 9 || c == 10 {
                in_word = false;
            } else if !in_word {
                words += 1;
                in_word = true;
            }
        }
        (lines, words, text.len() as i64)
    }

    #[test]
    fn counts_match_host_reference() {
        let b = build(Scale::quick());
        let len = b.train_args[1] as usize;
        let train_text = gen_text(SALT, len);
        let (lines, words, chars) = reference(&train_text);
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        assert_eq!(r.output, vec![lines, words, chars]);
    }

    #[test]
    fn test_input_differs() {
        let b = build(Scale::quick());
        let interp = Interp::new(&b.program, ExecConfig::default());
        let a = interp.run(&b.train_args).unwrap();
        let t = interp.run(&b.test_args).unwrap();
        assert_ne!(a.output, t.output);
    }
}
