//! `ijpeg` — JPEG encoder (Table 1: `vigo` image input).
//!
//! ijpeg is dominated by deep, regular loop nests (DCT, quantization) with
//! high trip counts and few data-dependent branches — the workload where
//! classical unrolling already does well and "the run times … are
//! dominated by few loops". The analog runs an 8×8 transform over image
//! blocks: a triply-nested multiply–accumulate kernel plus a quantization
//! pass with a rarely-taken saturation branch.

use crate::util::{gen_uniform, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};

const SALT: u64 = 0x19E9;
/// 8x8 blocks.
const BLOCK: i64 = 8;

/// Builds the `ijpeg` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let blocks = scale.iters(12) as usize;
    let words = blocks * (BLOCK * BLOCK) as usize;
    let train = gen_uniform(SALT, words, 256);
    let test = gen_uniform(SALT + 1, words, 256);
    let mut data = train;
    data.extend_from_slice(&test);
    // Scratch area for one transformed block after the two images.
    let scratch = 2 * words;
    let mem = scratch + (BLOCK * BLOCK) as usize + 1024;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(mem, data);

    // transform(src_base, dst_base): out[u][v] = sum_k in[u][k]*w(k,v),
    // an 8x8x8 multiply-accumulate nest (integer "DCT").
    let transform = pb.declare_proc("transform", 2);
    {
        let mut f = pb.begin_declared(transform);
        let src = Reg::new(0);
        let dst = Reg::new(1);
        let u = f.reg();
        let v = f.reg();
        let k = f.reg();
        let acc = f.reg();
        let c = f.reg();
        let a = f.reg();
        let w = f.reg();
        let addr = f.reg();
        f.mov(u, 0i64);
        let uh = f.new_block();
        let ub = f.new_block();
        let vh = f.new_block();
        let vb = f.new_block();
        let kh = f.new_block();
        let kb = f.new_block();
        let kdone = f.new_block();
        let vlatch = f.new_block();
        let ulatch = f.new_block();
        let exit = f.new_block();
        f.jump(uh);
        f.switch_to(uh);
        f.alu(AluOp::CmpLt, c, Operand::Reg(u), Operand::Imm(BLOCK));
        f.branch(c, ub, exit);
        f.switch_to(ub);
        f.mov(v, 0i64);
        f.jump(vh);
        f.switch_to(vh);
        f.alu(AluOp::CmpLt, c, Operand::Reg(v), Operand::Imm(BLOCK));
        f.branch(c, vb, ulatch);
        f.switch_to(vb);
        f.mov(acc, 0i64);
        f.mov(k, 0i64);
        f.jump(kh);
        f.switch_to(kh);
        f.alu(AluOp::CmpLt, c, Operand::Reg(k), Operand::Imm(BLOCK));
        f.branch(c, kb, kdone);
        f.switch_to(kb);
        // a = src[u*8+k]
        f.alu(AluOp::Mul, addr, u, BLOCK);
        f.alu(AluOp::Add, addr, addr, k);
        f.alu(AluOp::Add, addr, addr, src);
        f.load(a, addr, 0);
        // w = ((k+1)*(v+3)) % 13 - 6 : a fixed small "cosine" table value.
        f.alu(AluOp::Add, w, k, 1i64);
        let t = f.reg();
        f.alu(AluOp::Add, t, v, 3i64);
        f.alu(AluOp::Mul, w, w, t);
        f.alu(AluOp::Rem, w, w, 13i64);
        f.alu(AluOp::Sub, w, w, 6i64);
        f.alu(AluOp::Mul, a, a, w);
        f.alu(AluOp::Add, acc, acc, a);
        f.alu(AluOp::Add, k, k, 1i64);
        f.jump(kh);
        f.switch_to(kdone);
        f.alu(AluOp::Mul, addr, u, BLOCK);
        f.alu(AluOp::Add, addr, addr, v);
        f.alu(AluOp::Add, addr, addr, dst);
        f.store(Operand::Reg(acc), addr, 0);
        f.alu(AluOp::Add, v, v, 1i64);
        f.jump(vh);
        f.switch_to(vlatch);
        // (unused; kept for CFG shape symmetry)
        f.jump(uh);
        f.switch_to(ulatch);
        f.alu(AluOp::Add, u, u, 1i64);
        f.jump(uh);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
    }

    // quantize(dst_base) -> sum of quantized coefficients; the saturation
    // branch is rare.
    let quant = pb.declare_proc("quantize", 1);
    {
        let mut f = pb.begin_declared(quant);
        let dst = Reg::new(0);
        let i = f.reg();
        let s = f.reg();
        let c = f.reg();
        let v = f.reg();
        let addr = f.reg();
        f.mov(i, 0i64);
        f.mov(s, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let sat = f.new_block();
        let nosat = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(BLOCK * BLOCK));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, addr, dst, i);
        f.load(v, addr, 0);
        f.alu(AluOp::Div, v, v, 16i64);
        // Rare saturation.
        f.alu(AluOp::CmpLt, c, Operand::Imm(400), Operand::Reg(v));
        f.branch(c, sat, nosat);
        f.switch_to(sat);
        f.mov(v, 400i64);
        f.jump(latch);
        f.switch_to(nosat);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, s, s, v);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(s)));
        f.finish();
    }

    // main(base, blocks)
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let acc = f.reg();
    let c = f.reg();
    let src = f.reg();
    let q = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Mul, src, i, BLOCK * BLOCK);
    f.alu(AluOp::Add, src, src, base);
    f.call(
        transform,
        vec![Operand::Reg(src), Operand::Imm(scratch as i64)],
        None,
    );
    f.call(quant, vec![Operand::Imm(scratch as i64)], Some(q));
    f.alu(AluOp::Add, acc, acc, q);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "ijpeg",
        description: "JPEG encoder",
        category: Category::Spec95,
        program,
        train_args: vec![0, blocks as i64],
        test_args: vec![words as i64, blocks as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn loop_nest_dominates() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        // 8*8*8 inner iterations per block plus quantization: branch count
        // per block is high, calls per block are just 2.
        let blocks = b.train_args[1] as u64;
        assert!(r.counts.branches > blocks * 500);
        assert_eq!(r.counts.calls, 1 + 2 * blocks);
    }

    #[test]
    fn deterministic_checksum() {
        let b = build(Scale::quick());
        let interp = Interp::new(&b.program, ExecConfig::default());
        let a = interp.run(&b.train_args).unwrap();
        let bb = interp.run(&b.train_args).unwrap();
        assert_eq!(a.output, bb.output);
    }
}
