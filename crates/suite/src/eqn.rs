//! `eqn(tott)` — translates boolean equations to truth tables (Table 1:
//! priority encoder input).
//!
//! eqntott's run time is dominated by `cmppt`, a bit-vector comparison loop
//! containing "a very high-frequency correlated branch" guarding a very
//! small block (the difference case). The paper notes that because the
//! guarded block is tiny, *loop unrolling* matters more to eqntott than
//! correlation exploitation — this analog reproduces exactly that shape: a
//! high-trip compare loop whose early-exit branch almost never fires.

use crate::util::{rng, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};
use rand::Rng;

const SALT: u64 = 0xE9;
/// Words per bit-vector.
const VEC_LEN: i64 = 32;

fn gen_vectors(salt: u64, count: usize) -> Vec<i64> {
    let mut r = rng(salt);
    // A common base pattern; vectors differ from it rarely, so adjacent
    // pairs compare equal for long prefixes.
    let base: Vec<i64> = (0..VEC_LEN).map(|_| r.gen_range(0..1 << 20)).collect();
    let mut out = Vec::with_capacity(count * VEC_LEN as usize);
    for _ in 0..count {
        for &w in &base {
            // ~3% of words perturbed.
            if r.gen_range(0..100) < 3 {
                out.push(w ^ (1i64 << r.gen_range(0..20)));
            } else {
                out.push(w);
            }
        }
    }
    out
}

/// Builds the `eqn` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let count = scale.iters(220) as usize;
    let train = gen_vectors(SALT, count);
    let test = gen_vectors(SALT + 1, count);
    let mut data = train;
    data.extend_from_slice(&test);
    let words = count * VEC_LEN as usize;

    let mut pb = ProgramBuilder::new();
    pb.set_memory(2 * words + 1024, data);

    // cmp(a_base, b_base) -> -1 | 0 | 1
    let cmp = pb.declare_proc("cmppt", 2);
    {
        let mut f = pb.begin_declared(cmp);
        let a = Reg::new(0);
        let b = Reg::new(1);
        let k = f.reg();
        let va = f.reg();
        let vb = f.reg();
        let c = f.reg();
        let aa = f.reg();
        let ba = f.reg();
        f.mov(k, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let diff = f.new_block();
        let lt = f.new_block();
        let gt = f.new_block();
        let next = f.new_block();
        let equal = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(k), Operand::Imm(VEC_LEN));
        f.branch(c, body, equal);
        f.switch_to(body);
        f.alu(AluOp::Add, aa, a, k);
        f.alu(AluOp::Add, ba, b, k);
        f.load(va, aa, 0);
        f.load(vb, ba, 0);
        // The high-frequency branch: almost always equal.
        f.alu(AluOp::CmpNe, c, va, vb);
        f.branch(c, diff, next);
        f.switch_to(diff);
        f.alu(AluOp::CmpLt, c, va, vb);
        f.branch(c, lt, gt);
        f.switch_to(lt);
        f.ret(Some(Operand::Imm(-1)));
        f.switch_to(gt);
        f.ret(Some(Operand::Imm(1)));
        f.switch_to(next);
        f.alu(AluOp::Add, k, k, 1i64);
        f.jump(head);
        f.switch_to(equal);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
    }

    // main(base, count): compare every adjacent pair, tally the orderings.
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let c = f.reg();
    let res = f.reg();
    let less = f.reg();
    let eq = f.reg();
    let greater = f.reg();
    let a_base = f.reg();
    let b_base = f.reg();
    f.mov(i, 0i64);
    f.mov(less, 0i64);
    f.mov(eq, 0i64);
    f.mov(greater, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let is_lt = f.new_block();
    let not_lt = f.new_block();
    let is_eq = f.new_block();
    let is_gt = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    let lim = f.reg();
    f.alu(AluOp::Sub, lim, n, 1i64);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(lim));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Mul, a_base, i, VEC_LEN);
    f.alu(AluOp::Add, a_base, a_base, base);
    f.alu(AluOp::Add, b_base, a_base, VEC_LEN);
    f.call(cmp, vec![Operand::Reg(a_base), Operand::Reg(b_base)], Some(res));
    f.alu(AluOp::CmpEq, c, res, Operand::Imm(-1));
    f.branch(c, is_lt, not_lt);
    f.switch_to(is_lt);
    f.alu(AluOp::Add, less, less, 1i64);
    f.jump(latch);
    f.switch_to(not_lt);
    f.alu(AluOp::CmpEq, c, res, 0i64);
    f.branch(c, is_eq, is_gt);
    f.switch_to(is_eq);
    f.alu(AluOp::Add, eq, eq, 1i64);
    f.jump(latch);
    f.switch_to(is_gt);
    f.alu(AluOp::Add, greater, greater, 1i64);
    f.jump(latch);
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(less);
    f.out(eq);
    f.out(greater);
    f.ret(Some(Operand::Reg(eq)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "eqn",
        description: "Translates boolean eqns to truth tables",
        category: Category::Spec92,
        program,
        train_args: vec![0, count as i64],
        test_args: vec![words as i64, count as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn compare_loop_dominates_and_mostly_runs_full_length() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let (less, eq, greater) = (r.output[0], r.output[1], r.output[2]);
        let pairs = b.train_args[1] - 1;
        assert_eq!(less + eq + greater, pairs);
        // With ~3% perturbed words over 32-word vectors, differences are
        // common but the compare loop still dominates the branch count:
        // roughly VEC_LEN compare branches per pair on equal runs.
        assert!(r.counts.branches > (pairs as u64) * 8);
        assert!(less > 0 && greater > 0, "both orderings observed");
    }

    #[test]
    fn results_match_host_comparison() {
        let b = build(Scale::quick());
        let count = b.train_args[1] as usize;
        let vecs = gen_vectors(SALT, count);
        let mut less = 0;
        let mut eq = 0;
        let mut greater = 0;
        for i in 0..count - 1 {
            let a = &vecs[i * VEC_LEN as usize..(i + 1) * VEC_LEN as usize];
            let bb = &vecs[(i + 1) * VEC_LEN as usize..(i + 2) * VEC_LEN as usize];
            match a.cmp(bb) {
                std::cmp::Ordering::Less => less += 1,
                std::cmp::Ordering::Equal => eq += 1,
                std::cmp::Ordering::Greater => greater += 1,
            }
        }
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        assert_eq!(r.output, vec![less, eq, greater]);
    }
}
