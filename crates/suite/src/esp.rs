//! `esp(resso)` — two-level boolean minimization (Table 1: `tial` input).
//!
//! espresso spends its time in nested loops over *cubes* (bit-vector terms
//! of a cover), testing containment and distance with data-dependent
//! branches. The analog builds a cover of packed cubes and runs the
//! classical pairwise sweep: for every cube pair, compute the bitwise
//! distance word-by-word with early exits for "distance > 1" (the common
//! case), and count containments and mergeable pairs.

use crate::util::{rng, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};
use rand::Rng;

const SALT: u64 = 0xE5B;
/// Words per cube.
const CUBE_LEN: i64 = 4;

fn gen_cover(salt: u64, cubes: usize) -> Vec<i64> {
    let mut r = rng(salt);
    let mut out = Vec::with_capacity(cubes * CUBE_LEN as usize);
    // Cubes cluster around a handful of prototypes so containment and
    // near-merge cases actually occur.
    let protos: Vec<Vec<i64>> = (0..6)
        .map(|_| (0..CUBE_LEN).map(|_| r.gen_range(0..1i64 << 30)).collect())
        .collect();
    for _ in 0..cubes {
        let p = &protos[r.gen_range(0..protos.len())];
        // 25% exact proto copies (distance-0 pairs), 35% single-bit
        // variants (distance-1, mergeable), the rest multi-bit.
        let variant = r.gen_range(0..100);
        let flips = match variant {
            0..=24 => 0,
            25..=59 => 1,
            _ => r.gen_range(2..6),
        };
        let mut cube: Vec<i64> = p.clone();
        for _ in 0..flips {
            let w = r.gen_range(0..CUBE_LEN as usize);
            cube[w] ^= 1i64 << r.gen_range(0..30);
        }
        out.extend_from_slice(&cube);
    }
    out
}

/// Builds the `esp` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let cubes = (scale.iters(110) as f64).sqrt() as usize * 14;
    let train = gen_cover(SALT, cubes);
    let test = gen_cover(SALT + 1, cubes);
    let words = cubes * CUBE_LEN as usize;
    let mut data = train;
    data.extend_from_slice(&test);

    let mut pb = ProgramBuilder::new();
    pb.set_memory(2 * words + 1024, data);

    // popcount(x): software bit count over 32 bits (branchless inner math,
    // loop-structured, as espresso's count_ones tables would be).
    let popcnt = pb.declare_proc("popcount", 1);
    {
        let mut f = pb.begin_declared(popcnt);
        let x = Reg::new(0);
        let n = f.reg();
        let k = f.reg();
        let bit = f.reg();
        let c = f.reg();
        let v = f.reg();
        f.mov(n, 0i64);
        f.mov(k, 0i64);
        f.mov(v, Operand::Reg(x));
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpNe, c, v, 0i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::And, bit, v, 1i64);
        f.alu(AluOp::Add, n, n, bit);
        f.alu(AluOp::Shr, v, v, 1i64);
        f.alu(AluOp::Add, k, k, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(n)));
        f.finish();
    }

    // distance(a_base, b_base): number of differing bits, with an early
    // exit once the distance exceeds 1 (espresso's common fast path).
    let dist = pb.declare_proc("cdist", 2);
    {
        let mut f = pb.begin_declared(dist);
        let a = Reg::new(0);
        let b = Reg::new(1);
        let k = f.reg();
        let d = f.reg();
        let c = f.reg();
        let va = f.reg();
        let vb = f.reg();
        let x = f.reg();
        let pc = f.reg();
        f.mov(k, 0i64);
        f.mov(d, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let check = f.new_block();
        let early = f.new_block();
        let next = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(k), Operand::Imm(CUBE_LEN));
        f.branch(c, body, exit);
        f.switch_to(body);
        let aa = f.reg();
        let ba = f.reg();
        f.alu(AluOp::Add, aa, a, k);
        f.alu(AluOp::Add, ba, b, k);
        f.load(va, aa, 0);
        f.load(vb, ba, 0);
        f.alu(AluOp::Xor, x, va, vb);
        f.call(popcnt, vec![Operand::Reg(x)], Some(pc));
        f.alu(AluOp::Add, d, d, pc);
        f.jump(check);
        f.switch_to(check);
        f.alu(AluOp::CmpLt, c, Operand::Imm(1), Operand::Reg(d));
        f.branch(c, early, next);
        f.switch_to(early);
        f.ret(Some(Operand::Reg(d)));
        f.switch_to(next);
        f.alu(AluOp::Add, k, k, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(d)));
        f.finish();
    }

    // main(base, cubes): pairwise sweep counting equal (d==0) and
    // mergeable (d==1) pairs.
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let j = f.reg();
    let c = f.reg();
    let d = f.reg();
    let same = f.reg();
    let mergeable = f.reg();
    let far = f.reg();
    let a_base = f.reg();
    let b_base = f.reg();
    f.mov(i, 0i64);
    f.mov(same, 0i64);
    f.mov(mergeable, 0i64);
    f.mov(far, 0i64);
    let ohead = f.new_block();
    let obody = f.new_block();
    let ihead = f.new_block();
    let ibody = f.new_block();
    let d0 = f.new_block();
    let not0 = f.new_block();
    let d1 = f.new_block();
    let dfar = f.new_block();
    let ilatch = f.new_block();
    let olatch = f.new_block();
    let exit = f.new_block();
    f.jump(ohead);
    f.switch_to(ohead);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, obody, exit);
    f.switch_to(obody);
    f.alu(AluOp::Add, j, i, 1i64);
    f.jump(ihead);
    f.switch_to(ihead);
    f.alu(AluOp::CmpLt, c, Operand::Reg(j), Operand::Reg(n));
    f.branch(c, ibody, olatch);
    f.switch_to(ibody);
    f.alu(AluOp::Mul, a_base, i, CUBE_LEN);
    f.alu(AluOp::Add, a_base, a_base, base);
    f.alu(AluOp::Mul, b_base, j, CUBE_LEN);
    f.alu(AluOp::Add, b_base, b_base, base);
    f.call(dist, vec![Operand::Reg(a_base), Operand::Reg(b_base)], Some(d));
    f.alu(AluOp::CmpEq, c, d, 0i64);
    f.branch(c, d0, not0);
    f.switch_to(d0);
    f.alu(AluOp::Add, same, same, 1i64);
    f.jump(ilatch);
    f.switch_to(not0);
    f.alu(AluOp::CmpEq, c, d, 1i64);
    f.branch(c, d1, dfar);
    f.switch_to(d1);
    f.alu(AluOp::Add, mergeable, mergeable, 1i64);
    f.jump(ilatch);
    f.switch_to(dfar);
    f.alu(AluOp::Add, far, far, 1i64);
    f.jump(ilatch);
    f.switch_to(ilatch);
    f.alu(AluOp::Add, j, j, 1i64);
    f.jump(ihead);
    f.switch_to(olatch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(ohead);
    f.switch_to(exit);
    f.out(same);
    f.out(mergeable);
    f.out(far);
    f.ret(Some(Operand::Reg(far)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "esp",
        description: "Boolean minimization",
        category: Category::Spec92,
        program,
        train_args: vec![0, cubes as i64],
        test_args: vec![words as i64, cubes as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn pair_counts_sum_correctly() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        let n = b.train_args[1];
        let pairs = n * (n - 1) / 2;
        assert_eq!(r.output.iter().sum::<i64>(), pairs);
        // Clustered cubes: all three outcomes occur.
        assert!(r.output[0] > 0, "identical cubes exist");
        assert!(r.output[2] > 0, "distant cubes exist");
    }
}
