//! `go` — plays the game of Go (Table 1: `9stone21` input).
//!
//! The paper uses go (with li) to show that "unrolling alone is
//! insufficient when an application's performance is dominated by low
//! iteration count loops and/or frequent procedure calls". The analog is a
//! recursive game-tree search: every node iterates a data-dependent,
//! *small* move loop (2–4 moves), recursing per move and calling a leaf
//! evaluator — call-dominated control flow with no high-trip loop
//! anywhere.

use crate::util::{gen_uniform, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, Reg};

const SALT: u64 = 0x90;
const DEPTH: i64 = 6;

/// Builds the `go` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let roots = scale.iters(12) as usize;
    let train = gen_uniform(SALT, roots, 1 << 16);
    let test = gen_uniform(SALT + 1, roots, 1 << 16);
    let mut data = train;
    data.extend_from_slice(&test);

    let mut pb = ProgramBuilder::new();
    pb.set_memory(2 * roots + 1024, data);

    // evaluate(pos): a short branchy leaf evaluation.
    let eval = pb.declare_proc("evaluate", 1);
    {
        let mut f = pb.begin_declared(eval);
        let pos = Reg::new(0);
        let v = f.reg();
        let c = f.reg();
        let t = f.reg();
        f.alu(AluOp::Mul, v, pos, 2654435761i64);
        f.alu(AluOp::Shr, v, v, 13i64);
        f.alu(AluOp::And, v, v, 0xFFi64);
        let hi = f.new_block();
        let lo = f.new_block();
        let join = f.new_block();
        f.alu(AluOp::CmpLt, c, Operand::Imm(128), Operand::Reg(v));
        f.branch(c, hi, lo);
        f.switch_to(hi);
        f.alu(AluOp::Sub, t, v, 128i64);
        f.jump(join);
        f.switch_to(lo);
        f.alu(AluOp::Sub, t, Operand::Imm(128), Operand::Reg(v));
        f.jump(join);
        f.switch_to(join);
        f.ret(Some(Operand::Reg(t)));
        f.finish();
    }

    // search(pos, depth) -> best score. Low-iteration move loop, recursive
    // calls, max-reduction branch.
    let search = pb.declare_proc("search", 2);
    {
        let mut f = pb.begin_declared(search);
        let pos = Reg::new(0);
        let depth = Reg::new(1);
        let c = f.reg();
        let best = f.reg();
        let moves = f.reg();
        let m = f.reg();
        let child = f.reg();
        let score = f.reg();
        let d1 = f.reg();
        let leaf = f.new_block();
        let interior = f.new_block();
        let head = f.new_block();
        let body = f.new_block();
        let better = f.new_block();
        let ilatch = f.new_block();
        let done = f.new_block();
        // Leaf?
        f.alu(AluOp::CmpEq, c, depth, 0i64);
        f.branch(c, leaf, interior);
        f.switch_to(leaf);
        let lv = f.reg();
        f.call(eval, vec![Operand::Reg(pos)], Some(lv));
        f.ret(Some(Operand::Reg(lv)));
        f.switch_to(interior);
        // moves = 2 + (pos % 3): a 2-4 iteration loop.
        f.alu(AluOp::Rem, moves, pos, 3i64);
        f.alu(AluOp::Add, moves, moves, 2i64);
        f.mov(best, Operand::Imm(-1_000_000));
        f.mov(m, 0i64);
        f.alu(AluOp::Sub, d1, depth, 1i64);
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(m), Operand::Reg(moves));
        f.branch(c, body, done);
        f.switch_to(body);
        // child = combine(pos, m)
        f.alu(AluOp::Mul, child, pos, 31i64);
        f.alu(AluOp::Add, child, child, m);
        f.alu(AluOp::Add, child, child, 7i64);
        f.alu(AluOp::And, child, child, 0xFFFFi64);
        f.call(search, vec![Operand::Reg(child), Operand::Reg(d1)], Some(score));
        f.alu(AluOp::CmpLt, c, best, score);
        f.branch(c, better, ilatch);
        f.switch_to(better);
        f.mov(best, Operand::Reg(score));
        f.jump(ilatch);
        f.switch_to(ilatch);
        f.alu(AluOp::Add, m, m, 1i64);
        f.jump(head);
        f.switch_to(done);
        // Interior nodes contribute position-dependent territory value, so
        // scores vary across positions instead of saturating at the leaf
        // maximum.
        let terr = f.reg();
        f.alu(AluOp::And, terr, pos, 7i64);
        f.alu(AluOp::Add, best, best, terr);
        f.ret(Some(Operand::Reg(best)));
        f.finish();
    }

    // main(base, roots): search from each root position.
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let acc = f.reg();
    let pos = f.reg();
    let score = f.reg();
    let c = f.reg();
    let addr = f.reg();
    f.mov(i, 0i64);
    f.mov(acc, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(pos, addr, 0);
    f.call(search, vec![Operand::Reg(pos), Operand::Imm(DEPTH)], Some(score));
    f.alu(AluOp::Add, acc, acc, score);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(acc);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "go",
        description: "Plays the game of Go",
        category: Category::Spec95,
        program,
        train_args: vec![0, roots as i64],
        test_args: vec![roots as i64, roots as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn search_is_call_dominated() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        // Tree of depth 6 with 2-4 children: hundreds of activations per
        // root search.
        assert!(r.counts.calls > 100 * b.train_args[1] as u64);
        // Branches per call stay small (low-iteration loops).
        let per_call = r.counts.branches as f64 / r.counts.calls as f64;
        assert!(per_call < 12.0, "no high-trip loops: {per_call:.1}");
    }
}
