//! `gcc` — the GNU C compiler (Table 1: `cccp.i` input).
//!
//! The paper singles out gcc for its non-trivial instruction-cache miss
//! rate: a large, call-heavy, irregular, switch-driven code base where no
//! single loop dominates. The analog processes a skewed token stream
//! through a dispatch switch over many distinct handler procedures, each
//! with its own small branchy CFG and calls into shared utilities — enough
//! static code and irregular control flow to stress code layout and
//! enlargement heuristics the way gcc does.

use crate::util::{gen_symbols, Benchmark, Category, Scale};
use pps_ir::builder::ProgramBuilder;
use pps_ir::{AluOp, Operand, ProcId, Reg};

const SALT: u64 = 0x9CC;
/// Number of token kinds / handler procedures. Large on purpose: gcc's
/// 5.6MB binary is the paper's instruction-cache stress case, so the
/// analog needs enough static code that enlargement-driven expansion
/// actually pressures the 32KB cache.
const KINDS: i64 = 48;

/// Builds the `gcc` analog at the given scale.
pub fn build(scale: Scale) -> Benchmark {
    let len = scale.iters(12_000) as usize;
    let train = gen_symbols(SALT, len, KINDS);
    let test = gen_symbols(SALT + 1, len, KINDS);
    let mut data = train;
    data.extend_from_slice(&test);

    let mut pb = ProgramBuilder::new();
    pb.set_memory(2 * len + 4096, data);

    // Shared utilities: hash, clamp, and a small table walk.
    let hash = pb.declare_proc("hash", 1);
    {
        let mut f = pb.begin_declared(hash);
        let x = Reg::new(0);
        let h = f.reg();
        f.alu(AluOp::Mul, h, x, 0x9E37_79B9i64);
        f.alu(AluOp::Xor, h, h, x);
        f.alu(AluOp::Shr, h, h, 7i64);
        f.alu(AluOp::And, h, h, 0xFFFFi64);
        f.ret(Some(Operand::Reg(h)));
        f.finish();
    }
    let clamp = pb.declare_proc("clamp", 1);
    {
        let mut f = pb.begin_declared(clamp);
        let x = Reg::new(0);
        let c = f.reg();
        let neg = f.new_block();
        let big = f.new_block();
        let chk = f.new_block();
        let ok = f.new_block();
        f.alu(AluOp::CmpLt, c, Operand::Reg(x), Operand::Imm(0));
        f.branch(c, neg, chk);
        f.switch_to(neg);
        f.ret(Some(Operand::Imm(0)));
        f.switch_to(chk);
        f.alu(AluOp::CmpLt, c, Operand::Imm(1 << 20), Operand::Reg(x));
        f.branch(c, big, ok);
        f.switch_to(big);
        f.ret(Some(Operand::Imm(1 << 20)));
        f.switch_to(ok);
        f.ret(Some(Operand::Reg(x)));
        f.finish();
    }

    // Handler procedures: each handler(state, tok) -> new state with a
    // distinct small CFG; handlers alternate among a few structural shapes
    // so the code base is large and heterogeneous like a compiler's.
    let mut handlers: Vec<ProcId> = Vec::new();
    for k in 0..KINDS {
        let name = format!("handle_{k}");
        let h = pb.declare_proc(name, 2);
        let mut f = pb.begin_declared(h);
        let state = Reg::new(0);
        let tok = Reg::new(1);
        let s = f.reg();
        let c = f.reg();
        let t = f.reg();
        f.mov(s, Operand::Reg(state));
        // Per-handler straight-line "semantic action" prologue: distinct
        // constants per handler keep the code bodies from being identical.
        let mix = f.reg();
        f.alu(AluOp::Mul, mix, tok, 0x100 + 2 * k + 1);
        f.alu(AluOp::Xor, mix, mix, 0x1234 + 7 * k);
        f.alu(AluOp::Shl, t, mix, 2i64);
        f.alu(AluOp::Add, mix, mix, t);
        f.alu(AluOp::Shr, t, mix, 5i64);
        f.alu(AluOp::Xor, mix, mix, t);
        f.alu(AluOp::And, mix, mix, 0xFFFFi64);
        f.alu(AluOp::Add, s, s, mix);
        match k % 4 {
            0 => {
                // Diamond over token parity + hash call.
                let even = f.new_block();
                let odd = f.new_block();
                let join = f.new_block();
                f.alu(AluOp::And, t, tok, 1i64);
                f.alu(AluOp::CmpEq, c, t, 0i64);
                f.branch(c, even, odd);
                f.switch_to(even);
                f.alu(AluOp::Add, s, s, 3 + k);
                f.jump(join);
                f.switch_to(odd);
                f.alu(AluOp::Xor, s, s, 5 + k);
                f.jump(join);
                f.switch_to(join);
                let hh = f.reg();
                f.call(hash, vec![Operand::Reg(s)], Some(hh));
                f.alu(AluOp::Add, s, s, hh);
                f.ret(Some(Operand::Reg(s)));
            }
            1 => {
                // Short data-dependent loop (1..=4 iterations).
                let i = f.reg();
                f.alu(AluOp::And, t, tok, 3i64);
                f.alu(AluOp::Add, t, t, 1i64);
                f.mov(i, 0i64);
                let head = f.new_block();
                let body = f.new_block();
                let exit = f.new_block();
                f.jump(head);
                f.switch_to(head);
                f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(t));
                f.branch(c, body, exit);
                f.switch_to(body);
                f.alu(AluOp::Mul, s, s, 3i64);
                f.alu(AluOp::Add, s, s, k + 1);
                f.alu(AluOp::And, s, s, 0xF_FFFFi64);
                f.alu(AluOp::Add, i, i, 1i64);
                f.jump(head);
                f.switch_to(exit);
                f.ret(Some(Operand::Reg(s)));
            }
            2 => {
                // Nested conditionals + clamp call.
                let b1 = f.new_block();
                let b2 = f.new_block();
                let b3 = f.new_block();
                let b4 = f.new_block();
                let join = f.new_block();
                f.alu(AluOp::And, t, tok, 7i64);
                f.alu(AluOp::CmpLt, c, t, 3i64);
                f.branch(c, b1, b2);
                f.switch_to(b1);
                f.alu(AluOp::Add, s, s, 17 + k);
                f.jump(join);
                f.switch_to(b2);
                f.alu(AluOp::CmpLt, c, t, 6i64);
                f.branch(c, b3, b4);
                f.switch_to(b3);
                f.alu(AluOp::Sub, s, s, 9 + k);
                f.jump(join);
                f.switch_to(b4);
                f.alu(AluOp::Xor, s, s, 0x55i64);
                f.jump(join);
                f.switch_to(join);
                let cc = f.reg();
                f.call(clamp, vec![Operand::Reg(s)], Some(cc));
                f.ret(Some(Operand::Reg(cc)));
            }
            _ => {
                // Straight-line arithmetic (leaf, no calls).
                f.alu(AluOp::Mul, t, tok, 2 * k + 1);
                f.alu(AluOp::Add, s, s, t);
                f.alu(AluOp::Shl, t, s, 3i64);
                f.alu(AluOp::Xor, s, s, t);
                f.alu(AluOp::And, s, s, 0xFF_FFFFi64);
                f.ret(Some(Operand::Reg(s)));
            }
        }
        handlers.push(f.finish());
    }

    // main(base, len): dispatch loop.
    let mut f = pb.begin_proc("main", 2);
    let base = Reg::new(0);
    let n = Reg::new(1);
    let i = f.reg();
    let state = f.reg();
    let tok = f.reg();
    let c = f.reg();
    let addr = f.reg();
    f.mov(i, 0i64);
    f.mov(state, 1i64);
    let head = f.new_block();
    let body = f.new_block();
    let latch = f.new_block();
    let exit = f.new_block();
    let cases: Vec<_> = (0..KINDS).map(|_| f.new_block()).collect();
    f.jump(head);
    f.switch_to(head);
    f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
    f.branch(c, body, exit);
    f.switch_to(body);
    f.alu(AluOp::Add, addr, base, i);
    f.load(tok, addr, 0);
    f.switch(tok, cases.clone(), latch);
    for (k, &case) in cases.iter().enumerate() {
        f.switch_to(case);
        f.call(
            handlers[k],
            vec![Operand::Reg(state), Operand::Reg(tok)],
            Some(state),
        );
        f.jump(latch);
    }
    f.switch_to(latch);
    f.alu(AluOp::Add, i, i, 1i64);
    f.jump(head);
    f.switch_to(exit);
    f.out(state);
    f.ret(Some(Operand::Reg(state)));
    let main = f.finish();
    let program = pb.finish(main);
    Benchmark {
        name: "gcc",
        description: "GNU C compiler",
        category: Category::Spec95,
        program,
        train_args: vec![0, len as i64],
        test_args: vec![len as i64, len as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::{ExecConfig, Interp};

    #[test]
    fn dispatch_reaches_many_handlers() {
        let b = build(Scale::quick());
        let r = Interp::new(&b.program, ExecConfig::default())
            .run(&b.train_args)
            .unwrap();
        // One activation per token handled, plus main.
        assert!(r.counts.calls > b.train_args[1] as u64);
        assert!(!r.output.is_empty());
    }

    #[test]
    fn static_size_is_substantial() {
        let b = build(Scale::quick());
        assert!(
            b.program.static_size() > 800,
            "gcc analog must carry real code bulk: {}",
            b.program.static_size()
        );
        assert!(b.program.procs.len() >= 50, "many procedures");
    }
}
