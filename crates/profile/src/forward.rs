//! Forward-path profiling (Ball–Larus style), for comparison.
//!
//! A *forward* path may not contain a back edge: the dynamic block trace is
//! chopped into pieces at back edges (and at procedure entry/exit), and each
//! piece is counted. The paper's §2.2 explains why general paths are
//! preferable for superblock enlargement — forward paths cannot span loop
//! iterations, so they can neither give exact frequencies for unrolled
//! traces nor capture cross-iteration branch correlation. This profiler
//! exists so those claims can be demonstrated (see the crate tests and the
//! `bench/profiler` benchmark).

use pps_ir::analysis::ProcAnalysis;
use pps_ir::{BlockId, ProcId, Program, TraceSink};
use std::collections::{HashMap, HashSet};

/// Live forward-path-profile collector.
#[derive(Debug)]
pub struct ForwardPathProfiler {
    /// Per-procedure back-edge sets.
    back_edges: Vec<HashSet<(BlockId, BlockId)>>,
    /// Per-procedure stacks of in-progress paths (one per activation).
    current: Vec<Vec<Vec<BlockId>>>,
    /// Per-procedure completed-path counts.
    counts: Vec<HashMap<Vec<BlockId>, u64>>,
    /// Maximum path length in blocks (guards pathological growth; 0 = no
    /// limit). When reached, the path is finalized and a new one starts.
    max_blocks: usize,
}

impl ForwardPathProfiler {
    /// Creates a collector for `program` with no block-length cap.
    pub fn new(program: &Program) -> Self {
        Self::with_max_blocks(program, 0)
    }

    /// Creates a collector that additionally finalizes paths after
    /// `max_blocks` blocks (0 = unlimited).
    pub fn with_max_blocks(program: &Program, max_blocks: usize) -> Self {
        let back_edges = program
            .procs
            .iter()
            .map(|p| {
                let a = ProcAnalysis::compute(p);
                a.loops.back_edges.iter().copied().collect()
            })
            .collect();
        ForwardPathProfiler {
            back_edges,
            current: program.procs.iter().map(|_| Vec::new()).collect(),
            counts: program.procs.iter().map(|_| HashMap::new()).collect(),
            max_blocks,
        }
    }

    fn finalize(counts: &mut HashMap<Vec<BlockId>, u64>, path: &mut Vec<BlockId>) {
        if !path.is_empty() {
            *counts.entry(std::mem::take(path)).or_insert(0) += 1;
        }
    }

    /// Freezes into a queryable profile.
    pub fn finish(mut self) -> ForwardPathProfile {
        // Finalize any still-open paths (e.g. if the sink outlives a run
        // that errored out).
        for (p, stacks) in self.current.iter_mut().enumerate() {
            for path in stacks.iter_mut() {
                Self::finalize(&mut self.counts[p], path);
            }
        }
        ForwardPathProfile { counts: self.counts }
    }
}

impl TraceSink for ForwardPathProfiler {
    fn enter_proc(&mut self, proc: ProcId) {
        self.current[proc.index()].push(Vec::new());
    }

    fn exit_proc(&mut self, proc: ProcId) {
        let p = proc.index();
        if let Some(mut path) = self.current[p].pop() {
            Self::finalize(&mut self.counts[p], &mut path);
        }
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let p = proc.index();
        let path = self.current[p].last_mut().expect("activation exists");
        if let Some(&last) = path.last() {
            if self.back_edges[p].contains(&(last, block))
                || (self.max_blocks > 0 && path.len() >= self.max_blocks)
            {
                Self::finalize(&mut self.counts[p], path);
            }
        }
        path.push(block);
    }
}

/// A frozen forward-path profile.
#[derive(Debug, Clone, Default)]
pub struct ForwardPathProfile {
    counts: Vec<HashMap<Vec<BlockId>, u64>>,
}

impl ForwardPathProfile {
    /// Count of the exact completed forward path `seq`.
    pub fn path_count(&self, proc: ProcId, seq: &[BlockId]) -> u64 {
        self.counts[proc.index()].get(seq).copied().unwrap_or(0)
    }

    /// Iterates over all completed paths of `proc` with their counts.
    pub fn iter_paths(&self, proc: ProcId) -> impl Iterator<Item = (&[BlockId], u64)> {
        self.counts[proc.index()]
            .iter()
            .map(|(k, v)| (k.as_slice(), *v))
    }

    /// Number of distinct forward paths recorded for `proc`.
    pub fn distinct_paths(&self, proc: ProcId) -> usize {
        self.counts[proc.index()].len()
    }

    /// Frequency of `seq` occurring as a prefix of completed forward paths.
    pub fn prefix_freq(&self, proc: ProcId, seq: &[BlockId]) -> u64 {
        self.counts[proc.index()]
            .iter()
            .filter(|(k, _)| k.len() >= seq.len() && k[..seq.len()] == *seq)
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    /// Simple counted loop: entry -> head; head -> body|exit; body -> head.
    fn counted_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn forward_paths_chop_at_back_edges() {
        let p = counted_loop(5);
        let mut prof = ForwardPathProfiler::new(&p);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let fp = prof.finish();
        let main = p.entry;
        let (entry, head, body, exit) =
            (BlockId::new(0), BlockId::new(1), BlockId::new(2), BlockId::new(3));
        // First piece: entry, head, body (chopped before re-entering head).
        assert_eq!(fp.path_count(main, &[entry, head, body]), 1);
        // Middle iterations: head, body — 4 of them.
        assert_eq!(fp.path_count(main, &[head, body]), 4);
        // Final piece: head, exit.
        assert_eq!(fp.path_count(main, &[head, exit]), 1);
        assert_eq!(fp.distinct_paths(main), 3);
        // No forward path spans a back edge.
        assert_eq!(fp.path_count(main, &[head, body, head]), 0);
        assert_eq!(fp.prefix_freq(main, &[head]), 5);
    }

    #[test]
    fn max_blocks_cap_finalizes_long_paths() {
        let p = counted_loop(3);
        let mut prof = ForwardPathProfiler::with_max_blocks(&p, 2);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let fp = prof.finish();
        for (path, _) in fp.iter_paths(p.entry) {
            assert!(path.len() <= 2);
        }
    }
}
