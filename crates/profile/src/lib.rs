#![warn(missing_docs)]

//! Profilers over dynamic execution traces.
//!
//! Three profilers, all implemented as [`pps_ir::TraceSink`]s so they attach
//! directly to the reference interpreter:
//!
//! - [`edge::EdgeProfiler`] — the classical *point* profile: independent
//!   frequencies per CFG edge (and per block). This is what the paper's
//!   baseline mutual-most-likely superblock former consumes.
//! - [`path::PathProfiler`] — the paper's *general path* profile (§2.2,
//!   §3.1): a sliding window over the dynamic basic-block trace bounded at 15
//!   conditional/multiway branches, collected lazily with cached successor
//!   transitions so steady-state work is O(1) per dynamic edge. Frequencies
//!   of arbitrary contiguous block sequences (up to the depth bound) are
//!   answered exactly via suffix sums over a reversed trie.
//! - [`forward::ForwardPathProfiler`] — Ball–Larus-style forward paths
//!   (chopped at back edges), included for comparison with prior work (§5).
//! - [`kpath::KPathProfiler`] — k-iteration Ball–Larus paths
//!   (arXiv:1304.5197): the chop moves to the k-th back-edge crossing, so a
//!   path spans up to `k` loop iterations and exposes cross-iteration branch
//!   correlation. `k = 1` is bit-identical to the forward profiler; the
//!   derived [`kpath::KPathProfile::to_path_profile`] view feeds the
//!   `Pk2`/`Pk3` superblock-formation schemes.
//!
//! All profiles are collected per procedure with one window per activation,
//! so recursion is handled exactly and paths never cross procedure
//! boundaries (the paper's basic-block-sequence profiles).
//!
//! # Example
//!
//! ```
//! use pps_ir::builder::ProgramBuilder;
//! use pps_ir::interp::{ExecConfig, Interp};
//! use pps_profile::path::PathProfiler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-block program: entry jumps to an exit block.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.begin_proc("main", 0);
//! let exit = f.new_block();
//! f.jump(exit);
//! f.switch_to(exit);
//! f.ret(None);
//! let main = f.finish();
//! let program = pb.finish(main);
//!
//! let mut profiler = PathProfiler::new(&program, 15);
//! Interp::new(&program, ExecConfig::default()).run_traced(&[], &mut profiler)?;
//! let profile = profiler.finish();
//! let p = program.entry;
//! use pps_ir::BlockId;
//! assert_eq!(profile.freq(p, &[BlockId::new(0), BlockId::new(1)]), 1);
//! # Ok(())
//! # }
//! ```

pub mod edge;
pub mod forward;
pub mod hash;
pub mod kpath;
pub mod merge;
pub mod path;
pub mod predict;
pub mod serialize;

pub use edge::{EdgeProfile, EdgeProfiler};
pub use hash::{edge_hash, kpath_hash, path_hash, profile_pair_hash, profile_triple_hash};
pub use merge::{
    kpath_drift, merge_edges, merge_kpaths, merge_paths, path_drift, DriftReport, MergeError,
};
pub use forward::{ForwardPathProfile, ForwardPathProfiler};
pub use kpath::{KPathProfile, KPathProfiler};
pub use path::{PathProfile, PathProfiler, DEFAULT_PATH_DEPTH};
pub use predict::{EdgePredictor, PathPredictor, PredictStats, Predictor};
