//! k-iteration Ball–Larus path profiling.
//!
//! The forward profiler ([`crate::forward`]) chops the dynamic block trace
//! at *every* back edge, so no path spans a loop iteration boundary and
//! cross-iteration branch correlation is invisible. Following the
//! multi-iteration Ball–Larus construction (arXiv:1304.5197), this profiler
//! lets a path run until it is about to cross its **k-th** back edge: each
//! counted path covers up to `k` consecutive iterations of the enclosing
//! loop, exposing exactly the correlation a cross-iteration superblock
//! former needs. `k = 1` degenerates to the forward profiler — the chop
//! points coincide by construction, which `tests/interp_diff.rs` locks down
//! bit-for-bit across the whole suite.
//!
//! A frozen [`KPathProfile`] answers exact counts for completed k-paths and
//! derives a [`PathProfile`] view ([`KPathProfile::to_path_profile`]) whose
//! `freq(seq)` is the number of occurrences of `seq` *within* recorded
//! k-iteration spans. Substrings that would cross a chop boundary score
//! zero — that loss is the honest fidelity semantics of kBL profiles, and
//! it is what lets the existing path-based trace selector and enlarger run
//! unchanged over k-iteration data: enlargement simply finds no support for
//! extensions the profile never observed.

use crate::path::PathProfile;
use pps_ir::analysis::ProcAnalysis;
use pps_ir::{BlockId, ProcId, Program, TraceSink};
use std::collections::{HashMap, HashSet};

/// Live k-iteration path collector. A [`TraceSink`], like the other
/// profilers, so it tees onto any interpreter run.
#[derive(Debug)]
pub struct KPathProfiler {
    /// Back-edge crossings allowed per path (`k >= 1`).
    k: usize,
    /// Per-procedure back-edge sets.
    back_edges: Vec<HashSet<(BlockId, BlockId)>>,
    /// Per-procedure stacks of in-progress paths with their back-edge
    /// crossing counts (one entry per live activation).
    current: Vec<Vec<(Vec<BlockId>, usize)>>,
    /// Per-procedure completed-path counts.
    counts: Vec<HashMap<Vec<BlockId>, u64>>,
    /// Maximum path length in blocks (guards pathological growth; 0 = no
    /// limit). When reached, the path is finalized and a new one starts.
    max_blocks: usize,
}

impl KPathProfiler {
    /// Creates a collector for `program` counting paths of up to `k`
    /// iterations, with no block-length cap.
    ///
    /// # Panics
    /// Panics if `k == 0`; a path that may cross no back edge and contain
    /// no block is not a path.
    pub fn new(program: &Program, k: usize) -> Self {
        Self::with_max_blocks(program, k, 0)
    }

    /// Creates a collector that additionally finalizes paths after
    /// `max_blocks` blocks (0 = unlimited).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_max_blocks(program: &Program, k: usize, max_blocks: usize) -> Self {
        assert!(k >= 1, "k-iteration paths need k >= 1");
        let back_edges = program
            .procs
            .iter()
            .map(|p| {
                let a = ProcAnalysis::compute(p);
                a.loops.back_edges.iter().copied().collect()
            })
            .collect();
        KPathProfiler {
            k,
            back_edges,
            current: program.procs.iter().map(|_| Vec::new()).collect(),
            counts: program.procs.iter().map(|_| HashMap::new()).collect(),
            max_blocks,
        }
    }

    fn finalize(counts: &mut HashMap<Vec<BlockId>, u64>, path: &mut Vec<BlockId>) {
        if !path.is_empty() {
            *counts.entry(std::mem::take(path)).or_insert(0) += 1;
        }
    }

    /// Freezes into a queryable profile.
    pub fn finish(mut self) -> KPathProfile {
        for (p, stacks) in self.current.iter_mut().enumerate() {
            for (path, _) in stacks.iter_mut() {
                Self::finalize(&mut self.counts[p], path);
            }
        }
        KPathProfile { k: self.k, counts: self.counts }
    }
}

impl TraceSink for KPathProfiler {
    fn enter_proc(&mut self, proc: ProcId) {
        self.current[proc.index()].push((Vec::new(), 0));
    }

    fn exit_proc(&mut self, proc: ProcId) {
        let p = proc.index();
        if let Some((mut path, _)) = self.current[p].pop() {
            Self::finalize(&mut self.counts[p], &mut path);
        }
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let p = proc.index();
        let (path, crossings) = self.current[p].last_mut().expect("activation exists");
        if let Some(&last) = path.last() {
            let is_back = self.back_edges[p].contains(&(last, block));
            if is_back && *crossings + 1 == self.k {
                // Crossing this back edge would be crossing number
                // `crossings + 1`; the k-th crossing closes the path.
                Self::finalize(&mut self.counts[p], path);
                *crossings = 0;
            } else if self.max_blocks > 0 && path.len() >= self.max_blocks {
                Self::finalize(&mut self.counts[p], path);
                *crossings = 0;
            } else if is_back {
                *crossings += 1;
            }
        }
        path.push(block);
    }
}

/// A frozen k-iteration path profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPathProfile {
    k: usize,
    counts: Vec<HashMap<Vec<BlockId>, u64>>,
}

impl KPathProfile {
    /// Builds a profile directly from per-procedure completed-path counts
    /// (the deserializer's and merger's entry point). Duplicate paths have
    /// their counts summed (saturating).
    pub fn from_paths(k: usize, per_proc: Vec<Vec<(Vec<BlockId>, u64)>>) -> Self {
        assert!(k >= 1, "k-iteration paths need k >= 1");
        let counts = per_proc
            .into_iter()
            .map(|paths| {
                let mut m: HashMap<Vec<BlockId>, u64> = HashMap::new();
                for (path, count) in paths {
                    let slot = m.entry(path).or_insert(0);
                    *slot = slot.saturating_add(count);
                }
                m
            })
            .collect();
        KPathProfile { k, counts }
    }

    /// The iteration bound this profile was collected at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of procedures covered.
    pub fn num_procs(&self) -> usize {
        self.counts.len()
    }

    /// Count of the exact completed k-path `seq`.
    pub fn path_count(&self, proc: ProcId, seq: &[BlockId]) -> u64 {
        self.counts[proc.index()].get(seq).copied().unwrap_or(0)
    }

    /// Iterates over all completed k-paths of `proc` with their counts.
    pub fn iter_paths(&self, proc: ProcId) -> impl Iterator<Item = (&[BlockId], u64)> {
        self.counts[proc.index()]
            .iter()
            .map(|(k, v)| (k.as_slice(), *v))
    }

    /// Number of distinct k-paths recorded for `proc`.
    pub fn distinct_paths(&self, proc: ProcId) -> usize {
        self.counts[proc.index()].len()
    }

    /// Derives the general-path view that drives trace selection and
    /// enlargement: a [`PathProfile`] at window `depth` whose
    /// `freq(proc, seq)` equals the number of occurrences of `seq` as a
    /// contiguous subsequence of recorded k-paths (weighted by path
    /// counts).
    ///
    /// The construction loads every *prefix* of each k-path as a window:
    /// `PathProfile::freq` counts stored windows having `seq` as a suffix,
    /// and a prefix of a k-path has `seq` as a suffix exactly once per
    /// occurrence of `seq` ending at that prefix's last block. Sequences
    /// that would cross a chop boundary (more than `k` back-edge
    /// crossings) were never recorded and therefore score zero — the
    /// fidelity cliff that distinguishes `Pk2`/`Pk3` from the unbounded
    /// general-path profile.
    pub fn to_path_profile(&self, depth: usize) -> PathProfile {
        let per_proc = self
            .counts
            .iter()
            .map(|m| {
                let mut windows: Vec<(Vec<BlockId>, u64)> = Vec::new();
                for (path, &count) in m {
                    for end in 1..=path.len() {
                        windows.push((path[..end].to_vec(), count));
                    }
                }
                windows
            })
            .collect();
        PathProfile::from_windows(depth, per_proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ForwardPathProfiler;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    /// Simple counted loop: entry -> head; head -> body|exit; body -> head.
    fn counted_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    /// A loop whose body alternates between two sides per iteration, so
    /// cross-iteration correlation exists for k >= 2 to see.
    fn alternating_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let a = f.new_block();
        let b = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 2i64);
        f.branch(m, a, b);
        f.switch_to(a);
        f.jump(latch);
        f.switch_to(b);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    fn kprofile(p: &Program, k: usize) -> KPathProfile {
        let mut prof = KPathProfiler::new(p, k);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        prof.finish()
    }

    #[test]
    fn k2_paths_span_two_iterations() {
        let p = counted_loop(5);
        let kp = kprofile(&p, 2);
        let main = p.entry;
        let (entry, head, body, exit) =
            (BlockId::new(0), BlockId::new(1), BlockId::new(2), BlockId::new(3));
        // First piece runs until the second back-edge crossing:
        // entry head body | head body | (chop) ...
        assert_eq!(kp.path_count(main, &[entry, head, body, head, body]), 1);
        // Middle piece: two more iterations.
        assert_eq!(kp.path_count(main, &[head, body, head, body]), 1);
        // Final piece: fifth iteration plus the exit test.
        assert_eq!(kp.path_count(main, &[head, body, head, exit]), 1);
        assert_eq!(kp.distinct_paths(main), 3);
    }

    #[test]
    fn k1_matches_forward_profiler_exactly() {
        for n in [0, 1, 5, 17] {
            let p = counted_loop(n);
            let mut fwd = ForwardPathProfiler::new(&p);
            let mut k1 = KPathProfiler::new(&p, 1);
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut fwd)
                .unwrap();
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut k1)
                .unwrap();
            let fwd = fwd.finish();
            let k1 = k1.finish();
            let main = p.entry;
            let mut a: Vec<(Vec<BlockId>, u64)> =
                fwd.iter_paths(main).map(|(p, c)| (p.to_vec(), c)).collect();
            let mut b: Vec<(Vec<BlockId>, u64)> =
                k1.iter_paths(main).map(|(p, c)| (p.to_vec(), c)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn derived_path_profile_counts_substring_occurrences() {
        let p = alternating_loop(40);
        let kp = kprofile(&p, 2);
        let main = p.entry;
        let derived = kp.to_path_profile(15);
        let (head, a, b, latch) =
            (BlockId::new(1), BlockId::new(2), BlockId::new(3), BlockId::new(4));

        // Spans start at even iterations (b-side first), so within a
        // 2-iteration span the alternation b -> a is visible...
        assert!(derived.freq(main, &[head, b, latch, head, a]) > 0);
        // ...the same-side repeat never happens...
        assert_eq!(derived.freq(main, &[head, b, latch, head, b]), 0);
        // ...and the a -> b transition always falls on a chop boundary, so
        // it scores zero even though it happens dynamically: exactly the
        // fidelity loss that separates Pk2 from the general path profile.
        assert_eq!(derived.freq(main, &[head, a, latch, head, b]), 0);

        // Exact count check against a brute-force scan over the k-paths.
        let seq = [head, a, latch];
        let mut expect = 0u64;
        for (path, count) in kp.iter_paths(main) {
            let occurrences = path
                .windows(seq.len())
                .filter(|w| *w == seq)
                .count() as u64;
            expect += occurrences * count;
        }
        assert_eq!(derived.freq(main, &seq), expect);
    }

    #[test]
    fn max_blocks_cap_finalizes_long_paths() {
        let p = counted_loop(9);
        let mut prof = KPathProfiler::with_max_blocks(&p, 3, 4);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let kp = prof.finish();
        for (path, _) in kp.iter_paths(p.entry) {
            assert!(path.len() <= 4, "{path:?}");
        }
    }

    #[test]
    fn from_paths_sums_duplicates() {
        let b0 = BlockId::new(0);
        let kp = KPathProfile::from_paths(
            2,
            vec![vec![(vec![b0], 3), (vec![b0], 4)]],
        );
        assert_eq!(kp.path_count(ProcId::new(0), &[b0]), 7);
    }
}
