//! Edge (point) profiling.
//!
//! Records, per procedure, the execution frequency of every basic block and
//! every traversed CFG edge. Edge profiles aggregate information about each
//! program point independently; Figure 1 of the paper shows why this loses
//! the trace-completion information that path profiles retain.

use pps_ir::{BlockId, ProcId, Program, TraceSink};
use std::collections::HashMap;

/// Live edge-profile collector. Attach to
/// [`Interp::run_traced`](pps_ir::interp::Interp::run_traced), then call
/// [`finish`](Self::finish).
///
/// The hot path is counter-indexed, not hashed: every traversed edge in a
/// well-formed program is a static CFG edge, so each block carries a dense
/// per-successor counter and an edge event is a short scan of the (tiny)
/// successor list. Edges outside the static CFG — possible only in
/// corrupted programs — fall back to a hash map so the observable counts
/// stay exact for any input.
#[derive(Debug)]
pub struct EdgeProfiler {
    /// Per-procedure block frequencies.
    block_freq: Vec<Vec<u64>>,
    /// Per procedure, per block: `(successor, count)` for each static CFG
    /// successor of the block's terminator (deduplicated).
    succ_counts: Vec<Vec<Vec<(BlockId, u64)>>>,
    /// Traversed edges not present in the static CFG.
    overflow: Vec<HashMap<(BlockId, BlockId), u64>>,
    /// Per-procedure stack of "previous block" for live activations.
    prev: Vec<Vec<Option<BlockId>>>,
    /// Dynamic edge events observed (across all procedures).
    dyn_edges: u64,
}

impl EdgeProfiler {
    /// Creates a collector sized for `program`.
    pub fn new(program: &Program) -> Self {
        EdgeProfiler {
            block_freq: program.procs.iter().map(|p| vec![0; p.blocks.len()]).collect(),
            succ_counts: program
                .procs
                .iter()
                .map(|p| {
                    p.blocks
                        .iter()
                        .map(|b| b.term.successors().into_iter().map(|s| (s, 0)).collect())
                        .collect()
                })
                .collect(),
            overflow: program.procs.iter().map(|_| HashMap::new()).collect(),
            prev: program.procs.iter().map(|_| Vec::new()).collect(),
            dyn_edges: 0,
        }
    }

    /// Freezes the collected counts into an [`EdgeProfile`].
    pub fn finish(self) -> EdgeProfile {
        let edge_freq = self
            .succ_counts
            .into_iter()
            .zip(self.overflow)
            .map(|(blocks, overflow)| {
                let mut m = overflow;
                for (from, succs) in blocks.into_iter().enumerate() {
                    for (to, count) in succs {
                        if count > 0 {
                            *m.entry((BlockId::new(from as u32), to)).or_insert(0) += count;
                        }
                    }
                }
                m
            })
            .collect();
        EdgeProfile {
            block_freq: self.block_freq,
            edge_freq,
            dyn_edges: self.dyn_edges,
        }
    }
}

impl TraceSink for EdgeProfiler {
    fn enter_proc(&mut self, proc: ProcId) {
        self.prev[proc.index()].push(None);
    }

    fn exit_proc(&mut self, proc: ProcId) {
        self.prev[proc.index()].pop();
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let p = proc.index();
        self.block_freq[p][block.index()] += 1;
        let slot = self.prev[p].last_mut().expect("activation exists");
        if let Some(prev) = *slot {
            match self.succ_counts[p]
                .get_mut(prev.index())
                .and_then(|s| s.iter_mut().find(|(to, _)| *to == block))
            {
                Some((_, count)) => *count += 1,
                None => *self.overflow[p].entry((prev, block)).or_insert(0) += 1,
            }
            self.dyn_edges += 1;
        }
        *slot = Some(block);
    }
}

/// A frozen edge profile.
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    block_freq: Vec<Vec<u64>>,
    edge_freq: Vec<HashMap<(BlockId, BlockId), u64>>,
    dyn_edges: u64,
}

impl EdgeProfile {
    /// Execution frequency of `block` in `proc`.
    pub fn block_freq(&self, proc: ProcId, block: BlockId) -> u64 {
        self.block_freq[proc.index()][block.index()]
    }

    /// Traversal frequency of the edge `from → to` in `proc`.
    pub fn edge_freq(&self, proc: ProcId, from: BlockId, to: BlockId) -> u64 {
        self.edge_freq[proc.index()]
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }

    /// All outgoing edges of `from` with non-zero frequency, unordered.
    pub fn out_edges(&self, proc: ProcId, from: BlockId) -> Vec<(BlockId, u64)> {
        self.edge_freq[proc.index()]
            .iter()
            .filter(|((a, _), _)| *a == from)
            .map(|((_, b), f)| (*b, *f))
            .collect()
    }

    /// All incoming edges of `to` with non-zero frequency, unordered.
    pub fn in_edges(&self, proc: ProcId, to: BlockId) -> Vec<(BlockId, u64)> {
        self.edge_freq[proc.index()]
            .iter()
            .filter(|((_, b), _)| *b == to)
            .map(|((a, _), f)| (*a, *f))
            .collect()
    }

    /// The most frequent successor of `from` among actual CFG successors,
    /// with its frequency (ties broken toward the smaller block id for
    /// determinism). Returns `None` when no outgoing edge executed.
    pub fn most_likely_successor(&self, proc: ProcId, from: BlockId) -> Option<(BlockId, u64)> {
        let mut best: Option<(BlockId, u64)> = None;
        for (b, f) in self.out_edges(proc, from) {
            best = Some(match best {
                None => (b, f),
                Some((bb, bf)) => {
                    if f > bf || (f == bf && b < bb) {
                        (b, f)
                    } else {
                        (bb, bf)
                    }
                }
            });
        }
        best
    }

    /// The most frequent predecessor of `to`, with its frequency.
    pub fn most_likely_predecessor(&self, proc: ProcId, to: BlockId) -> Option<(BlockId, u64)> {
        let mut best: Option<(BlockId, u64)> = None;
        for (b, f) in self.in_edges(proc, to) {
            best = Some(match best {
                None => (b, f),
                Some((bb, bf)) => {
                    if f > bf || (f == bf && b < bb) {
                        (b, f)
                    } else {
                        (bb, bf)
                    }
                }
            });
        }
        best
    }

    /// Blocks of `proc` sorted by descending frequency (then ascending id),
    /// excluding never-executed blocks.
    pub fn blocks_by_freq(&self, proc: ProcId) -> Vec<(BlockId, u64)> {
        let mut v: Vec<(BlockId, u64)> = self.block_freq[proc.index()]
            .iter()
            .enumerate()
            .filter(|(_, f)| **f > 0)
            .map(|(i, f)| (BlockId::new(i as u32), *f))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total dynamic intra-procedural edge events observed.
    pub fn dyn_edges(&self) -> u64 {
        self.dyn_edges
    }

    /// Number of procedures covered.
    pub fn num_procs(&self) -> usize {
        self.block_freq.len()
    }

    /// Number of blocks tracked for `proc`.
    pub fn num_blocks(&self, proc: ProcId) -> usize {
        self.block_freq[proc.index()].len()
    }

    /// Iterates all edges of `proc` with non-zero frequency.
    pub fn iter_edges(&self, proc: ProcId) -> impl Iterator<Item = ((BlockId, BlockId), u64)> + '_ {
        self.edge_freq[proc.index()].iter().map(|(&k, &v)| (k, v))
    }

    /// Records profile summary metrics into `obs`: total dynamic edge
    /// events and procedures covered, as `profile.edge.*` counters.
    pub fn record_metrics(&self, obs: &pps_obs::Obs) {
        obs.counter("profile.edge.dyn_edges", self.dyn_edges);
        obs.counter("profile.edge.procs", self.num_procs() as u64);
    }

    /// Reconstructs a profile from raw counts (profile deserialization).
    pub fn from_counts(
        block_freq: Vec<Vec<u64>>,
        edge_freq: Vec<HashMap<(BlockId, BlockId), u64>>,
    ) -> EdgeProfile {
        let dyn_edges = edge_freq.iter().flat_map(|m| m.values()).sum();
        EdgeProfile { block_freq, edge_freq, dyn_edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand};

    /// Loop running `n` iterations with a conditional inside that is taken
    /// when `i % 4 != 3` (the TTTF pattern of the `alt` microbenchmark).
    fn alt_like(n: i64) -> (pps_ir::Program, Vec<BlockId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let left = f.new_block();
        let right = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 4i64);
        f.alu(AluOp::CmpNe, c, m, 3i64);
        f.branch(c, left, right);
        f.switch_to(left);
        f.jump(latch);
        f.switch_to(right);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        let blocks = vec![
            BlockId::new(0),
            head,
            left,
            right,
            latch,
            exit,
        ];
        (pb.finish(main), blocks)
    }

    #[test]
    fn edge_counts_match_loop_structure() {
        let (p, b) = alt_like(8);
        let mut prof = EdgeProfiler::new(&p);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let e = prof.finish();
        let main = p.entry;
        let (entry, head, left, right, latch, exit) = (b[0], b[1], b[2], b[3], b[4], b[5]);
        assert_eq!(e.block_freq(main, head), 8);
        assert_eq!(e.block_freq(main, left), 6, "TTTF pattern: 6 of 8 taken");
        assert_eq!(e.block_freq(main, right), 2);
        assert_eq!(e.edge_freq(main, entry, head), 1);
        assert_eq!(e.edge_freq(main, head, left), 6);
        assert_eq!(e.edge_freq(main, head, right), 2);
        assert_eq!(e.edge_freq(main, latch, head), 7);
        assert_eq!(e.edge_freq(main, latch, exit), 1);
        assert_eq!(e.most_likely_successor(main, head), Some((left, 6)));
        assert_eq!(e.most_likely_predecessor(main, head), Some((latch, 7)));
    }

    #[test]
    fn blocks_by_freq_is_sorted() {
        let (p, _) = alt_like(8);
        let mut prof = EdgeProfiler::new(&p);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let e = prof.finish();
        let v = e.blocks_by_freq(p.entry);
        for w in v.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(v.iter().all(|(_, f)| *f > 0));
    }

    #[test]
    fn unexecuted_edges_are_zero() {
        let (p, b) = alt_like(8);
        let mut prof = EdgeProfiler::new(&p);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let e = prof.finish();
        assert_eq!(e.edge_freq(p.entry, b[2], b[3]), 0);
        assert_eq!(e.most_likely_successor(p.entry, b[5]), None);
    }
}
