//! Static branch prediction from profiles — the companion application of
//! path profiles (Young & Smith, ASPLOS 1994, cited as [20] and the origin
//! of the `corr` microbenchmark).
//!
//! Two predictors over the same training profile:
//!
//! - [`EdgePredictor`]: classical profile-guided prediction — each branch
//!   is statically predicted in its majority direction.
//! - [`PathPredictor`]: static *correlated* prediction — the prediction is
//!   keyed by the path context (the last `k` blocks) leading to the
//!   branch, falling back to shorter contexts and finally to the edge
//!   majority. Correlated branches (whose direction is determined by how
//!   control arrived) become perfectly predictable.
//!
//! [`evaluate`] replays a program against a predictor and reports the
//! misprediction rate, enabling the edge-vs-path comparison on a testing
//! input.

use crate::edge::EdgeProfile;
use crate::path::PathProfile;
use pps_ir::interp::{ExecConfig, ExecError};
use pps_ir::Exec;
use pps_ir::{BlockId, ProcId, Program, TraceSink};
use std::collections::HashMap;

/// A static branch predictor: given where execution is (and optionally how
/// it got there), predict the next block.
pub trait Predictor {
    /// Predicts the successor of `block` given the path `context` (the
    /// blocks executed before it, oldest first, ending with `block`).
    fn predict(&self, proc: ProcId, context: &[BlockId], block: BlockId) -> Option<BlockId>;
}

/// Majority-direction prediction from an edge profile.
#[derive(Debug, Clone)]
pub struct EdgePredictor {
    majority: Vec<HashMap<BlockId, BlockId>>,
}

impl EdgePredictor {
    /// Builds the predictor from a training edge profile.
    pub fn from_profile(program: &Program, profile: &EdgeProfile) -> Self {
        let mut majority = Vec::with_capacity(program.procs.len());
        for (pid, proc) in program.iter_procs() {
            let mut m = HashMap::new();
            for (b, _) in proc.iter_blocks() {
                if let Some((succ, _)) = profile.most_likely_successor(pid, b) {
                    m.insert(b, succ);
                }
            }
            majority.push(m);
        }
        EdgePredictor { majority }
    }
}

impl Predictor for EdgePredictor {
    fn predict(&self, proc: ProcId, _context: &[BlockId], block: BlockId) -> Option<BlockId> {
        self.majority[proc.index()].get(&block).copied()
    }
}

/// Path-context (correlated) prediction from a general path profile.
///
/// For each branch, the prediction table maps the last `k` blocks of
/// context to the majority successor observed *after that context* in the
/// training profile; shorter suffixes back each context off, and the
/// 1-block context is the edge majority.
#[derive(Debug, Clone)]
pub struct PathPredictor<'p> {
    program: &'p Program,
    profile: &'p PathProfile,
    /// Maximum context length in blocks (including the branch block).
    context: usize,
}

impl<'p> PathPredictor<'p> {
    /// Builds the predictor over a training path profile with contexts of
    /// up to `context` blocks.
    pub fn new(program: &'p Program, profile: &'p PathProfile, context: usize) -> Self {
        PathPredictor { program, profile, context: context.max(1) }
    }
}

impl Predictor for PathPredictor<'_> {
    fn predict(&self, proc: ProcId, context: &[BlockId], block: BlockId) -> Option<BlockId> {
        let proc_body = self.program.proc(proc);
        let succs = proc_body.block(block).term.successors();
        if succs.len() == 1 {
            return Some(succs[0]);
        }
        // Longest-context-first back-off.
        let avail = context.len().min(self.context.saturating_sub(1));
        let mut buf: Vec<BlockId> = Vec::with_capacity(avail + 2);
        for ctx_len in (0..=avail).rev() {
            buf.clear();
            buf.extend_from_slice(&context[context.len() - ctx_len..]);
            buf.push(block);
            let mut best: Option<(BlockId, u64)> = None;
            for &s in &succs {
                buf.push(s);
                let q = self.profile.trim_to_depth(proc_body, &buf);
                let f = self.profile.freq(proc, q);
                buf.pop();
                if f == 0 {
                    continue;
                }
                best = Some(match best {
                    None => (s, f),
                    Some((bb, bf)) => {
                        if f > bf || (f == bf && s < bb) {
                            (s, f)
                        } else {
                            (bb, bf)
                        }
                    }
                });
            }
            if let Some((s, _)) = best {
                return Some(s);
            }
        }
        None
    }
}

/// Branch-prediction evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Conditional/multiway branch executions evaluated.
    pub branches: u64,
    /// Mispredictions (including unpredicted branches).
    pub mispredicts: u64,
}

impl PredictStats {
    /// Misprediction rate.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

struct EvalSink<'a, P: Predictor> {
    predictor: &'a P,
    program: &'a Program,
    /// Per-activation context windows (last `context` blocks).
    stacks: Vec<Vec<Vec<BlockId>>>,
    context: usize,
    stats: PredictStats,
}

impl<P: Predictor> TraceSink for EvalSink<'_, P> {
    fn enter_proc(&mut self, proc: ProcId) {
        self.stacks[proc.index()].push(Vec::new());
    }

    fn exit_proc(&mut self, proc: ProcId) {
        self.stacks[proc.index()].pop();
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let window = self.stacks[proc.index()].last_mut().expect("activation");
        if let Some(&prev) = window.last() {
            // The transfer prev -> block resolves prev's terminator; score
            // it if it was a counted branch.
            if self.program.proc(proc).block(prev).term.is_counted_branch() {
                self.stats.branches += 1;
                let ctx = &window[..window.len() - 1];
                let predicted = self.predictor.predict(proc, ctx, prev);
                if predicted != Some(block) {
                    self.stats.mispredicts += 1;
                }
            }
        }
        window.push(block);
        if window.len() > self.context + 1 {
            window.remove(0);
        }
    }
}

/// Replays `program` on `args`, scoring `predictor` on every executed
/// conditional/multiway branch. `context` bounds the history given to the
/// predictor.
///
/// # Errors
/// Propagates interpreter errors.
pub fn evaluate<P: Predictor>(
    program: &Program,
    predictor: &P,
    context: usize,
    args: &[i64],
) -> Result<PredictStats, ExecError> {
    let mut sink = EvalSink {
        predictor,
        program,
        stacks: program.procs.iter().map(|_| Vec::new()).collect(),
        context,
        stats: PredictStats::default(),
    };
    Exec::new(program, ExecConfig::default()).run_traced(args, &mut sink)?;
    Ok(sink.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::Interp;
    use crate::{EdgeProfiler, PathProfiler};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, Operand};

    /// The correlated-branch shape: first branch alternates; second branch
    /// copies the first. Edge prediction caps at ~50% on the second branch;
    /// path-context prediction gets it exactly.
    fn corr(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let x = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let a1 = f.new_block();
        let a2 = f.new_block();
        let mid = f.new_block();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 2i64);
        f.branch(m, a1, a2);
        f.switch_to(a1);
        f.mov(x, 1i64);
        f.jump(mid);
        f.switch_to(a2);
        f.mov(x, 0i64);
        f.jump(mid);
        f.switch_to(mid);
        f.branch(x, b1, b2);
        f.switch_to(b1);
        f.jump(latch);
        f.switch_to(b2);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn path_context_prediction_beats_edge_on_correlated_branches() {
        let p = corr(400);
        let interp = Interp::new(&p, ExecConfig::default());
        let mut ep = EdgeProfiler::new(&p);
        interp.run_traced(&[], &mut ep).unwrap();
        let edge = ep.finish();
        let mut pp = PathProfiler::new(&p, 15);
        interp.run_traced(&[], &mut pp).unwrap();
        let path = pp.finish();

        let edge_pred = EdgePredictor::from_profile(&p, &edge);
        let e = evaluate(&p, &edge_pred, 8, &[]).unwrap();
        let path_pred = PathPredictor::new(&p, &path, 8);
        let pa = evaluate(&p, &path_pred, 8, &[]).unwrap();

        // Three branches per iteration: first (50/50 alternating — but
        // alternation is itself path-visible), second (fully correlated),
        // loop (always taken until the end).
        assert!(e.miss_rate() > 0.25, "edge prediction stuck: {:.3}", e.miss_rate());
        assert!(
            pa.miss_rate() < 0.02,
            "path context resolves the correlation: {:.3}",
            pa.miss_rate()
        );
        assert_eq!(e.branches, pa.branches);
    }

    #[test]
    fn single_successor_blocks_always_predicted() {
        let p = corr(10);
        let interp = Interp::new(&p, ExecConfig::default());
        let mut pp = PathProfiler::new(&p, 15);
        interp.run_traced(&[], &mut pp).unwrap();
        let path = pp.finish();
        let pred = PathPredictor::new(&p, &path, 4);
        // Jumps are not counted branches, so stats only cover real
        // branches; miss rate is well-defined and bounded.
        let s = evaluate(&p, &pred, 4, &[]).unwrap();
        assert!(s.branches > 0);
        assert!(s.miss_rate() <= 1.0);
    }
}
