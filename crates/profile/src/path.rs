//! General path profiling (the paper's §2.2 and §3.1).
//!
//! A *general path* is any contiguous sequence of basic blocks containing at
//! most `depth` conditional or multiway branches (the paper uses 15;
//! unconditional jumps do not count). Profiling observes a sliding window of
//! the dynamic block trace: at every block-entry event, the *maximal* window
//! ending at that event is counted once.
//!
//! Because every trace position ends exactly one maximal window, the
//! frequency of an arbitrary sequence `t` (within the depth bound) is the
//! sum of the counts of all maximal windows having `t` as a suffix. Windows
//! are stored in a trie keyed by the *reversed* block sequence, which turns
//! that suffix-sum into a subtree sum.
//!
//! The paper's two efficiency observations are implemented directly:
//!
//! 1. *"The number of successors to a path is small … the only possible next
//!    path will be either BCDX or BCDY"* — a lazily populated transition
//!    cache maps `(window-node, next-block)` to the successor window-node,
//!    so steady-state profiling work is O(1) per dynamic edge.
//! 2. *"We do not expect to execute all possible paths … lazily explore the
//!    space of possible paths"* — trie nodes are created only when their
//!    path is first observed, giving O(n_paths + n_edges) total work.

use pps_ir::{BlockId, ProcId, Program, TraceSink};
use std::collections::VecDeque;

/// The paper's path-length limit: up to 15 conditional or multiway branches.
pub const DEFAULT_PATH_DEPTH: usize = 15;

type NodeId = u32;
const ROOT: NodeId = 0;

/// One trie node. The trie is keyed by reversed block sequences: the node
/// for path `b1 … bk` is reached from the root via `bk, bk-1, …, b1`.
/// Occurrence counts live in a separate dense array (`ProcTable::counts`,
/// `Trie::counts`): the per-block-event hot path only bumps a `u64`, without
/// dragging each node's child map into cache.
///
/// Children are a linear-scanned association list, not a hash map: a path
/// node's fan-out is bounded by its block's successor count (the paper's
/// "the number of successors to a path is small"), and profiles at scale
/// allocate millions of nodes — one `HashMap` each was measurable in both
/// time and allocator traffic.
#[derive(Debug, Clone)]
struct Node {
    /// `(next-older block, child)` pairs, in first-observed order.
    children: Vec<(BlockId, NodeId)>,
}

impl Node {
    fn new() -> Self {
        Node { children: Vec::new() }
    }

    fn child(&self, block: BlockId) -> Option<NodeId> {
        self.children.iter().find(|(b, _)| *b == block).map(|&(_, id)| id)
    }
}

/// The trie structure plus its per-node maximal-window counts.
#[derive(Debug, Default)]
struct Trie {
    nodes: Vec<Node>,
    /// `counts[n]` = times node `n`'s path occurred as a maximal window.
    counts: Vec<u64>,
}

impl Trie {
    fn new() -> Self {
        Trie { nodes: vec![Node::new()], counts: vec![0] }
    }

    /// Finds or creates the node for `blocks` (given oldest-first;
    /// interned newest-first).
    fn intern(&mut self, blocks: &VecDeque<BlockId>) -> NodeId {
        let mut cur = ROOT;
        for &b in blocks.iter().rev() {
            cur = match self.nodes[cur as usize].child(b) {
                Some(id) => id,
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes[cur as usize].children.push((b, id));
                    self.nodes.push(Node::new());
                    self.counts.push(0);
                    id
                }
            };
        }
        cur
    }
}

/// Open-addressing memo for the paper's successor-path pointers:
/// `(window node, entered block)` packed into a `u64` key, Fibonacci-hashed,
/// linear probing. This sits on the per-block-event hot path; a `HashMap`
/// here (SipHash per event) dominated whole-pipeline profiling cost.
#[derive(Debug, Default)]
struct TransCache {
    /// Packed keys; `u64::MAX` marks an empty slot.
    keys: Vec<u64>,
    vals: Vec<NodeId>,
    len: usize,
}

const EMPTY_KEY: u64 = u64::MAX;

impl TransCache {
    #[inline]
    fn pack(node: NodeId, block: BlockId) -> u64 {
        (u64::from(node) << 32) | u64::from(block.index() as u32)
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the top bits.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (self.keys.len() - 1)
    }

    #[inline]
    fn get(&self, node: NodeId, block: BlockId) -> Option<NodeId> {
        if self.keys.is_empty() {
            return None;
        }
        let key = Self::pack(node, block);
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            match self.keys[i] {
                k if k == key => return Some(self.vals[i]),
                EMPTY_KEY => return None,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts a key known to be absent (callers probe with `get` first).
    fn insert(&mut self, node: NodeId, block: BlockId, val: NodeId) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let key = Self::pack(node, block);
        debug_assert_ne!(key, EMPTY_KEY);
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        while self.keys[i] != EMPTY_KEY {
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                let mask = self.keys.len() - 1;
                let mut i = self.slot_of(k);
                while self.keys[i] != EMPTY_KEY {
                    i = (i + 1) & mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
                self.len += 1;
            }
        }
    }
}

/// Per-procedure profiling state.
#[derive(Debug)]
struct ProcTable {
    trie: Trie,
    /// Paper's successor-path pointers: (current window node, entered block)
    /// → next window node.
    transitions: TransCache,
    /// One live window per activation (stack handles recursion).
    activations: Vec<Window>,
    /// Retired windows whose buffers are reused by the next activation, so
    /// call-heavy traces don't allocate a deque per dynamic call.
    free_windows: Vec<Window>,
    /// Whether each block's terminator is a counted branch.
    is_branch: Vec<bool>,
    /// Cache statistics: transition-cache misses (new path suffixes built).
    cache_misses: u64,
    /// Cache statistics: transition-cache hits (O(1) steps).
    cache_hits: u64,
}

#[derive(Debug, Clone)]
struct Window {
    /// Blocks currently in the window, oldest first.
    blocks: VecDeque<BlockId>,
    /// Number of counted branches among all blocks except the newest.
    branches: usize,
    /// Trie node of the current window.
    node: NodeId,
}

impl ProcTable {
    fn new(is_branch: Vec<bool>) -> Self {
        ProcTable {
            trie: Trie::new(),
            transitions: TransCache::default(),
            activations: Vec::new(),
            free_windows: Vec::new(),
            is_branch,
            cache_misses: 0,
            cache_hits: 0,
        }
    }

    fn push_activation(&mut self) {
        let win = match self.free_windows.pop() {
            Some(mut w) => {
                w.blocks.clear();
                w.branches = 0;
                w.node = ROOT;
                w
            }
            None => Window { blocks: VecDeque::new(), branches: 0, node: ROOT },
        };
        self.activations.push(win);
    }

    fn pop_activation(&mut self) {
        if let Some(w) = self.activations.pop() {
            self.free_windows.push(w);
        }
    }

    fn on_block(&mut self, depth: usize, block: BlockId) {
        let win = self.activations.last_mut().expect("activation exists");
        // Append the new block; the previously-newest block's terminator has
        // now executed, so it starts counting toward the branch limit.
        if let Some(&last) = win.blocks.back() {
            if self.is_branch[last.index()] {
                win.branches += 1;
            }
        }
        win.blocks.push_back(block);
        // Trim from the front until within the depth bound.
        while win.branches > depth {
            let dropped = win.blocks.pop_front().expect("window non-empty");
            if self.is_branch[dropped.index()] {
                win.branches -= 1;
            }
        }
        // Locate the trie node via the transition cache.
        if let Some(next) = self.transitions.get(win.node, block) {
            self.cache_hits += 1;
            win.node = next;
        } else {
            self.cache_misses += 1;
            let next = self.trie.intern(&win.blocks);
            self.transitions.insert(win.node, block, next);
            win.node = next;
        }
        self.trie.counts[win.node as usize] += 1;
    }
}

/// Live general-path-profile collector.
///
/// Attach to [`Interp::run_traced`](pps_ir::interp::Interp::run_traced),
/// then call [`finish`](Self::finish) to freeze into a queryable
/// [`PathProfile`].
#[derive(Debug)]
pub struct PathProfiler {
    tables: Vec<ProcTable>,
    depth: usize,
}

impl PathProfiler {
    /// Creates a collector for `program` with the given path-length limit
    /// (`depth` counted branches; the paper uses
    /// [`DEFAULT_PATH_DEPTH`] = 15).
    pub fn new(program: &Program, depth: usize) -> Self {
        let tables = program
            .procs
            .iter()
            .map(|p| {
                let is_branch = p
                    .blocks
                    .iter()
                    .map(|b| b.term.is_counted_branch())
                    .collect();
                ProcTable::new(is_branch)
            })
            .collect();
        PathProfiler { tables, depth }
    }

    /// Freezes into a queryable profile, computing subtree sums.
    pub fn finish(self) -> PathProfile {
        let depth = self.depth;
        let procs = self
            .tables
            .into_iter()
            .map(|t| FrozenTable::from_trie(t.trie, t.cache_hits, t.cache_misses))
            .collect();
        PathProfile { procs, depth }
    }
}

impl TraceSink for PathProfiler {
    fn enter_proc(&mut self, proc: ProcId) {
        self.tables[proc.index()].push_activation();
    }

    fn exit_proc(&mut self, proc: ProcId) {
        self.tables[proc.index()].pop_activation();
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let depth = self.depth;
        self.tables[proc.index()].on_block(depth, block);
    }
}

#[derive(Debug, Clone)]
struct FrozenNode {
    count: u64,
    /// Count of this node plus all descendants: the frequency of the
    /// (reversed-keyed) path as a *suffix* of maximal windows — i.e. its
    /// true occurrence frequency.
    subtree: u64,
    children: Vec<(BlockId, NodeId)>,
}

impl FrozenNode {
    fn child(&self, block: BlockId) -> Option<NodeId> {
        self.children.iter().find(|(b, _)| *b == block).map(|&(_, id)| id)
    }
}

#[derive(Debug, Clone)]
struct FrozenTable {
    nodes: Vec<FrozenNode>,
    cache_hits: u64,
    cache_misses: u64,
}

impl FrozenTable {
    fn from_trie(trie: Trie, cache_hits: u64, cache_misses: u64) -> Self {
        let mut frozen: Vec<FrozenNode> = trie
            .nodes
            .into_iter()
            .zip(trie.counts)
            .map(|(n, count)| FrozenNode { count, subtree: count, children: n.children })
            .collect();
        // Children always have larger ids than parents (created later), so a
        // reverse scan accumulates subtree sums bottom-up.
        for i in (0..frozen.len()).rev() {
            let kids: Vec<NodeId> = frozen[i].children.iter().map(|&(_, k)| k).collect();
            let mut sum = frozen[i].count;
            for k in kids {
                sum += frozen[k as usize].subtree;
            }
            frozen[i].subtree = sum;
        }
        FrozenTable { nodes: frozen, cache_hits, cache_misses }
    }

    fn lookup(&self, seq: &[BlockId]) -> Option<&FrozenNode> {
        let mut cur = ROOT;
        for &b in seq.iter().rev() {
            cur = self.nodes[cur as usize].child(b)?;
        }
        Some(&self.nodes[cur as usize])
    }
}

/// A frozen, queryable general path profile.
#[derive(Debug, Clone)]
pub struct PathProfile {
    procs: Vec<FrozenTable>,
    depth: usize,
}

impl PathProfile {
    /// The path-length limit (in counted branches) this profile was
    /// collected with.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of procedures covered.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Exact execution frequency of the contiguous block sequence `seq` in
    /// `proc`: the number of times the blocks of `seq` were executed
    /// consecutively within one activation.
    ///
    /// The answer is exact when `seq` is within the profiling depth — i.e.
    /// its first `len-1` blocks contain at most [`depth`](Self::depth)
    /// counted branches. Longer sequences are *undercounted* (the window
    /// never holds them whole); callers should first trim with
    /// [`trim_to_depth`](Self::trim_to_depth).
    pub fn freq(&self, proc: ProcId, seq: &[BlockId]) -> u64 {
        if seq.is_empty() {
            return 0;
        }
        self.procs[proc.index()]
            .lookup(seq)
            .map(|n| n.subtree)
            .unwrap_or(0)
    }

    /// Frequency with which `seq` was executed *and was the end of an
    /// activation-maximal window* — exposed for testing the window
    /// mechanics; most callers want [`freq`](Self::freq).
    pub fn maximal_window_count(&self, proc: ProcId, seq: &[BlockId]) -> u64 {
        self.procs[proc.index()]
            .lookup(seq)
            .map(|n| n.count)
            .unwrap_or(0)
    }

    /// Execution frequency of a single block, derived from the path table
    /// (every entry to `b` ends exactly one maximal window).
    pub fn block_freq(&self, proc: ProcId, block: BlockId) -> u64 {
        self.freq(proc, &[block])
    }

    /// Traversal frequency of edge `from → to`, derived from the path table.
    pub fn edge_freq(&self, proc: ProcId, from: BlockId, to: BlockId) -> u64 {
        self.freq(proc, &[from, to])
    }

    /// Longest suffix of `seq` within the profiling depth for `proc`,
    /// given the procedure body (needed to classify branch blocks).
    ///
    /// This is the "longest suffix … for which we have exact frequencies"
    /// rule the paper's enlarger uses once a superblock outgrows the
    /// profiling depth.
    pub fn trim_to_depth<'s>(&self, proc_body: &pps_ir::Proc, seq: &'s [BlockId]) -> &'s [BlockId] {
        if seq.is_empty() {
            return seq;
        }
        let mut branches = 0;
        // Walk backwards over all blocks except the newest; stop before
        // exceeding the depth.
        let mut start = seq.len() - 1;
        while start > 0 {
            let b = seq[start - 1];
            let counted = proc_body.block(b).term.is_counted_branch();
            if branches + usize::from(counted) > self.depth {
                break;
            }
            branches += usize::from(counted);
            start -= 1;
        }
        &seq[start..]
    }

    /// Number of distinct paths (trie nodes, excluding the root) recorded
    /// for `proc` — the paper's `npaths`.
    pub fn distinct_paths(&self, proc: ProcId) -> usize {
        self.procs[proc.index()].nodes.len().saturating_sub(1)
    }

    /// Transition-cache statistics `(hits, misses)` for `proc`; the paper's
    /// O(1)-amortized claim corresponds to hits ≫ misses.
    pub fn cache_stats(&self, proc: ProcId) -> (u64, u64) {
        let t = &self.procs[proc.index()];
        (t.cache_hits, t.cache_misses)
    }

    /// Records profile summary metrics into `obs`: distinct paths and
    /// transition-cache totals across all procedures, plus the profiling
    /// depth, as `profile.path.*` counters.
    pub fn record_metrics(&self, obs: &pps_obs::Obs) {
        let mut paths = 0u64;
        let (mut hits, mut misses) = (0u64, 0u64);
        for pi in 0..self.num_procs() {
            let pid = ProcId::new(pi as u32);
            paths += self.distinct_paths(pid) as u64;
            let (h, m) = self.cache_stats(pid);
            hits += h;
            misses += m;
        }
        obs.counter("profile.path.distinct_paths", paths);
        obs.counter("profile.path.cache_hits", hits);
        obs.counter("profile.path.cache_misses", misses);
        obs.counter("profile.path.depth", self.depth as u64);
    }

    /// Enumerates every recorded maximal window of `proc` with its count
    /// (counts > 0 only), in an unspecified but deterministic order. The
    /// profile can be reconstructed exactly from these via
    /// [`from_windows`](Self::from_windows) — the basis of profile
    /// serialization.
    pub fn iter_maximal_windows(&self, proc: ProcId) -> Vec<(Vec<BlockId>, u64)> {
        let table = &self.procs[proc.index()];
        let mut out = Vec::new();
        // DFS from the root; the trie is keyed newest-first, so the
        // accumulated key must be reversed to yield the window.
        let mut stack: Vec<(NodeId, Vec<BlockId>)> = vec![(ROOT, Vec::new())];
        while let Some((node, key)) = stack.pop() {
            let n = &table.nodes[node as usize];
            if n.count > 0 {
                let mut window = key.clone();
                window.reverse();
                out.push((window, n.count));
            }
            let mut kids: Vec<(BlockId, NodeId)> = n.children.clone();
            kids.sort_by_key(|(b, _)| *b);
            for (b, child) in kids {
                let mut k = key.clone();
                k.push(b);
                stack.push((child, k));
            }
        }
        out
    }

    /// Reconstructs a profile from per-procedure maximal-window counts (as
    /// produced by [`iter_maximal_windows`](Self::iter_maximal_windows)).
    pub fn from_windows(depth: usize, per_proc: Vec<Vec<(Vec<BlockId>, u64)>>) -> PathProfile {
        let procs = per_proc
            .into_iter()
            .map(|windows| {
                let mut trie = Trie::new();
                for (window, count) in windows {
                    let deque: VecDeque<BlockId> = window.into_iter().collect();
                    let id = trie.intern(&deque);
                    trie.counts[id as usize] += count;
                }
                FrozenTable::from_trie(trie, 0, 0)
            })
            .collect();
        PathProfile { procs, depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program, Reg};

    /// Figure-1-shaped CFG: A branches to B or X; B branches to C or Y;
    /// all paths rejoin and loop `n` times. The branch pattern is chosen by
    /// two period-driven conditions so path frequencies are predictable.
    ///
    /// Returns (program, [A, B, C, X, Y, latch]).
    fn figure1(n: i64, via_x_period: i64, via_y_period: i64) -> (Program, Vec<BlockId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let a = f.new_block();
        let b = f.new_block();
        let cc = f.new_block();
        let x = f.new_block();
        let y = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(a);
        f.switch_to(a);
        f.alu(AluOp::Rem, m, i, via_x_period);
        f.alu(AluOp::CmpEq, c, m, 0i64);
        f.branch(c, x, b); // sometimes go via X
        f.switch_to(x);
        f.jump(b);
        f.switch_to(b);
        f.alu(AluOp::Rem, m, i, via_y_period);
        f.alu(AluOp::CmpEq, c, m, 1i64);
        f.branch(c, y, cc); // sometimes exit via Y
        f.switch_to(y);
        f.jump(latch);
        f.switch_to(cc);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, a, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        (pb.finish(main), vec![a, b, cc, x, y, latch])
    }

    fn profile(p: &Program, depth: usize) -> PathProfile {
        let mut prof = PathProfiler::new(p, depth);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        prof.finish()
    }

    #[test]
    fn path_freqs_disambiguate_figure1() {
        // 12 iterations; i%3==0 -> via X (4 times), i%4==1 -> via Y (3
        // times). Paths ABC and ABY (A directly to B) have exact counts that
        // edge profiles could only bound.
        let (p, ids) = figure1(12, 3, 4);
        let prof = profile(&p, 15);
        let main = p.entry;
        let (a, b, c, x, y, _latch) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        // i in 0..12: via X at i=0,3,6,9; via Y at i=1,5,9.
        assert_eq!(prof.freq(main, &[a, x, b]), 4);
        assert_eq!(prof.freq(main, &[a, b]), 8);
        // ABY: A->B directly (not via X) and then Y: i=1,5 (i=9 goes via X).
        assert_eq!(prof.freq(main, &[a, b, y]), 2);
        assert_eq!(prof.freq(main, &[a, b, c]), 6);
        // Consistency: f(AB) = f(ABY) + f(ABC).
        assert_eq!(
            prof.freq(main, &[a, b]),
            prof.freq(main, &[a, b, y]) + prof.freq(main, &[a, b, c])
        );
        // Block frequency derivation.
        assert_eq!(prof.block_freq(main, a), 12);
        assert_eq!(prof.block_freq(main, b), 12);
        assert_eq!(prof.block_freq(main, y), 3);
        // Edge frequency derivation.
        assert_eq!(prof.edge_freq(main, a, x), 4);
        assert_eq!(prof.edge_freq(main, b, y), 3);
    }

    #[test]
    fn paths_can_span_loop_iterations() {
        // General paths include back edges: the sequence latch->A across
        // iterations must have a frequency.
        let (p, ids) = figure1(12, 3, 4);
        let prof = profile(&p, 15);
        let main = p.entry;
        let (a, latch) = (ids[0], ids[5]);
        assert_eq!(prof.freq(main, &[latch, a]), 11);
        // Two consecutive full iterations both going A->B->C.
        let (b, c) = (ids[1], ids[2]);
        let two_iters = [a, b, c, latch, a, b, c];
        assert!(prof.freq(main, &two_iters) > 0);
    }

    #[test]
    fn depth_zero_only_records_single_branchless_runs() {
        // With depth 0, a window may contain at most 0 executed branches
        // among its non-final blocks.
        let (p, ids) = figure1(4, 2, 2);
        let prof = profile(&p, 0);
        let main = p.entry;
        let (a, x, b) = (ids[0], ids[3], ids[1]);
        // a ends in a branch, so [a, x] exceeds depth 0... but x is entered
        // after a's branch executes; window trims to [x]. However [x, b]
        // holds: x ends in an unconditional jump (not counted).
        assert_eq!(prof.freq(main, &[a, x]), 0);
        assert!(prof.freq(main, &[x, b]) > 0);
    }

    #[test]
    fn brute_force_window_equivalence() {
        use pps_ir::VecSink;
        // Record the raw trace, recompute maximal windows naively, and
        // compare every recorded path's frequency.
        let (p, _) = figure1(10, 3, 5);
        for depth in [0, 1, 2, 15] {
            let prof = profile(&p, depth);
            let mut sink = VecSink::new();
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut sink)
                .unwrap();
            let main = p.entry;
            let proc = p.proc(main);
            let blocks: Vec<BlockId> = sink.blocks().iter().map(|&(_, b)| b).collect();
            // Naive: for each position, compute the maximal window ending
            // there; then count every subsequence query via suffix matching.
            let is_branch = |b: BlockId| proc.block(b).term.is_counted_branch();
            let mut windows: Vec<Vec<BlockId>> = Vec::new();
            for end in 0..blocks.len() {
                let mut start = end;
                let mut branches = 0;
                while start > 0 {
                    let b = blocks[start - 1];
                    if branches + usize::from(is_branch(b)) > depth {
                        break;
                    }
                    branches += usize::from(is_branch(b));
                    start -= 1;
                }
                windows.push(blocks[start..=end].to_vec());
            }
            // Check freq() for a set of probe sequences derived from windows.
            for probe in windows.iter().take(200) {
                let expected = windows
                    .iter()
                    .filter(|w| w.len() >= probe.len() && w[w.len() - probe.len()..] == probe[..])
                    .count() as u64;
                assert_eq!(
                    prof.freq(main, probe),
                    expected,
                    "depth={depth} probe={probe:?}"
                );
            }
        }
    }

    #[test]
    fn trim_to_depth_respects_branch_counts() {
        let (p, ids) = figure1(4, 2, 2);
        let prof = profile(&p, 1);
        let proc = p.proc(p.entry);
        let (a, b, c, latch) = (ids[0], ids[1], ids[2], ids[5]);
        // Sequence with 3 branch blocks among non-final: a, b, latch.
        let seq = [a, b, c, latch, a];
        let trimmed = prof.trim_to_depth(proc, &seq);
        // Depth 1 allows only one counted-branch among non-final blocks:
        // walking back from `a`: latch is a branch (1), c is a jump (ok),
        // b is a branch (would be 2) -> stop. Suffix = [c, latch, a].
        assert_eq!(trimmed, &[c, latch, a]);
    }

    #[test]
    fn cache_hits_dominate_on_repetitive_traces() {
        let (p, _) = figure1(3000, 3, 4);
        let prof = profile(&p, 15);
        let (hits, misses) = prof.cache_stats(p.entry);
        assert!(hits > misses * 50, "hits={hits} misses={misses}");
        assert!(prof.distinct_paths(p.entry) > 0);
    }

    #[test]
    fn recursion_keeps_windows_separate() {
        // f(n): if n > 0 { f(n-1) } — the path window of the outer
        // activation must not absorb inner-activation blocks.
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare_proc("f", 1);
        let mut g = pb.begin_declared(fid);
        let n = Reg::new(0);
        let cnd = g.reg();
        let rec = g.new_block();
        let done = g.new_block();
        g.alu(AluOp::CmpLt, cnd, Operand::Imm(0), Operand::Reg(n));
        g.branch(cnd, rec, done);
        g.switch_to(rec);
        let m = g.reg();
        g.alu(AluOp::Sub, m, n, 1i64);
        g.call(fid, vec![Operand::Reg(m)], None);
        g.jump(done);
        g.switch_to(done);
        g.ret(None);
        g.finish();
        let mut f = pb.begin_proc("main", 0);
        f.call(fid, vec![Operand::Imm(5)], None);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);

        let prof = profile(&p, 15);
        let entry = BlockId::new(0);
        // Six activations of f, each entering its entry block exactly once.
        assert_eq!(prof.block_freq(fid, entry), 6);
        // Within one activation the entry never repeats: path [entry, entry]
        // never occurs even though entries are adjacent in the global trace.
        assert_eq!(prof.freq(fid, &[entry, entry]), 0);
    }
}
