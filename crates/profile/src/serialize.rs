//! Profile serialization: save collected profiles as text and reload them
//! later, so expensive training runs need not be repeated per scheme.
//!
//! Formats are line-oriented and diff-friendly:
//!
//! ```text
//! pps-edge-profile v1
//! proc 0 blocks 5
//! block 1 12000
//! edge 1 2 8000
//! ...
//! ```
//!
//! ```text
//! pps-path-profile v1 depth 15
//! proc 0
//! window 8000 1 2 4
//! ...
//! ```

use crate::edge::EdgeProfile;
use crate::kpath::KPathProfile;
use crate::path::PathProfile;
use pps_ir::{BlockId, ProcId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A profile-deserialization failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// Offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ProfileParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ProfileParseError> {
    Err(ProfileParseError { line, message: message.into() })
}

/// Serializes an edge profile.
pub fn edge_to_text(profile: &EdgeProfile) -> String {
    let mut s = String::from("pps-edge-profile v1\n");
    for pi in 0..profile.num_procs() {
        let pid = ProcId::new(pi as u32);
        let _ = writeln!(s, "proc {pi} blocks {}", profile.num_blocks(pid));
        for b in 0..profile.num_blocks(pid) {
            let f = profile.block_freq(pid, BlockId::new(b as u32));
            if f > 0 {
                let _ = writeln!(s, "block {b} {f}");
            }
        }
        let mut edges: Vec<((BlockId, BlockId), u64)> = profile.iter_edges(pid).collect();
        edges.sort();
        for ((a, b), f) in edges {
            let _ = writeln!(s, "edge {} {} {f}", a.index(), b.index());
        }
    }
    s
}

/// Deserializes an edge profile.
///
/// # Errors
/// Returns a [`ProfileParseError`] on malformed input.
pub fn edge_from_text(text: &str) -> Result<EdgeProfile, ProfileParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let Some((ln, header)) = lines.next() else {
        return err(0, "empty input");
    };
    if header != "pps-edge-profile v1" {
        return err(ln, format!("bad header `{header}`"));
    }
    let mut block_freq: Vec<Vec<u64>> = Vec::new();
    let mut edge_freq: Vec<HashMap<(BlockId, BlockId), u64>> = Vec::new();
    for (ln, l) in lines {
        if l.is_empty() {
            continue;
        }
        let toks: Vec<&str> = l.split_whitespace().collect();
        match toks.as_slice() {
            ["proc", pi, "blocks", n] => {
                let pi: usize = pi.parse().map_err(|_| ProfileParseError {
                    line: ln,
                    message: "bad proc index".into(),
                })?;
                if pi != block_freq.len() {
                    return err(ln, "procs must appear in order");
                }
                let n: usize = n
                    .parse()
                    .map_err(|_| ProfileParseError { line: ln, message: "bad block count".into() })?;
                block_freq.push(vec![0; n]);
                edge_freq.push(HashMap::new());
            }
            ["block", b, f] => {
                let (Some(cur), Ok(b), Ok(f)) =
                    (block_freq.last_mut(), b.parse::<usize>(), f.parse::<u64>())
                else {
                    return err(ln, "bad block line");
                };
                if b >= cur.len() {
                    return err(ln, "block index out of range");
                }
                cur[b] = f;
            }
            ["edge", a, b, f] => {
                let (Some(cur), Ok(a), Ok(b), Ok(f)) = (
                    edge_freq.last_mut(),
                    a.parse::<u32>(),
                    b.parse::<u32>(),
                    f.parse::<u64>(),
                ) else {
                    return err(ln, "bad edge line");
                };
                cur.insert((BlockId::new(a), BlockId::new(b)), f);
            }
            _ => return err(ln, format!("unrecognized line `{l}`")),
        }
    }
    Ok(EdgeProfile::from_counts(block_freq, edge_freq))
}

/// Serializes a general path profile as its maximal-window counts.
pub fn path_to_text(profile: &PathProfile) -> String {
    let mut s = format!("pps-path-profile v1 depth {}\n", profile.depth());
    for pi in 0..profile.num_procs() {
        let pid = ProcId::new(pi as u32);
        let _ = writeln!(s, "proc {pi}");
        let mut windows = profile.iter_maximal_windows(pid);
        windows.sort();
        for (window, count) in windows {
            let _ = write!(s, "window {count}");
            for b in window {
                let _ = write!(s, " {}", b.index());
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Deserializes a general path profile.
///
/// # Errors
/// Returns a [`ProfileParseError`] on malformed input.
pub fn path_from_text(text: &str) -> Result<PathProfile, ProfileParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let Some((ln, header)) = lines.next() else {
        return err(0, "empty input");
    };
    let depth = header
        .strip_prefix("pps-path-profile v1 depth ")
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or(ProfileParseError { line: ln, message: format!("bad header `{header}`") })?;
    let mut per_proc: Vec<Vec<(Vec<BlockId>, u64)>> = Vec::new();
    for (ln, l) in lines {
        if l.is_empty() {
            continue;
        }
        if let Some(pi) = l.strip_prefix("proc ") {
            let pi: usize = pi
                .parse()
                .map_err(|_| ProfileParseError { line: ln, message: "bad proc index".into() })?;
            if pi != per_proc.len() {
                return err(ln, "procs must appear in order");
            }
            per_proc.push(Vec::new());
        } else if let Some(rest) = l.strip_prefix("window ") {
            let Some(cur) = per_proc.last_mut() else {
                return err(ln, "window before proc");
            };
            let mut toks = rest.split_whitespace();
            let count: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(ProfileParseError { line: ln, message: "bad window count".into() })?;
            let mut window = Vec::new();
            for t in toks {
                let b: u32 = t
                    .parse()
                    .map_err(|_| ProfileParseError { line: ln, message: "bad block id".into() })?;
                window.push(BlockId::new(b));
            }
            if window.is_empty() {
                return err(ln, "empty window");
            }
            cur.push((window, count));
        } else {
            return err(ln, format!("unrecognized line `{l}`"));
        }
    }
    Ok(PathProfile::from_windows(depth, per_proc))
}

/// Serializes a k-iteration path profile as its completed-path counts.
/// Paths are emitted sorted, so the text is canonical: two profiles that
/// answer every query identically serialize to the same bytes.
pub fn kpath_to_text(profile: &KPathProfile) -> String {
    let mut s = format!("pps-kpath-profile v1 k {}\n", profile.k());
    for pi in 0..profile.num_procs() {
        let pid = ProcId::new(pi as u32);
        let _ = writeln!(s, "proc {pi}");
        let mut paths: Vec<(Vec<BlockId>, u64)> = profile
            .iter_paths(pid)
            .map(|(p, c)| (p.to_vec(), c))
            .collect();
        paths.sort();
        for (path, count) in paths {
            let _ = write!(s, "path {count}");
            for b in path {
                let _ = write!(s, " {}", b.index());
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Deserializes a k-iteration path profile.
///
/// # Errors
/// Returns a [`ProfileParseError`] on malformed input.
pub fn kpath_from_text(text: &str) -> Result<KPathProfile, ProfileParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let Some((ln, header)) = lines.next() else {
        return err(0, "empty input");
    };
    let k = header
        .strip_prefix("pps-kpath-profile v1 k ")
        .and_then(|d| d.parse::<usize>().ok())
        .filter(|&k| k >= 1)
        .ok_or(ProfileParseError { line: ln, message: format!("bad header `{header}`") })?;
    let mut per_proc: Vec<Vec<(Vec<BlockId>, u64)>> = Vec::new();
    for (ln, l) in lines {
        if l.is_empty() {
            continue;
        }
        if let Some(pi) = l.strip_prefix("proc ") {
            let pi: usize = pi
                .parse()
                .map_err(|_| ProfileParseError { line: ln, message: "bad proc index".into() })?;
            if pi != per_proc.len() {
                return err(ln, "procs must appear in order");
            }
            per_proc.push(Vec::new());
        } else if let Some(rest) = l.strip_prefix("path ") {
            let Some(cur) = per_proc.last_mut() else {
                return err(ln, "path before proc");
            };
            let mut toks = rest.split_whitespace();
            let count: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(ProfileParseError { line: ln, message: "bad path count".into() })?;
            let mut path = Vec::new();
            for t in toks {
                let b: u32 = t
                    .parse()
                    .map_err(|_| ProfileParseError { line: ln, message: "bad block id".into() })?;
                path.push(BlockId::new(b));
            }
            if path.is_empty() {
                return err(ln, "empty path");
            }
            cur.push((path, count));
        } else {
            return err(ln, format!("unrecognized line `{l}`"));
        }
    }
    Ok(KPathProfile::from_paths(k, per_proc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpath::KPathProfiler;
    use crate::{EdgeProfiler, PathProfiler};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let a = f.new_block();
        let b = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 3i64);
        f.branch(m, a, b);
        f.switch_to(a);
        f.jump(latch);
        f.switch_to(b);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(50));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn edge_profile_round_trips() {
        let p = sample();
        let mut ep = EdgeProfiler::new(&p);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut ep)
            .unwrap();
        let edge = ep.finish();
        let text = edge_to_text(&edge);
        let back = edge_from_text(&text).unwrap();
        // Canonical re-serialization is identical.
        assert_eq!(edge_to_text(&back), text);
        // And spot queries agree.
        let pid = p.entry;
        for b in p.proc(pid).block_ids() {
            assert_eq!(back.block_freq(pid, b), edge.block_freq(pid, b));
        }
    }

    #[test]
    fn path_profile_round_trips() {
        let p = sample();
        let mut pp = PathProfiler::new(&p, 15);
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[], &mut pp)
            .unwrap();
        let path = pp.finish();
        let text = path_to_text(&path);
        let back = path_from_text(&text).unwrap();
        assert_eq!(back.depth(), path.depth());
        assert_eq!(path_to_text(&back), text, "canonical fixpoint");
        // Every recorded window keeps its exact frequency.
        let pid = p.entry;
        for (window, _) in path.iter_maximal_windows(pid) {
            assert_eq!(back.freq(pid, &window), path.freq(pid, &window));
        }
    }

    #[test]
    fn kpath_profile_round_trips() {
        let p = sample();
        for k in [1usize, 2, 3] {
            let mut kp = KPathProfiler::new(&p, k);
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut kp)
                .unwrap();
            let kpath = kp.finish();
            let text = kpath_to_text(&kpath);
            let back = kpath_from_text(&text).unwrap();
            assert_eq!(back.k(), k);
            assert_eq!(kpath_to_text(&back), text, "canonical fixpoint at k = {k}");
            assert_eq!(back, kpath, "k = {k}");
        }
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        let e = edge_from_text("pps-edge-profile v1\nbogus").unwrap_err();
        assert_eq!(e.line, 2);
        let e = path_from_text("wrong header").unwrap_err();
        assert_eq!(e.line, 1);
        let e = path_from_text("pps-path-profile v1 depth 15\nwindow 3 1").unwrap_err();
        assert!(e.message.contains("before proc"));
        let e = kpath_from_text("pps-kpath-profile v1 k 0").unwrap_err();
        assert_eq!(e.line, 1);
        let e = kpath_from_text("pps-kpath-profile v1 k 2\npath 3 1").unwrap_err();
        assert!(e.message.contains("before proc"));
    }
}
