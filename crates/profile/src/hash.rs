//! Canonical content hashes for profiles.
//!
//! A profile's identity is its canonical serialized form
//! ([`crate::serialize`]): edges and windows are emitted sorted, so two
//! profiles that answer every query identically serialize to the same
//! bytes, and the hash of those bytes is a stable, machine-independent
//! content address. This is the `profile_hash` leg of the serving stack's
//! `ArtifactKey` — the precondition for reusing profile-guided compiles
//! across requests, processes, and machines.

use crate::edge::EdgeProfile;
use crate::kpath::KPathProfile;
use crate::path::PathProfile;
use crate::serialize::{edge_to_text, kpath_to_text, path_to_text};
use pps_ir::hash::{fnv1a64, splitmix64};

/// Hashes a canonical profile text. Both profile kinds go through this so
/// the edge/path hashes share one definition: FNV-1a-64 over the bytes,
/// diffused through splitmix64.
#[inline]
pub fn profile_text_hash(text: &str) -> u64 {
    splitmix64(fnv1a64(text.as_bytes()))
}

/// Canonical hash of an edge profile (over [`edge_to_text`]).
pub fn edge_hash(profile: &EdgeProfile) -> u64 {
    profile_text_hash(&edge_to_text(profile))
}

/// Canonical hash of a path profile (over [`path_to_text`]).
pub fn path_hash(profile: &PathProfile) -> u64 {
    profile_text_hash(&path_to_text(profile))
}

/// Canonical hash of the edge+path profile pair a compile request carries.
/// Folds both hashes order-sensitively so `(e, p)` and `(p, e)` differ.
pub fn profile_pair_hash(edge: &EdgeProfile, path: &PathProfile) -> u64 {
    splitmix64(edge_hash(edge) ^ splitmix64(path_hash(path)))
}

/// Canonical hash of a k-iteration path profile (over [`kpath_to_text`],
/// which embeds `k` in its header — the same counts at different `k` hash
/// differently, as they must: they answer different queries).
pub fn kpath_hash(profile: &KPathProfile) -> u64 {
    profile_text_hash(&kpath_to_text(profile))
}

/// Folds a k-iteration profile hash into an edge+path pair hash, giving
/// the profile leg of the `ArtifactKey` for `Pk*` scheme compiles. Order-
/// sensitive like [`profile_pair_hash`], so swapping legs moves the key.
pub fn profile_triple_hash(edge: &EdgeProfile, path: &PathProfile, kpath: &KPathProfile) -> u64 {
    splitmix64(profile_pair_hash(edge, path) ^ splitmix64(kpath_hash(kpath)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{edge_from_text, path_from_text};
    use crate::{EdgeProfiler, PathProfiler};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(20));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    fn profiles() -> (EdgeProfile, PathProfile) {
        let p = sample();
        let mut ep = EdgeProfiler::new(&p);
        let mut pp = PathProfiler::new(&p, 15);
        Interp::new(&p, ExecConfig::default()).run_traced(&[], &mut ep).unwrap();
        Interp::new(&p, ExecConfig::default()).run_traced(&[], &mut pp).unwrap();
        (ep.finish(), pp.finish())
    }

    #[test]
    fn hashes_survive_text_round_trip() {
        let (edge, path) = profiles();
        let e2 = edge_from_text(&edge_to_text(&edge)).unwrap();
        let p2 = path_from_text(&path_to_text(&path)).unwrap();
        assert_eq!(edge_hash(&edge), edge_hash(&e2));
        assert_eq!(path_hash(&path), path_hash(&p2));
        assert_eq!(profile_pair_hash(&edge, &path), profile_pair_hash(&e2, &p2));
    }

    #[test]
    fn different_profiles_hash_differently() {
        let (edge, path) = profiles();
        // A profile of the same program with different counts.
        let text = edge_to_text(&edge).replace(" 20\n", " 21\n");
        let other = edge_from_text(&text).unwrap();
        assert_ne!(edge_hash(&edge), edge_hash(&other));
        // Pair hash is order-sensitive in its components.
        assert_ne!(
            profile_pair_hash(&edge, &path),
            splitmix64(path_hash(&path) ^ splitmix64(edge_hash(&edge)))
        );
    }
}
