//! Profile aggregation and drift measurement for the continuous-PGO loop.
//!
//! Merging is pure counter addition over the canonical representations the
//! serializers already use — per-block / per-edge counts for
//! [`EdgeProfile`], maximal-window counts for [`PathProfile`] — so the
//! operation is commutative and associative, and merging then serializing
//! is byte-identical no matter the merge order (`tests/profile_props.rs`
//! proves this over random multi-procedure programs).
//!
//! [`path_drift`] quantifies how far a live aggregate has moved from the
//! profile a unit was compiled with: top-k hot-path set overlap plus total
//! variation distance over the normalized top-k weights. The serve daemon's
//! drift detector applies hysteresis thresholds on the combined score.

use crate::edge::EdgeProfile;
use crate::kpath::KPathProfile;
use crate::path::PathProfile;
use pps_ir::{BlockId, ProcId};
use std::collections::HashMap;
use std::fmt;

/// Why two profiles cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The path profiles were collected at different window depths; their
    /// window populations are not comparable, let alone addable.
    DepthMismatch {
        /// Depth of the left operand.
        left: usize,
        /// Depth of the right operand.
        right: usize,
    },
    /// The profiles cover different numbers of procedures — they describe
    /// different programs.
    ShapeMismatch {
        /// Procedure count of the left operand.
        left: usize,
        /// Procedure count of the right operand.
        right: usize,
    },
    /// The k-iteration profiles were collected at different iteration
    /// bounds; a 2-iteration path population cannot be added to a
    /// 3-iteration one.
    KMismatch {
        /// `k` of the left operand.
        left: usize,
        /// `k` of the right operand.
        right: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::DepthMismatch { left, right } => {
                write!(f, "path depth mismatch: {left} vs {right}")
            }
            MergeError::ShapeMismatch { left, right } => {
                write!(f, "procedure count mismatch: {left} vs {right}")
            }
            MergeError::KMismatch { left, right } => {
                write!(f, "k-iteration bound mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges two edge profiles by counter addition (saturating, so the
/// operation stays associative even at the `u64` ceiling).
///
/// # Errors
/// [`MergeError::ShapeMismatch`] when the profiles cover different
/// procedure counts.
pub fn merge_edges(a: &EdgeProfile, b: &EdgeProfile) -> Result<EdgeProfile, MergeError> {
    if a.num_procs() != b.num_procs() {
        return Err(MergeError::ShapeMismatch { left: a.num_procs(), right: b.num_procs() });
    }
    let mut block_freq: Vec<Vec<u64>> = Vec::with_capacity(a.num_procs());
    let mut edge_freq: Vec<HashMap<(BlockId, BlockId), u64>> = Vec::with_capacity(a.num_procs());
    for pi in 0..a.num_procs() {
        let pid = ProcId::new(pi as u32);
        let n = a.num_blocks(pid).max(b.num_blocks(pid));
        let mut blocks = vec![0u64; n];
        for (i, slot) in blocks.iter_mut().enumerate() {
            let id = BlockId::new(i as u32);
            let fa = if i < a.num_blocks(pid) { a.block_freq(pid, id) } else { 0 };
            let fb = if i < b.num_blocks(pid) { b.block_freq(pid, id) } else { 0 };
            *slot = fa.saturating_add(fb);
        }
        let mut edges: HashMap<(BlockId, BlockId), u64> = a.iter_edges(pid).collect();
        for (key, f) in b.iter_edges(pid) {
            let slot = edges.entry(key).or_insert(0);
            *slot = slot.saturating_add(f);
        }
        block_freq.push(blocks);
        edge_freq.push(edges);
    }
    Ok(EdgeProfile::from_counts(block_freq, edge_freq))
}

/// Merges two general path profiles by adding their maximal-window counts
/// (saturating). The result answers every [`PathProfile::freq`] query with
/// the sum of the operands' answers.
///
/// # Errors
/// [`MergeError::DepthMismatch`] / [`MergeError::ShapeMismatch`] when the
/// profiles are not comparable.
pub fn merge_paths(a: &PathProfile, b: &PathProfile) -> Result<PathProfile, MergeError> {
    if a.depth() != b.depth() {
        return Err(MergeError::DepthMismatch { left: a.depth(), right: b.depth() });
    }
    if a.num_procs() != b.num_procs() {
        return Err(MergeError::ShapeMismatch { left: a.num_procs(), right: b.num_procs() });
    }
    let mut per_proc: Vec<Vec<(Vec<BlockId>, u64)>> = Vec::with_capacity(a.num_procs());
    for pi in 0..a.num_procs() {
        let pid = ProcId::new(pi as u32);
        let mut counts: HashMap<Vec<BlockId>, u64> = a.iter_maximal_windows(pid).into_iter().collect();
        for (window, count) in b.iter_maximal_windows(pid) {
            let slot = counts.entry(window).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        per_proc.push(counts.into_iter().collect());
    }
    Ok(PathProfile::from_windows(a.depth(), per_proc))
}

/// Merges two k-iteration path profiles by adding their completed-path
/// counts (saturating). Commutative and associative like the other merges,
/// with byte-identical serialization regardless of merge order
/// (`tests/profile_props.rs`).
///
/// # Errors
/// [`MergeError::KMismatch`] / [`MergeError::ShapeMismatch`] when the
/// profiles are not comparable.
pub fn merge_kpaths(a: &KPathProfile, b: &KPathProfile) -> Result<KPathProfile, MergeError> {
    if a.k() != b.k() {
        return Err(MergeError::KMismatch { left: a.k(), right: b.k() });
    }
    if a.num_procs() != b.num_procs() {
        return Err(MergeError::ShapeMismatch { left: a.num_procs(), right: b.num_procs() });
    }
    let mut per_proc: Vec<Vec<(Vec<BlockId>, u64)>> = Vec::with_capacity(a.num_procs());
    for pi in 0..a.num_procs() {
        let pid = ProcId::new(pi as u32);
        let mut counts: HashMap<Vec<BlockId>, u64> =
            a.iter_paths(pid).map(|(p, c)| (p.to_vec(), c)).collect();
        for (path, count) in b.iter_paths(pid) {
            let slot = counts.entry(path.to_vec()).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        per_proc.push(counts.into_iter().collect());
    }
    Ok(KPathProfile::from_paths(a.k(), per_proc))
}

/// How far a live path aggregate has moved from a reference profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Fraction of the reference's top-k hot windows still in the live
    /// top-k (1.0 = identical hot set, 0.0 = disjoint).
    pub top_k_overlap: f64,
    /// Total variation distance between the normalized weights of the two
    /// top-k sets, over their union (0.0 = same distribution, 1.0 =
    /// disjoint mass).
    pub weight_divergence: f64,
    /// Combined drift score in `[0, 1]`:
    /// `0.5 * (1 - overlap) + 0.5 * divergence`.
    pub score: f64,
    /// Windows actually compared (`min(k, distinct windows)`), 0 when
    /// either profile is empty — an empty comparison scores 0 drift.
    pub compared: usize,
}

/// The `k` hottest maximal windows of `profile` across all procedures,
/// hottest first, deterministically tie-broken by (procedure, window).
fn top_k_windows(profile: &PathProfile, k: usize) -> Vec<((ProcId, Vec<BlockId>), u64)> {
    let mut all: Vec<((ProcId, Vec<BlockId>), u64)> = Vec::new();
    for pi in 0..profile.num_procs() {
        let pid = ProcId::new(pi as u32);
        for (window, count) in profile.iter_maximal_windows(pid) {
            all.push(((pid, window), count));
        }
    }
    all.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then_with(|| ka.cmp(kb)));
    all.truncate(k);
    all
}

/// Measures drift of the `live` aggregate relative to the `compiled`
/// reference over their `k` hottest windows.
///
/// The two halves catch different failure shapes: `top_k_overlap` drops
/// when *which* paths are hot changes (the compiled unit optimized traces
/// that no longer run), while `weight_divergence` rises when the same
/// paths stay hot but their relative weights shift enough to invalidate
/// trace-selection priorities.
pub fn path_drift(compiled: &PathProfile, live: &PathProfile, k: usize) -> DriftReport {
    drift_over(top_k_windows(compiled, k), top_k_windows(live, k))
}

/// The `k` hottest completed k-iteration paths of `profile` across all
/// procedures, hottest first, deterministically tie-broken.
fn top_k_paths(profile: &KPathProfile, k: usize) -> Vec<((ProcId, Vec<BlockId>), u64)> {
    let mut all: Vec<((ProcId, Vec<BlockId>), u64)> = Vec::new();
    for pi in 0..profile.num_procs() {
        let pid = ProcId::new(pi as u32);
        for (path, count) in profile.iter_paths(pid) {
            all.push(((pid, path.to_vec()), count));
        }
    }
    all.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then_with(|| ka.cmp(kb)));
    all.truncate(k);
    all
}

/// Measures drift of a live k-iteration aggregate relative to the
/// k-iteration profile a `Pk*` unit was compiled with, over the `top_k`
/// hottest completed paths — the same overlap + total-variation score
/// [`path_drift`] uses, applied to the new profile kind so the PGO
/// sweeper's hysteresis thresholds carry over unchanged.
pub fn kpath_drift(compiled: &KPathProfile, live: &KPathProfile, top_k: usize) -> DriftReport {
    drift_over(top_k_paths(compiled, top_k), top_k_paths(live, top_k))
}

fn drift_over(
    top_c: Vec<((ProcId, Vec<BlockId>), u64)>,
    top_l: Vec<((ProcId, Vec<BlockId>), u64)>,
) -> DriftReport {
    let compared = top_c.len().min(top_l.len());
    if compared == 0 {
        return DriftReport { top_k_overlap: 1.0, weight_divergence: 0.0, score: 0.0, compared: 0 };
    }

    let set_c: HashMap<&(ProcId, Vec<BlockId>), u64> =
        top_c.iter().map(|(key, count)| (key, *count)).collect();
    let set_l: HashMap<&(ProcId, Vec<BlockId>), u64> =
        top_l.iter().map(|(key, count)| (key, *count)).collect();

    let shared = top_c.iter().filter(|(key, _)| set_l.contains_key(key)).count();
    let top_k_overlap = shared as f64 / compared as f64;

    // Total variation distance over the union of the two top-k sets, each
    // side normalized by its own top-k mass.
    let mass_c: f64 = top_c.iter().map(|(_, c)| *c as f64).sum();
    let mass_l: f64 = top_l.iter().map(|(_, c)| *c as f64).sum();
    let mut union: Vec<&(ProcId, Vec<BlockId>)> = set_c.keys().copied().collect();
    for key in set_l.keys() {
        if !set_c.contains_key(*key) {
            union.push(key);
        }
    }
    let mut divergence = 0.0;
    for key in union {
        let pc = set_c.get(key).map_or(0.0, |&c| c as f64 / mass_c.max(1.0));
        let pl = set_l.get(key).map_or(0.0, |&c| c as f64 / mass_l.max(1.0));
        divergence += (pc - pl).abs();
    }
    let weight_divergence = (divergence / 2.0).clamp(0.0, 1.0);

    let score = 0.5 * (1.0 - top_k_overlap) + 0.5 * weight_divergence;
    DriftReport { top_k_overlap, weight_divergence, score, compared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{edge_to_text, path_to_text};
    use crate::{EdgeProfiler, PathProfiler};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    /// A loop whose branch pattern depends on `period`, so different
    /// periods yield genuinely different path distributions over the same
    /// block structure.
    fn patterned(n: i64, period: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let a = f.new_block();
        let b = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, period);
        f.branch(m, a, b);
        f.switch_to(a);
        f.jump(latch);
        f.switch_to(b);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    fn profiles(p: &Program, depth: usize) -> (EdgeProfile, PathProfile) {
        let mut ep = EdgeProfiler::new(p);
        Interp::new(p, ExecConfig::default()).run_traced(&[], &mut ep).unwrap();
        let mut pp = PathProfiler::new(p, depth);
        Interp::new(p, ExecConfig::default()).run_traced(&[], &mut pp).unwrap();
        (ep.finish(), pp.finish())
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let p = patterned(40, 3);
        let (edge, path) = profiles(&p, 15);
        let edge2 = merge_edges(&edge, &edge).unwrap();
        let path2 = merge_paths(&path, &path).unwrap();
        let main = p.entry;
        for bi in 0..edge.num_blocks(main) {
            let b = pps_ir::BlockId::new(bi as u32);
            assert_eq!(edge2.block_freq(main, b), 2 * edge.block_freq(main, b));
        }
        for (window, count) in path.iter_maximal_windows(main) {
            assert_eq!(path2.freq(main, &window), 2 * path.freq(main, &window), "{window:?}");
            assert_eq!(path2.maximal_window_count(main, &window), 2 * count);
        }
    }

    #[test]
    fn merge_is_commutative_in_serialized_form() {
        let pa = patterned(60, 3);
        let pb = patterned(60, 7);
        let (ea, fa) = profiles(&pa, 15);
        let (eb, fb) = profiles(&pb, 15);
        assert_eq!(
            path_to_text(&merge_paths(&fa, &fb).unwrap()),
            path_to_text(&merge_paths(&fb, &fa).unwrap())
        );
        assert_eq!(
            edge_to_text(&merge_edges(&ea, &eb).unwrap()),
            edge_to_text(&merge_edges(&eb, &ea).unwrap())
        );
    }

    #[test]
    fn mismatched_depths_and_shapes_are_rejected() {
        let p = patterned(20, 2);
        let (_, d15) = profiles(&p, 15);
        let (_, d4) = profiles(&p, 4);
        assert!(matches!(merge_paths(&d15, &d4), Err(MergeError::DepthMismatch { .. })));

        let empty = PathProfile::from_windows(15, vec![]);
        assert!(matches!(merge_paths(&d15, &empty), Err(MergeError::ShapeMismatch { .. })));
    }

    #[test]
    fn identical_profiles_have_zero_drift() {
        let p = patterned(50, 4);
        let (_, path) = profiles(&p, 15);
        let report = path_drift(&path, &path, 16);
        assert_eq!(report.top_k_overlap, 1.0);
        assert!(report.weight_divergence < 1e-12);
        assert!(report.score < 1e-12);
        assert!(report.compared > 0);
    }

    #[test]
    fn different_patterns_drift_more_than_scaled_copies() {
        let (_, base) = profiles(&patterned(200, 3), 15);
        let (_, scaled) = profiles(&patterned(400, 3), 15);
        let (_, shifted) = profiles(&patterned(200, 13), 15);
        let same_shape = path_drift(&base, &scaled, 16);
        let new_shape = path_drift(&base, &shifted, 16);
        assert!(
            new_shape.score > same_shape.score,
            "pattern change must out-drift pure scaling: {} vs {}",
            new_shape.score,
            same_shape.score
        );
        assert!(new_shape.score > 0.2, "pattern change must register: {}", new_shape.score);
    }

    #[test]
    fn kpath_merge_adds_and_rejects_mismatches() {
        use crate::kpath::KPathProfiler;
        let p = patterned(40, 3);
        let kprof = |k: usize| {
            let mut prof = KPathProfiler::new(&p, k);
            Interp::new(&p, ExecConfig::default()).run_traced(&[], &mut prof).unwrap();
            prof.finish()
        };
        let k2 = kprof(2);
        let doubled = merge_kpaths(&k2, &k2).unwrap();
        let main = p.entry;
        for (path, count) in k2.iter_paths(main) {
            assert_eq!(doubled.path_count(main, path), 2 * count);
        }
        assert!(matches!(merge_kpaths(&k2, &kprof(3)), Err(MergeError::KMismatch { .. })));
        let empty = KPathProfile::from_paths(2, vec![]);
        assert!(matches!(merge_kpaths(&k2, &empty), Err(MergeError::ShapeMismatch { .. })));
        // Self-drift is zero; a different branch pattern registers.
        assert!(kpath_drift(&k2, &k2, 16).score < 1e-12);
        let mut prof = KPathProfiler::new(&patterned(40, 7), 2);
        Interp::new(&patterned(40, 7), ExecConfig::default())
            .run_traced(&[], &mut prof)
            .unwrap();
        let shifted = prof.finish();
        assert!(kpath_drift(&k2, &shifted, 16).score > 0.0);
    }

    #[test]
    fn empty_comparison_scores_no_drift() {
        let empty = PathProfile::from_windows(15, vec![Vec::new()]);
        let p = patterned(20, 2);
        let (_, path) = profiles(&p, 15);
        assert_eq!(path_drift(&empty, &path, 8).score, 0.0);
        assert_eq!(path_drift(&path, &empty, 8).compared, 0);
    }
}
