//! Execution-engine microbenchmarks (ISSUE: flat pre-decoded interpreter):
//! decode cost, and dispatch throughput of the fast direct-threaded engine
//! against the tree-walking reference interpreter on the same workloads.
//! Throughput is dynamic instructions per iteration, so the reported
//! element rates are directly comparable across engines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::{DecodedProgram, Engine, Exec, NullSink};
use pps_suite::{benchmark_by_name, Scale};

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    group.sample_size(10);
    for name in ["wc", "gcc", "perl"] {
        let bench = benchmark_by_name(name, Scale(2)).expect("benchmark exists");
        let program = &bench.program;
        let args = &bench.train_args;
        let instrs = Interp::new(program, ExecConfig::default())
            .run(args)
            .unwrap()
            .counts
            .instrs;
        group.throughput(Throughput::Elements(instrs));

        group.bench_function(format!("reference/{name}"), |b| {
            let exec = Exec::with_engine(program, ExecConfig::default(), Engine::Reference);
            b.iter(|| exec.run(args).unwrap())
        });
        group.bench_function(format!("fast/{name}"), |b| {
            let exec = Exec::with_engine(program, ExecConfig::default(), Engine::Fast);
            b.iter(|| exec.run(args).unwrap())
        });
        group.bench_function(format!("fast-traced/{name}"), |b| {
            let exec = Exec::with_engine(program, ExecConfig::default(), Engine::Fast);
            b.iter(|| exec.run_traced(args, &mut NullSink).unwrap())
        });
    }
    group.finish();

    // Decode cost: amortized away by the generation-keyed cache in real
    // runs, but it bounds the cold-start latency of a cache miss.
    let mut decode = c.benchmark_group("decode");
    for name in ["wc", "gcc", "perl"] {
        let bench = benchmark_by_name(name, Scale(2)).expect("benchmark exists");
        let n_ops = DecodedProgram::decode(&bench.program).n_ops() as u64;
        decode.throughput(Throughput::Elements(n_ops));
        decode.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| DecodedProgram::decode(&bench.program))
        });
    }
    decode.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
