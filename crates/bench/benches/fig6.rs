//! Figure 6 regeneration machinery: aggressive edge-based unrolling (M16)
//! against restrained path-based formation (P4e).

use criterion::{criterion_group, criterion_main, Criterion};
use pps_bench::pipeline_icache;
use pps_core::Scheme;
use pps_suite::{benchmark_by_name, Scale};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    // Representative subset (pps-harness regenerates the full figure).
    for name in ["wc", "gcc", "perl"] {
        let bench = benchmark_by_name(name, Scale(1)).expect("benchmark exists");
        for scheme in [Scheme::M16, Scheme::P4E] {
            group.bench_function(format!("{}/{}", scheme.name(), bench.name), |b| {
                b.iter(|| pipeline_icache(&bench, scheme))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
