//! §3.1's efficiency claim: general path profiling averages O(1) work per
//! executed edge — the same order as edge profiling. This bench measures
//! plain execution, edge profiling, general path profiling (several
//! depths) and forward-path profiling over the same runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::NullSink;
use pps_profile::{EdgeProfiler, ForwardPathProfiler, PathProfiler};
use pps_suite::{benchmark_by_name, Scale};

fn bench_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler");
    group.sample_size(10);
    for name in ["wc", "gcc", "perl"] {
        let bench = benchmark_by_name(name, Scale(2)).expect("benchmark exists");
        let interp = Interp::new(&bench.program, ExecConfig::default());
        let events = interp
            .run_traced(&bench.train_args, &mut pps_ir::CountSink::new())
            .unwrap()
            .counts
            .blocks;
        group.throughput(Throughput::Elements(events));

        group.bench_function(format!("null/{name}"), |b| {
            b.iter(|| interp.run_traced(&bench.train_args, &mut NullSink).unwrap())
        });
        group.bench_function(format!("edge/{name}"), |b| {
            b.iter(|| {
                let mut p = EdgeProfiler::new(&bench.program);
                interp.run_traced(&bench.train_args, &mut p).unwrap();
                p.finish()
            })
        });
        for depth in [7, 15] {
            group.bench_function(format!("path{depth}/{name}"), |b| {
                b.iter(|| {
                    let mut p = PathProfiler::new(&bench.program, depth);
                    interp.run_traced(&bench.train_args, &mut p).unwrap();
                    p.finish()
                })
            });
        }
        group.bench_function(format!("forward/{name}"), |b| {
            b.iter(|| {
                let mut p = ForwardPathProfiler::new(&bench.program);
                interp.run_traced(&bench.train_args, &mut p).unwrap();
                p.finish()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
