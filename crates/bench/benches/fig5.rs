//! Figure 5 regeneration machinery: P4 and P4e with code layout and the
//! 32KB direct-mapped I-cache in the loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pps_bench::pipeline_icache;
use pps_core::Scheme;
use pps_suite::{benchmark_by_name, Scale};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    // Representative subset (pps-harness regenerates the full figure).
    for name in ["wc", "gcc", "perl"] {
        let bench = benchmark_by_name(name, Scale(1)).expect("benchmark exists");
        for scheme in [Scheme::P4, Scheme::P4E] {
            group.bench_function(format!("{}/{}", scheme.name(), bench.name), |b| {
                b.iter(|| pipeline_icache(&bench, scheme))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
