//! Figure 7 regeneration machinery: collecting the dynamically-weighted
//! blocks-executed-per-superblock and superblock-size statistics for the
//! four schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use pps_bench::{pipeline_ideal, profile};
use pps_core::Scheme;
use pps_suite::{benchmark_by_name, Scale};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    // Figure 7's statistics come from the same runs; benchmark the
    // collection on representative benchmarks across the four schemes.
    for name in ["wc", "gcc", "go"] {
        let bench = benchmark_by_name(name, Scale(1)).expect("benchmark exists");
        let (edge, path) = profile(&bench);
        for scheme in [Scheme::M4, Scheme::M16, Scheme::P4E, Scheme::P4] {
            group.bench_function(format!("{}/{}", scheme.name(), name), |b| {
                b.iter(|| {
                    let (_, out) = pipeline_ideal(&bench, scheme, &edge, &path);
                    (out.sb_stats.avg_blocks_executed(), out.sb_stats.avg_size())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
