//! Table 1 regeneration machinery: baseline (basic-block) compaction and
//! timing simulation per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use pps_compact::{compact_program, singleton_partition, CompactConfig};
use pps_machine::MachineConfig;
use pps_sim::simulate;
use pps_suite::{benchmark_by_name, Scale};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // Representative subset (pps-harness regenerates the full table).
    for name in ["alt", "wc", "gcc", "go", "m88k", "vortex"] {
        let bench = benchmark_by_name(name, Scale(1)).expect("benchmark exists");
        // Compaction (scheduling every block).
        group.bench_function(format!("compact/{}", bench.name), |b| {
            b.iter(|| {
                let mut program = bench.program.clone();
                let part = singleton_partition(&program);
                compact_program(&mut program, &part, &CompactConfig::default())
            })
        });
        // Timing simulation of the baseline.
        let mut program = bench.program.clone();
        let part = singleton_partition(&program);
        let compacted = compact_program(&mut program, &part, &CompactConfig::default());
        let machine = MachineConfig::paper();
        group.bench_function(format!("simulate/{}", bench.name), |b| {
            b.iter(|| simulate(&program, &compacted, &machine, None, &bench.test_args).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
