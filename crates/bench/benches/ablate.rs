//! Compactor ablations: scheduling cost and quality with renaming or
//! speculation disabled, and under realistic latencies — the design
//! choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use pps_bench::profile;
use pps_compact::CompactConfig;
use pps_core::{form_and_compact, FormConfig, Scheme};
use pps_machine::MachineConfig;
use pps_sim::simulate;
use pps_suite::{benchmark_by_name, Scale};

fn run(bench: &pps_suite::Benchmark, cc: &CompactConfig) -> u64 {
    let (edge, path) = profile(bench);
    let mut program = bench.program.clone();
    let (compacted, _) = form_and_compact(
        &mut program,
        &edge,
        Some(&path),
        Scheme::P4,
        &FormConfig::default(),
        cc,
    )
    .expect("pipeline");
    simulate(&program, &compacted, &cc.machine, None, &bench.test_args)
        .unwrap()
        .cycles
}

fn bench_ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate");
    group.sample_size(10);
    for name in ["wc", "eqn", "m88k"] {
        let bench = benchmark_by_name(name, Scale(1)).expect("benchmark exists");
        let configs: [(&str, CompactConfig); 4] = [
            ("full", CompactConfig::default()),
            (
                "no-renaming",
                CompactConfig { renaming: false, move_renaming: false, ..Default::default() },
            ),
            (
                "no-speculation",
                CompactConfig { speculate_loads: false, ..Default::default() },
            ),
            (
                "realistic-latency",
                CompactConfig { machine: MachineConfig::realistic(), ..Default::default() },
            ),
        ];
        for (label, cc) in configs {
            group.bench_function(format!("{label}/{name}"), |b| b.iter(|| run(&bench, &cc)));
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablate);
criterion_main!(benches);
