//! Criterion benchmarks, one target per paper table/figure plus component
//! ablations. Shared helpers live here; the bench targets are under
//! `benches/`.
//!
//! Each target measures the machinery that *regenerates* its table or
//! figure (the harness binary prints the actual rows):
//!
//! - `table1` — baseline (basic-block) compaction + timing simulation;
//! - `fig4` — the full M4 and P4 pipelines with ideal I-cache timing;
//! - `fig5` — P4/P4e with layout + I-cache simulation;
//! - `fig6` — M16 vs P4e formation;
//! - `fig7` — dynamic superblock statistics collection;
//! - `profiler` — §3.1: general path profiling vs edge profiling vs plain
//!   execution (the O(1)-amortized-per-edge claim);
//! - `ablate` — compactor feature ablations (renaming, speculation,
//!   realistic latencies).

use pps_compact::CompactConfig;
use pps_core::{form_and_compact, FormConfig, Scheme};
use pps_ir::interp::ExecConfig;
use pps_ir::trace::TeeSink;
use pps_ir::{Exec, Program};
use pps_machine::MachineConfig;
use pps_profile::{EdgeProfile, EdgeProfiler, PathProfile, PathProfiler};
use pps_sim::{simulate, Layout, SimOutcome};
use pps_suite::Benchmark;

/// Profiles `bench` on its training input (one run, both profilers).
pub fn profile(bench: &Benchmark) -> (EdgeProfile, PathProfile) {
    let mut tee = TeeSink::new(
        EdgeProfiler::new(&bench.program),
        PathProfiler::new(&bench.program, 15),
    );
    Exec::new(&bench.program, ExecConfig::default())
        .run_traced(&bench.train_args, &mut tee)
        .expect("train run");
    (tee.a.finish(), tee.b.finish())
}

/// Runs formation + compaction for one scheme, returning the transformed
/// program and its timing on the testing input (ideal I-cache).
pub fn pipeline_ideal(
    bench: &Benchmark,
    scheme: Scheme,
    edge: &EdgeProfile,
    path: &PathProfile,
) -> (Program, SimOutcome) {
    let mut program = bench.program.clone();
    let (compacted, _) = form_and_compact(
        &mut program,
        edge,
        Some(path),
        scheme,
        &FormConfig::default(),
        &CompactConfig::default(),
    )
    .expect("pipeline");
    let machine = MachineConfig::paper();
    let out = simulate(&program, &compacted, &machine, None, &bench.test_args)
        .expect("test run");
    (program, out)
}

/// Full methodology including layout + I-cache simulation.
pub fn pipeline_icache(bench: &Benchmark, scheme: Scheme) -> SimOutcome {
    let (edge, path) = profile(bench);
    let mut program = bench.program.clone();
    let (compacted, _) = form_and_compact(
        &mut program,
        &edge,
        Some(&path),
        scheme,
        &FormConfig::default(),
        &CompactConfig::default(),
    )
    .expect("pipeline");
    let machine = MachineConfig::paper();
    let train = simulate(&program, &compacted, &machine, None, &bench.train_args)
        .expect("layout run");
    let layout = Layout::build(&program, &compacted, &train.transitions, &machine);
    simulate(&program, &compacted, &machine, Some(&layout), &bench.test_args)
        .expect("measured run")
}
