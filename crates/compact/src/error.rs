//! Typed compaction failures.
//!
//! Compaction validates its inputs (superblock invariants, partition
//! coverage) and its own output (schedule verification). Each check that
//! previously panicked now has a variant here so callers — in particular
//! the pipeline guard in `pps-core` — can degrade per procedure instead of
//! aborting the process.

use pps_ir::BlockId;
use std::fmt;

/// A failure detected while compacting a procedure or program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactError {
    /// The partition does not have one entry per procedure.
    PartitionSize {
        /// Number of procedures in the program.
        expected: usize,
        /// Number of per-procedure superblock lists supplied.
        got: usize,
    },
    /// A superblock violates its structural invariants (side entrance,
    /// non-successor chain, empty region, ...).
    InvalidSuperblock {
        /// Procedure name.
        proc: String,
        /// Human-readable invariant violation from `SuperblockSpec::validate`.
        detail: String,
    },
    /// A block appears in more than one superblock of the partition.
    DuplicateBlock {
        /// Procedure name.
        proc: String,
        /// The doubly-covered block.
        block: BlockId,
    },
    /// A reachable block is not covered by any superblock.
    UncoveredBlock {
        /// Procedure name.
        proc: String,
        /// The uncovered block.
        block: BlockId,
    },
    /// A produced schedule failed verification.
    BadSchedule {
        /// Procedure name.
        proc: String,
        /// Human-readable violation from `check_schedule`.
        detail: String,
    },
}

impl CompactError {
    /// The procedure the failure occurred in, when it is per-procedure.
    pub fn proc_name(&self) -> Option<&str> {
        match self {
            CompactError::PartitionSize { .. } => None,
            CompactError::InvalidSuperblock { proc, .. }
            | CompactError::DuplicateBlock { proc, .. }
            | CompactError::UncoveredBlock { proc, .. }
            | CompactError::BadSchedule { proc, .. } => Some(proc),
        }
    }
}

impl fmt::Display for CompactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactError::PartitionSize { expected, got } => {
                write!(f, "partition has {got} proc entries, program has {expected}")
            }
            CompactError::InvalidSuperblock { proc, detail } => {
                write!(f, "invalid superblock in {proc}: {detail}")
            }
            CompactError::DuplicateBlock { proc, block } => {
                write!(f, "block {block} in two superblocks (proc {proc})")
            }
            CompactError::UncoveredBlock { proc, block } => {
                write!(f, "reachable block {block} not covered (proc {proc})")
            }
            CompactError::BadSchedule { proc, detail } => {
                write!(f, "bad schedule in {proc}: {detail}")
            }
        }
    }
}

impl std::error::Error for CompactError {}
