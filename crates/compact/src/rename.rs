//! Register renaming over a superblock body (paper §2.3).
//!
//! Implements the compactor's three renamings as one textual rewrite pass:
//!
//! - **Anti and output dependence renaming** — every definition inside the
//!   superblock receives a fresh register (while the machine's 128-register
//!   budget lasts), and downstream uses are rewritten, so anti/output
//!   dependences vanish from the dependence graph.
//! - **Live off-trace renaming** — when a renamed register's *original* name
//!   is live at a superblock exit's target, a compensation copy
//!   `orig = mov fresh` is placed in a stub block split onto that off-trace
//!   edge. This is what "allows more instructions to be above superblock
//!   exits".
//! - **Move renaming** — uses of a register defined by a still-visible move
//!   are forward-substituted with the move's source, so dependent
//!   instructions need not wait for the move.
//!
//! The rewrite is semantics-preserving by construction and is additionally
//! validated by differential execution in the test suite.

use crate::liveness::Liveness;
use crate::superblock::SuperblockSpec;
use pps_ir::{BlockId, Instr, Operand, Proc, Reg, Terminator};
use std::collections::HashMap;

/// Renaming options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameConfig {
    /// Master switch: when false, no register is renamed (residual anti and
    /// output dependences are then handled by the dependence graph). Used
    /// by the renaming ablation.
    pub enabled: bool,
    /// Enable forward substitution through moves.
    pub move_renaming: bool,
    /// Machine register-file size; fresh names per superblock are capped at
    /// `max_registers - base_reg_count`.
    pub max_registers: u32,
}

impl Default for RenameConfig {
    fn default() -> Self {
        RenameConfig { enabled: true, move_renaming: true, max_registers: 128 }
    }
}

/// Output of renaming one superblock.
#[derive(Debug, Clone, Default)]
pub struct RenameResult {
    /// Compensation stub blocks created, paired with their final jump
    /// target. Stubs must be scheduled as singleton superblocks.
    pub stubs: Vec<(BlockId, BlockId)>,
    /// Per superblock position: registers (in their post-rename names) that
    /// the off-trace path at that position's terminator reads — stub move
    /// sources plus identity-named live-out definitions. The dependence
    /// graph pins their defining instructions before the exit.
    pub exit_reads: Vec<Vec<Reg>>,
    /// Number of fresh registers consumed.
    pub fresh_used: u32,
    /// Number of uses rewritten by move renaming.
    pub moves_propagated: u64,
}

/// Renames registers within `sb` of `proc`, creating compensation stubs on
/// off-trace edges.
///
/// `liveness` must be computed for `proc` *before* any renaming of this
/// procedure (it is expressed in original register names, which inter-
/// superblock dataflow continues to use). `base_reg_count` is the
/// procedure's register count before compaction began; it bounds the fresh-
/// name budget.
pub fn rename_superblock(
    proc: &mut Proc,
    sb: &SuperblockSpec,
    liveness: &Liveness,
    base_reg_count: u32,
    config: &RenameConfig,
) -> RenameResult {
    let mut budget = if config.enabled {
        config.max_registers.saturating_sub(base_reg_count)
    } else {
        0
    };
    let fresh_start = proc.reg_count;
    // Original name -> current name. Absent keys map to themselves and were
    // not (re)defined within the superblock.
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    // Renaming-benefit filter state: original registers accessed at
    // strictly earlier items, and registers live at the targets of exits
    // already passed. Renaming a definition helps only when it removes an
    // anti/output dependence (prior access) or lets the definition hoist
    // above an earlier exit that the original name is live across
    // (live-off-trace renaming); other renames would spend registers and
    // compensation copies for nothing.
    let mut accessed: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    let mut exit_live: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    let mut orig_use_buf: Vec<Reg> = Vec::new();
    // Current name -> stable move source (for move renaming). A source is
    // stable if it is an immediate or a fresh name from this superblock
    // (fresh names are single-assignment).
    let mut copy_of: HashMap<Reg, Operand> = HashMap::new();
    let mut result = RenameResult {
        exit_reads: vec![Vec::new(); sb.len()],
        ..RenameResult::default()
    };

    let is_stable = |op: Operand, fresh_start: u32| match op {
        Operand::Imm(_) => true,
        Operand::Reg(r) => (r.index() as u32) >= fresh_start,
    };

    for (pos, &bid) in sb.blocks.iter().enumerate() {
        // Take the block body to sidestep aliasing with `proc`.
        let mut instrs = std::mem::take(&mut proc.block_mut(bid).instrs);
        for instr in &mut instrs {
            // Record original-name accesses before rewriting (the source
            // text always reads original names), for the benefit filter.
            orig_use_buf.clear();
            instr.collect_uses(&mut orig_use_buf);
            let orig_def = instr.dst();
            // 1. Rewrite uses through the rename map.
            rewrite_uses(instr, &map);
            // 2. Move renaming: substitute uses of copies.
            if config.move_renaming {
                result.moves_propagated += substitute_copies(instr, &copy_of);
            }
            // 3. Rename the definition when beneficial.
            if let Some(old_dst) = instr.dst() {
                let beneficial = accessed.contains(&old_dst) || exit_live.contains(&old_dst);
                let new_dst = if budget > 0 && beneficial {
                    budget -= 1;
                    result.fresh_used += 1;
                    proc.fresh_reg()
                } else {
                    old_dst
                };
                map.insert(old_dst, new_dst);
                copy_of.remove(&new_dst);
                set_dst(instr, new_dst);
                // Record the copy after the def so `x = mov x` self-moves
                // do not self-substitute.
                if config.move_renaming {
                    if let Instr::Mov { dst, src } = instr {
                        if is_stable(*src, fresh_start) {
                            copy_of.insert(*dst, *src);
                        }
                    }
                }
            }
            // Benefit-filter bookkeeping (original names).
            accessed.extend(orig_use_buf.iter().copied());
            if let Some(d) = orig_def {
                accessed.insert(d);
            }
        }
        proc.block_mut(bid).instrs = instrs;

        // Terminator: rewrite uses, then create compensation stubs for
        // off-trace targets.
        let mut term = proc.block(bid).term.clone();
        accessed.extend(term.uses());
        rewrite_term_uses(&mut term, &map, if config.move_renaming { Some(&copy_of) } else { None });

        let next = sb.blocks.get(pos + 1).copied();
        let mut stub_map: HashMap<BlockId, BlockId> = HashMap::new();
        let off_trace: Vec<BlockId> = term
            .successors()
            .into_iter()
            .filter(|t| Some(*t) != next)
            .collect();
        for target in off_trace {
            // Compensation pairs: original reg live at target whose current
            // name differs.
            let mut pairs: Vec<(Reg, Reg)> = Vec::new();
            exit_live.extend(liveness.live_in[target.index()].iter());
            for r in liveness.live_in[target.index()].iter() {
                match map.get(&r) {
                    Some(&cur) if cur != r => pairs.push((r, cur)),
                    Some(&cur) => {
                        // Identity-named definition live off-trace: its def
                        // must stay above this exit.
                        debug_assert_eq!(cur, r);
                        if !result.exit_reads[pos].contains(&r) {
                            result.exit_reads[pos].push(r);
                        }
                    }
                    None => {}
                }
            }
            if pairs.is_empty() {
                continue;
            }
            for &(_, cur) in &pairs {
                if !result.exit_reads[pos].contains(&cur) {
                    result.exit_reads[pos].push(cur);
                }
            }
            let stub_instrs = pairs
                .iter()
                .map(|&(orig, cur)| Instr::Mov { dst: orig, src: Operand::Reg(cur) })
                .collect();
            let stub = proc.push_block(pps_ir::Block::new(
                stub_instrs,
                Terminator::Jump { target },
            ));
            result.stubs.push((stub, target));
            stub_map.insert(target, stub);
        }
        if !stub_map.is_empty() {
            term.retarget(|b| stub_map.get(&b).copied().unwrap_or(b));
        }
        proc.block_mut(bid).term = term;
    }
    result
}

fn rewrite_uses(instr: &mut Instr, map: &HashMap<Reg, Reg>) {
    let rw = |r: &mut Reg| {
        if let Some(&n) = map.get(r) {
            *r = n;
        }
    };
    let rw_op = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            if let Some(&n) = map.get(r) {
                *r = n;
            }
        }
    };
    match instr {
        Instr::Alu { lhs, rhs, .. } => {
            rw_op(lhs);
            rw_op(rhs);
        }
        Instr::Mov { src, .. } | Instr::Out { src } => rw_op(src),
        Instr::Load { base, .. } => rw(base),
        Instr::Store { src, base, .. } => {
            rw_op(src);
            rw(base);
        }
        Instr::Call { args, .. } => {
            for a in args.iter_mut() {
                rw_op(a);
            }
        }
        Instr::Nop => {}
    }
}

/// Substitutes operands that read a known copy; returns the number of
/// substitutions performed.
fn substitute_copies(instr: &mut Instr, copy_of: &HashMap<Reg, Operand>) -> u64 {
    fn sub_op(o: &mut Operand, copy_of: &HashMap<Reg, Operand>, count: &mut u64) {
        if let Operand::Reg(r) = o {
            if let Some(&src) = copy_of.get(r) {
                *o = src;
                *count += 1;
            }
        }
    }
    // Register-only slots (load/store base) accept only register sources.
    fn sub_reg(r: &mut Reg, copy_of: &HashMap<Reg, Operand>, count: &mut u64) {
        if let Some(&Operand::Reg(s)) = copy_of.get(r) {
            *r = s;
            *count += 1;
        }
    }
    let mut count = 0;
    match instr {
        Instr::Alu { lhs, rhs, .. } => {
            sub_op(lhs, copy_of, &mut count);
            sub_op(rhs, copy_of, &mut count);
        }
        Instr::Mov { src, .. } | Instr::Out { src } => sub_op(src, copy_of, &mut count),
        Instr::Load { base, .. } => sub_reg(base, copy_of, &mut count),
        Instr::Store { src, base, .. } => {
            sub_op(src, copy_of, &mut count);
            sub_reg(base, copy_of, &mut count);
        }
        Instr::Call { args, .. } => {
            for a in args.iter_mut() {
                sub_op(a, copy_of, &mut count);
            }
        }
        Instr::Nop => {}
    }
    count
}

fn rewrite_term_uses(
    term: &mut Terminator,
    map: &HashMap<Reg, Reg>,
    copy_of: Option<&HashMap<Reg, Operand>>,
) {
    let rw = |r: &mut Reg| {
        if let Some(&n) = map.get(r) {
            *r = n;
        }
        if let Some(copies) = copy_of {
            if let Some(&Operand::Reg(s)) = copies.get(r) {
                *r = s;
            }
        }
    };
    match term {
        Terminator::Branch { cond, .. } => rw(cond),
        Terminator::Switch { sel, .. } => rw(sel),
        Terminator::Return { value: Some(op) } => {
            if let Operand::Reg(r) = op {
                if let Some(&n) = map.get(r) {
                    *r = n;
                }
            }
            if let Some(copies) = copy_of {
                if let Operand::Reg(r) = op {
                    if let Some(&src) = copies.get(r) {
                        *op = src;
                    }
                }
            }
        }
        _ => {}
    }
}

fn set_dst(instr: &mut Instr, new: Reg) {
    match instr {
        Instr::Alu { dst, .. } | Instr::Mov { dst, .. } | Instr::Load { dst, .. } => *dst = new,
        Instr::Call { dst: Some(d), .. } => *d = new,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Liveness;
    use pps_ir::analysis::Cfg;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;
    use pps_ir::{AluOp, Program};

    /// main(n): r1 = n+1; if (r1 > 2) goto exit_a else fallthrough;
    /// r1 = r1 * 10 ; out r1; ret. exit_a: out r1; ret r1.
    /// Superblock = [entry, fall]. r1 is live at exit_a, so renaming the
    /// second def of r1 inside the superblock exercises live-off-trace
    /// compensation... actually the *first* def flows off-trace.
    fn two_block_program() -> (Program, SuperblockSpec) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let r1 = f.reg();
        let c = f.reg();
        let fall = f.new_block();
        let exit_a = f.new_block();
        f.alu(AluOp::Add, r1, n, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Imm(2), Operand::Reg(r1));
        f.branch(c, exit_a, fall);
        f.switch_to(fall);
        f.alu(AluOp::Mul, r1, r1, 10i64);
        f.out(r1);
        f.ret(None);
        f.switch_to(exit_a);
        f.out(r1);
        f.ret(Some(Operand::Reg(r1)));
        let main = f.finish();
        let p = pb.finish(main);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), fall]);
        (p, sb)
    }

    fn run(p: &Program, args: &[i64]) -> Vec<i64> {
        Interp::new(p, ExecConfig::default()).run(args).unwrap().output
    }

    #[test]
    fn renaming_preserves_semantics() {
        let (mut p, sb) = two_block_program();
        let before_taken = run(&p, &[5]);
        let before_fall = run(&p, &[0]);
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        let res = rename_superblock(
            p.proc_mut(entry),
            &sb,
            &lv,
            base,
            &RenameConfig::default(),
        );
        verify_program(&p).unwrap();
        assert_eq!(run(&p, &[5]), before_taken);
        assert_eq!(run(&p, &[0]), before_fall);
        // r1's first def gains nothing from renaming (no prior access, no
        // earlier exit) and is kept; the redefinition in `fall` is renamed.
        // Nothing renamed is live at a later exit, so no stub is needed,
        // but the identity-named r1 live at exit_a pins its producer.
        assert!(res.stubs.is_empty());
        assert_eq!(res.fresh_used, 1);
        assert!(res.exit_reads[0].contains(&Reg::new(1)));
    }

    #[test]
    fn redefinition_live_off_trace_gets_stub() {
        // b0: r = n+1; branch -> exitA | b1.
        // b1: r = r*10 (renamed: prior access); branch -> exitB | b2.
        // b2: out r; ret.  r is live at exitB, so the renamed value needs a
        // compensation stub on that edge.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 2);
        let n = Reg::new(0);
        let c = Reg::new(1);
        let r = f.reg();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let exit_a = f.new_block();
        let exit_b = f.new_block();
        f.alu(AluOp::Add, r, n, 1i64);
        f.branch(c, exit_a, b1);
        f.switch_to(b1);
        f.alu(AluOp::Mul, r, r, 10i64);
        f.branch(c, exit_b, b2);
        f.switch_to(b2);
        f.out(r);
        f.ret(None);
        f.switch_to(exit_a);
        f.ret(None);
        f.switch_to(exit_b);
        f.out(r);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let before = run(&p, &[5, 0]);
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), b1, b2]);
        let res = rename_superblock(
            p.proc_mut(entry),
            &sb,
            &lv,
            base,
            &RenameConfig::default(),
        );
        assert_eq!(res.stubs.len(), 1, "stub on the exitB edge");
        assert_eq!(res.fresh_used, 1);
        verify_program(&p).unwrap();
        assert_eq!(run(&p, &[5, 0]), before);
        assert_eq!(run(&p, &[5, 1]), vec![]);
    }

    #[test]
    fn renaming_disabled_changes_nothing_textually() {
        let (mut p, sb) = two_block_program();
        let orig = p.clone();
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        let config = RenameConfig { enabled: false, move_renaming: false, ..Default::default() };
        let res = rename_superblock(p.proc_mut(entry), &sb, &lv, base, &config);
        assert_eq!(p, orig);
        assert_eq!(res.fresh_used, 0);
        assert!(res.stubs.is_empty());
        // The identity-named def of r1 is still live off-trace: pinned.
        assert!(res.exit_reads[0].contains(&Reg::new(1)));
    }

    #[test]
    fn move_renaming_substitutes_sources() {
        // t = mov n; u = t + 1 -> u = n + 1? n is an original name (not
        // stable), so no substitution. But v = mov #7; w = v + 1 -> w = #7+1.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let v = f.reg();
        let w = f.reg();
        f.mov(v, 7i64);
        f.alu(AluOp::Add, w, v, 1i64);
        f.out(w);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let sb = SuperblockSpec::singleton(BlockId::new(0));
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        let res = rename_superblock(
            p.proc_mut(entry),
            &sb,
            &lv,
            base,
            &RenameConfig::default(),
        );
        // v is renamed to a fresh name; the mov's source #7 is stable, so
        // the add reads #7 directly.
        assert!(res.moves_propagated >= 1);
        let block = &p.proc(entry).blocks[0];
        match &block.instrs[1] {
            Instr::Alu { lhs, .. } => assert_eq!(*lhs, Operand::Imm(7)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(run(&p, &[]), vec![8]);
    }

    #[test]
    fn budget_exhaustion_keeps_original_names() {
        let (mut p, sb) = two_block_program();
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        // max_registers equal to current count -> zero budget.
        let config = RenameConfig { max_registers: base, ..Default::default() };
        let res = rename_superblock(p.proc_mut(entry), &sb, &lv, base, &config);
        assert_eq!(res.fresh_used, 0);
        assert!(res.stubs.is_empty());
        assert_eq!(run(&p, &[5]), vec![6]);
        assert_eq!(run(&p, &[0]), vec![10]);
    }

    #[test]
    fn loop_superblock_compensates_on_backedge() {
        // A superblock that is a loop body: i accumulates across
        // iterations; renaming i inside must compensate on the back edge.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let t = f.reg();
        f.alu(AluOp::Add, t, i, 1i64);
        f.mov(i, Operand::Reg(t));
        f.out(i);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(i)));
        let main = f.finish();
        let mut p = pb.finish(main);
        let before = Interp::new(&p, ExecConfig::default()).run(&[4]).unwrap();
        let sb = SuperblockSpec::singleton(head);
        let entry = p.entry;
        let base = p.proc(entry).reg_count;
        let cfg = Cfg::compute(p.proc(entry));
        let lv = Liveness::compute(p.proc(entry), &cfg);
        let res = rename_superblock(
            p.proc_mut(entry),
            &sb,
            &lv,
            base,
            &RenameConfig::default(),
        );
        // Both targets (head itself and exit) need compensation for i.
        assert_eq!(res.stubs.len(), 2);
        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[4]).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.return_value, before.return_value);
    }
}
