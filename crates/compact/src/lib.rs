#![warn(missing_docs)]

//! Superblock compaction (paper §2.3).
//!
//! Compaction takes a partition of each procedure's blocks into superblocks
//! (produced by `pps-core` formation, or trivially one block per superblock
//! for the baseline) and produces, for every superblock, a *top-down cycle
//! schedule* for the paper's 8-wide VLIW machine:
//!
//! 1. [`rename`] — register renaming over the superblock body: anti/output
//!    renaming, live-off-trace renaming (with compensation copies placed in
//!    split-edge stub blocks on off-trace edges), and move renaming (forward
//!    substitution through moves). The rewrite is textual, so the reference
//!    interpreter validates it.
//! 2. [`ddg`] — the data-dependence graph over the renamed body: true
//!    dependences with latencies, residual anti/output dependences (only
//!    where the 128-register budget stopped renaming), memory dependences
//!    with a base+offset disambiguation, side-effect ordering, and control
//!    edges pinning what may not cross superblock exits.
//! 3. [`sched`] — greedy top-down cycle scheduling honoring issue width and
//!    the one-control-op-per-cycle limit, with critical-path priority.
//!
//! The resulting [`sched::Schedule`] records the cycle of every superblock
//! exit and the fetched-instruction prefix per exit; `pps-sim` charges
//! cycles and simulates the instruction cache from those.
//!
//! Semantics note: the *textual* order of instructions is left unchanged
//! (the schedule is timing metadata), so an instruction hoisted above an
//! exit in the schedule is wasted work on the early-exit path exactly as in
//! the paper, while the interpreter — which executes textual order —
//! remains the ground truth for correctness.

pub mod compactor;
pub mod ddg;
pub mod error;
pub mod liveness;
pub mod rename;
pub mod sched;
pub mod superblock;

pub use compactor::{
    compact_program, singleton_partition, try_compact_proc, try_compact_proc_obs,
    try_compact_program, try_compact_program_obs, CompactConfig, CompactedProc, CompactedProgram,
    ScheduledSuperblock,
};
pub use error::CompactError;
pub use sched::Schedule;
pub use superblock::SuperblockSpec;
