//! Classic backward liveness analysis over procedure registers.
//!
//! Used by the renamer to decide which values are *live off-trace* at each
//! superblock exit: a renamed value whose original register is live at the
//! exit's target needs a compensation copy on that edge.

use pps_ir::analysis::Cfg;
use pps_ir::{Block, Proc, Reg};

/// Per-block live-in/live-out register sets (bit sets over `reg_count`).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]` — registers live on entry to block `b`.
    pub live_in: Vec<RegSet>,
    /// `live_out[b]` — registers live on exit from block `b`.
    pub live_out: Vec<RegSet>,
}

/// A dense register bit set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// Creates an empty set able to hold `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet { bits: vec![0; n.div_ceil(64)] }
    }

    /// Inserts a register. Returns true if newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let old = self.bits[w];
        self.bits[w] |= 1 << b;
        old != self.bits[w]
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        if w < self.bits.len() {
            self.bits[w] &= !(1 << b);
        }
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        w < self.bits.len() && self.bits[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut changed = false;
        for (i, &w) in other.bits.iter().enumerate() {
            let old = self.bits[i];
            self.bits[i] |= w;
            changed |= old != self.bits[i];
        }
        changed
    }

    /// Iterates over member registers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1u64 << b) != 0)
                .map(move |b| Reg::new((w * 64 + b) as u32))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no register is a member.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Applies the transfer function of one block backwards: given `live_out`,
/// returns `live_in`.
fn transfer(block: &Block, live_out: &RegSet, n: usize) -> RegSet {
    let mut live = live_out.clone();
    for r in block.term.uses() {
        live.insert(r);
    }
    let mut use_buf = Vec::new();
    for instr in block.instrs.iter().rev() {
        if let Some(d) = instr.dst() {
            live.remove(d);
        }
        use_buf.clear();
        instr.collect_uses(&mut use_buf);
        for &r in &use_buf {
            live.insert(r);
        }
    }
    let _ = n;
    live
}

impl Liveness {
    /// Computes liveness for `proc`.
    pub fn compute(proc: &Proc, cfg: &Cfg) -> Self {
        let n = proc.blocks.len();
        let nregs = proc.reg_count as usize;
        let mut live_in = vec![RegSet::new(nregs); n];
        let mut live_out = vec![RegSet::new(nregs); n];

        // Iterate to fixpoint in reverse RPO (postorder) for fast
        // convergence.
        let order: Vec<_> = cfg.rpo.iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out = RegSet::new(nregs);
                for &s in &cfg.succs[bi] {
                    out.union_with(&live_in[s.index()]);
                }
                let inn = transfer(proc.block(b), &out, nregs);
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, BlockId, Operand};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(4);
        assert!(s.is_empty());
        assert!(s.insert(Reg::new(3)));
        assert!(!s.insert(Reg::new(3)));
        assert!(s.insert(Reg::new(70)));
        assert!(s.contains(Reg::new(3)));
        assert!(s.contains(Reg::new(70)));
        assert!(!s.contains(Reg::new(4)));
        assert_eq!(s.len(), 2);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![Reg::new(3), Reg::new(70)]);
        s.remove(Reg::new(3));
        assert!(!s.contains(Reg::new(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn loop_carried_liveness() {
        // i is live around the loop; t is local to the body.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        let t = f.reg();
        f.alu(AluOp::Mul, t, i, 2i64);
        f.out(t);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(i)));
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let lv = Liveness::compute(proc, &cfg);
        let (head, body, exit) = (BlockId::new(1), BlockId::new(2), BlockId::new(3));
        // i and n live into the loop head (i used by compare + body + exit).
        assert!(lv.live_in[head.index()].contains(i));
        assert!(lv.live_in[head.index()].contains(n));
        // t is not live into the body (defined there).
        assert!(!lv.live_in[body.index()].contains(t));
        // i live into exit (returned); c not.
        assert!(lv.live_in[exit.index()].contains(i));
        assert!(!lv.live_in[exit.index()].contains(c));
        // c live out of head? c is dead after the branch uses it.
        assert!(!lv.live_out[head.index()].contains(c));
    }

    #[test]
    fn dead_code_not_live() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let b = f.reg();
        f.mov(a, 1i64);
        f.mov(b, 2i64); // dead
        f.out(a);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let lv = Liveness::compute(proc, &cfg);
        let e = BlockId::new(0);
        assert!(!lv.live_in[e.index()].contains(a));
        assert!(!lv.live_in[e.index()].contains(b));
        assert!(lv.live_out[e.index()].is_empty());
    }
}
