//! Top-down cycle scheduling (the paper's compaction proper).
//!
//! Greedy list scheduling over the dependence graph: cycles are filled in
//! order; at each cycle every dependence-ready item competes for the 8
//! universal issue slots, with at most one control operation per cycle.
//! Priority is critical-path height, ties broken by program order.
//!
//! The resulting [`Schedule`] records, per superblock exit, the cycle at
//! which the exit issues and how many instructions lie at or before that
//! cycle — precisely what the timing and instruction-cache simulations in
//! `pps-sim` charge when a dynamic traversal leaves through that exit.

use crate::ddg::Ddg;
use pps_machine::MachineConfig;

/// A compacted superblock schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Issue cycle of every item (indexed like [`Ddg::items`]).
    pub cycle_of: Vec<u32>,
    /// Total schedule length in cycles (`max(cycle_of) + 1`; 0 for empty).
    pub n_cycles: u32,
    /// Per superblock position: issue cycle of that block's terminator, or
    /// `None` when the terminator was elided (internal unconditional jump).
    pub exit_cycles: Vec<Option<u32>>,
    /// Per superblock position: number of items scheduled at cycles `<=`
    /// the exit cycle — the instruction-fetch prefix when leaving there.
    /// Zero where `exit_cycles` is `None`.
    pub fetch_counts: Vec<u32>,
    /// Total item count (the superblock's laid-out size in instructions).
    pub n_items: u32,
}

impl Schedule {
    /// Cycles charged when a dynamic traversal leaves via the terminator at
    /// `pos` (exit cycle + 1).
    ///
    /// # Panics
    /// Panics if the terminator at `pos` was elided — control can never
    /// leave the superblock there.
    pub fn cost_of_exit(&self, pos: usize) -> u64 {
        u64::from(self.exit_cycles[pos].expect("exit not elided")) + 1
    }

    /// Fetched-instruction count when leaving via the terminator at `pos`.
    pub fn fetch_of_exit(&self, pos: usize) -> u32 {
        self.fetch_counts[pos]
    }
}

/// Schedules `ddg` for `machine` with top-down cycle scheduling.
pub fn schedule(ddg: &Ddg, machine: &MachineConfig) -> Schedule {
    let n = ddg.items.len();
    let mut cycle_of = vec![0u32; n];
    if n == 0 {
        return Schedule {
            cycle_of,
            n_cycles: 0,
            exit_cycles: ddg.exit_items.iter().map(|_| None).collect(),
            fetch_counts: vec![0; ddg.exit_items.len()],
            n_items: 0,
        };
    }

    // Adjacency and in-degrees.
    let mut indeg = vec![0u32; n];
    let mut succs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for e in &ddg.edges {
        succs[e.from as usize].push((e.to, e.latency));
        indeg[e.to as usize] += 1;
    }
    let heights = ddg.heights();

    // earliest[i]: first cycle item i may issue given scheduled preds.
    let mut earliest = vec![0u32; n];
    let mut remaining_preds = indeg.clone();
    let mut scheduled = vec![false; n];
    let mut n_left = n;

    // Ready pool: items with all preds scheduled.
    let mut ready: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();

    let mut cycle: u32 = 0;
    let mut n_cycles = 0u32;
    while n_left > 0 {
        let mut slots = machine.issue_width;
        let mut control = machine.control_per_cycle;
        // Items finishing with latency 0 can unblock successors within the
        // same cycle, so iterate to a fixpoint per cycle.
        loop {
            // Candidates issueable this cycle.
            let mut cands: Vec<u32> = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i as usize] <= cycle)
                .collect();
            // Priority: greater height first; tie-break program order.
            cands.sort_by(|&a, &b| {
                heights[b as usize]
                    .cmp(&heights[a as usize])
                    .then(a.cmp(&b))
            });
            let mut issued_this_pass: Vec<u32> = Vec::new();
            for &i in &cands {
                if slots == 0 {
                    break;
                }
                let is_ctrl = ddg.items[i as usize].class.is_control();
                if is_ctrl && control == 0 {
                    continue;
                }
                cycle_of[i as usize] = cycle;
                scheduled[i as usize] = true;
                issued_this_pass.push(i);
                slots -= 1;
                if is_ctrl {
                    control -= 1;
                }
                n_left -= 1;
                n_cycles = n_cycles.max(cycle + 1);
            }
            if issued_this_pass.is_empty() {
                break;
            }
            // Retire issued items: update succs, remove from ready.
            ready.retain(|i| !scheduled[*i as usize]);
            for &i in &issued_this_pass {
                for &(s, lat) in &succs[i as usize] {
                    let su = s as usize;
                    earliest[su] = earliest[su].max(cycle + lat);
                    remaining_preds[su] -= 1;
                    if remaining_preds[su] == 0 {
                        ready.push(s);
                    }
                }
            }
            if slots == 0 {
                break;
            }
        }
        cycle += 1;
        debug_assert!(cycle < 1_000_000, "scheduler failed to make progress");
    }

    let exit_cycles: Vec<Option<u32>> = ddg
        .exit_items
        .iter()
        .map(|e| e.map(|i| cycle_of[i as usize]))
        .collect();
    let fetch_counts: Vec<u32> = exit_cycles
        .iter()
        .map(|ec| match ec {
            Some(c) => cycle_of.iter().filter(|&&x| x <= *c).count() as u32,
            None => 0,
        })
        .collect();

    Schedule {
        cycle_of,
        n_cycles,
        exit_cycles,
        fetch_counts,
        n_items: n as u32,
    }
}

/// Validates a schedule against its dependence graph and machine limits.
///
/// # Errors
/// Returns a description of the first violation: an unsatisfied dependence,
/// an over-subscribed cycle, or a control-limit breach.
pub fn check_schedule(ddg: &Ddg, machine: &MachineConfig, sched: &Schedule) -> Result<(), String> {
    if sched.cycle_of.len() != ddg.items.len() {
        return Err("schedule length mismatch".into());
    }
    for e in &ddg.edges {
        let cf = sched.cycle_of[e.from as usize];
        let ct = sched.cycle_of[e.to as usize];
        if ct < cf + e.latency {
            return Err(format!(
                "dependence violated: item {} (cycle {cf}) -> item {} (cycle {ct}), latency {}",
                e.from, e.to, e.latency
            ));
        }
    }
    let mut per_cycle: std::collections::HashMap<u32, (usize, usize)> =
        std::collections::HashMap::new();
    for (i, &c) in sched.cycle_of.iter().enumerate() {
        let entry = per_cycle.entry(c).or_insert((0, 0));
        entry.0 += 1;
        if ddg.items[i].class.is_control() {
            entry.1 += 1;
        }
    }
    for (c, (total, ctrl)) in per_cycle {
        if total > machine.issue_width {
            return Err(format!("cycle {c}: {total} items exceed width {}", machine.issue_width));
        }
        if ctrl > machine.control_per_cycle {
            return Err(format!(
                "cycle {c}: {ctrl} control ops exceed limit {}",
                machine.control_per_cycle
            ));
        }
    }
    // Exits must issue in position order.
    let mut last: Option<u32> = None;
    for ec in sched.exit_cycles.iter().flatten() {
        if let Some(prev) = last {
            if *ec <= prev {
                return Err(format!("exit order violated: {ec} after {prev}"));
            }
        }
        last = Some(*ec);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::build_ddg;
    use crate::superblock::SuperblockSpec;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, BlockId, Program};

    fn sched_single(p: &Program, machine: &MachineConfig) -> (Ddg, Schedule) {
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::singleton(BlockId::new(0));
        let ddg = build_ddg(proc, &sb, &[Vec::new()], machine, true);
        let s = schedule(&ddg, machine);
        check_schedule(&ddg, machine, &s).unwrap();
        (ddg, s)
    }

    #[test]
    fn independent_ops_pack_into_one_cycle() {
        // 7 independent movs + ret: movs fill cycle 0 (7 <= 8 slots), ret
        // is control and fits cycle 0 too (8 total, 1 control).
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        for _ in 0..7 {
            let r = f.reg();
            f.mov(r, 1i64);
        }
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (_, s) = sched_single(&p, &MachineConfig::paper());
        assert_eq!(s.n_cycles, 1);
        assert_eq!(s.exit_cycles[0], Some(0));
        assert_eq!(s.fetch_counts[0], 8);
    }

    #[test]
    fn width_limit_spills_to_next_cycle() {
        // 9 independent movs need two cycles on an 8-wide machine.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        for _ in 0..9 {
            let r = f.reg();
            f.mov(r, 1i64);
        }
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (_, s) = sched_single(&p, &MachineConfig::paper());
        assert_eq!(s.n_cycles, 2);
    }

    #[test]
    fn dependence_chain_serializes() {
        // a = 1; b = a+1; c = b+1; d = c+1 -> 4 cycles + ret issues with
        // last? ret has no dep on d... ret can issue cycle 0? It is an exit
        // and nothing pins it except... nothing! Top-down scheduling could
        // issue ret first. But exits-in-order and side-effect rules pin real
        // programs; a pure ALU chain with unused results can indeed sink
        // below the return in schedule order. Verify the chain itself.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let b = f.reg();
        let c = f.reg();
        let d = f.reg();
        f.mov(a, 1i64);
        f.alu(AluOp::Add, b, a, 1i64);
        f.alu(AluOp::Add, c, b, 1i64);
        f.alu(AluOp::Add, d, c, 1i64);
        f.out(d);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (_, s) = sched_single(&p, &MachineConfig::paper());
        // Chain is 4 cycles; out in cycle 4 wait: mov@0, add@1, add@2,
        // add@3, out@4, ret>=out cycle (lat 0) -> 5 cycles total.
        assert_eq!(s.n_cycles, 5);
        assert_eq!(s.cycle_of[4], 4, "out waits for chain");
    }

    #[test]
    fn control_limit_one_per_cycle() {
        // Two-block superblock: branch + ret are both control; they must
        // land in different cycles even though slots remain.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let fall = f.new_block();
        let off = f.new_block();
        f.branch(pps_ir::Reg::new(0), off, fall);
        f.switch_to(fall);
        f.ret(None);
        f.switch_to(off);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), fall]);
        let machine = MachineConfig::paper();
        let ddg = build_ddg(proc, &sb, &[Vec::new(), Vec::new()], &machine, true);
        let s = schedule(&ddg, &machine);
        check_schedule(&ddg, &machine, &s).unwrap();
        assert_eq!(s.exit_cycles[0], Some(0));
        assert_eq!(s.exit_cycles[1], Some(1));
        assert_eq!(s.n_cycles, 2);
        // Early exit costs 1 cycle, completion 2.
        assert_eq!(s.cost_of_exit(0), 1);
        assert_eq!(s.cost_of_exit(1), 2);
    }

    #[test]
    fn realistic_latency_stretches_loads() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let addr = f.reg();
        let v = f.reg();
        let w = f.reg();
        f.mov(addr, 8i64);
        f.load(v, addr, 0);
        f.alu(AluOp::Add, w, v, 1i64);
        f.out(w);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (_, s_unit) = sched_single(&p, &MachineConfig::paper());
        let (_, s_real) = sched_single(&p, &MachineConfig::realistic());
        assert!(s_real.n_cycles > s_unit.n_cycles);
        // Load at cycle 1, add must wait 3 cycles -> cycle 4.
        assert_eq!(s_real.cycle_of[2], 4);
    }

    #[test]
    fn empty_ddg_schedules_trivially() {
        let ddg = Ddg { items: vec![], edges: vec![], exit_items: vec![None] };
        let s = schedule(&ddg, &MachineConfig::paper());
        assert_eq!(s.n_cycles, 0);
        assert_eq!(s.n_items, 0);
    }

    #[test]
    fn checker_catches_violations() {
        let (ddg, mut s) = {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.begin_proc("main", 0);
            let a = f.reg();
            let b = f.reg();
            f.mov(a, 1i64);
            f.alu(AluOp::Add, b, a, 1i64);
            f.out(b);
            f.ret(None);
            let main = f.finish();
            let p = pb.finish(main);
            let proc = p.proc(p.entry);
            let sb = SuperblockSpec::singleton(BlockId::new(0));
            let machine = MachineConfig::paper();
            let ddg = build_ddg(proc, &sb, &[Vec::new()], &machine, true);
            let s = schedule(&ddg, &machine);
            (ddg, s)
        };
        let machine = MachineConfig::paper();
        check_schedule(&ddg, &machine, &s).unwrap();
        // Violate the true dependence mov -> add.
        s.cycle_of[1] = 0;
        assert!(check_schedule(&ddg, &machine, &s).is_err());
    }
}
