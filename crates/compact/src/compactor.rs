//! Whole-program compaction driver.
//!
//! Takes a superblock partition per procedure (from `pps-core` formation or
//! [`singleton_partition`] for the basic-block baseline), renames and
//! schedules every superblock, schedules the compensation stubs renaming
//! creates, and returns the per-superblock schedules the timing simulator
//! consumes.

use crate::ddg::{build_ddg, ItemKind};
use crate::error::CompactError;
use crate::liveness::Liveness;
use crate::rename::{rename_superblock, RenameConfig};
use crate::sched::{check_schedule, schedule, Schedule};
use crate::superblock::SuperblockSpec;
use pps_ir::analysis::Cfg;
use pps_ir::{Instr, Proc, ProcId, Program};
use pps_machine::MachineConfig;
use pps_obs::{ArgValue, Obs};

/// Compaction options.
#[derive(Debug, Clone, Copy)]
pub struct CompactConfig {
    /// Machine description.
    pub machine: MachineConfig,
    /// Allow loads to be hoisted above exits (converted to non-excepting
    /// form when actually hoisted).
    pub speculate_loads: bool,
    /// Enable register renaming (anti/output + live-off-trace).
    pub renaming: bool,
    /// Enable move renaming (forward substitution through moves).
    pub move_renaming: bool,
    /// Validate superblock invariants and schedules (cheap; keep on).
    pub validate: bool,
}

impl Default for CompactConfig {
    fn default() -> Self {
        CompactConfig {
            machine: MachineConfig::paper(),
            speculate_loads: true,
            renaming: true,
            move_renaming: true,
            validate: true,
        }
    }
}

/// A superblock together with its compacted schedule.
#[derive(Debug, Clone)]
pub struct ScheduledSuperblock {
    /// The region (block sequence).
    pub spec: SuperblockSpec,
    /// Its schedule.
    pub schedule: Schedule,
}

/// Compaction result for one procedure.
#[derive(Debug, Clone)]
pub struct CompactedProc {
    /// All scheduled superblocks, including compensation stubs (as trailing
    /// singletons).
    pub superblocks: Vec<ScheduledSuperblock>,
    /// For every block id: `(superblock index, position within it)`, or
    /// `None` for unreachable blocks outside any superblock.
    pub block_loc: Vec<Option<(u32, u32)>>,
}

impl CompactedProc {
    /// Superblock index and position of `block`, if any.
    pub fn location(&self, block: pps_ir::BlockId) -> Option<(u32, u32)> {
        self.block_loc.get(block.index()).copied().flatten()
    }
}

/// Compaction result for a whole program.
#[derive(Debug, Clone)]
pub struct CompactedProgram {
    /// Per-procedure results, indexed by [`ProcId`].
    pub procs: Vec<CompactedProc>,
}

impl CompactedProgram {
    /// Result for one procedure.
    pub fn proc(&self, id: ProcId) -> &CompactedProc {
        &self.procs[id.index()]
    }

    /// Total scheduled size in instructions (layout size).
    pub fn total_items(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|p| &p.superblocks)
            .map(|s| u64::from(s.schedule.n_items))
            .sum()
    }
}

/// The trivial partition: every reachable block is its own superblock (the
/// paper's "basic-block scheduled" baseline).
pub fn singleton_partition(program: &Program) -> Vec<Vec<SuperblockSpec>> {
    program
        .procs
        .iter()
        .map(|p| {
            let cfg = Cfg::compute(p);
            p.block_ids()
                .filter(|b| cfg.is_reachable(*b))
                .map(SuperblockSpec::singleton)
                .collect()
        })
        .collect()
}

/// Compacts `program` under `partition`.
///
/// Mutates the program: registers are renamed, compensation stubs are
/// inserted on off-trace edges, and loads hoisted above exits are converted
/// to their non-excepting form. The observable semantics are preserved
/// (validated by the differential tests).
///
/// # Panics
/// Panics when `validate` is set and a superblock violates its invariants,
/// or when a produced schedule fails verification — both indicate formation
/// or compaction bugs. Use [`try_compact_program`] to receive these as
/// typed [`CompactError`]s instead.
pub fn compact_program(
    program: &mut Program,
    partition: &[Vec<SuperblockSpec>],
    config: &CompactConfig,
) -> CompactedProgram {
    try_compact_program(program, partition, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`compact_program`].
///
/// On `Err` the program may be left partially compacted (procedures before
/// the failing one are already renamed); callers that need atomicity must
/// snapshot and restore, which is exactly what the pipeline guard in
/// `pps-core` does per procedure.
pub fn try_compact_program(
    program: &mut Program,
    partition: &[Vec<SuperblockSpec>],
    config: &CompactConfig,
) -> Result<CompactedProgram, CompactError> {
    try_compact_program_obs(program, partition, config, &Obs::noop())
}

/// [`try_compact_program`] with observability: per-procedure compaction
/// spans, schedule metrics, and decision events flow into `obs`.
pub fn try_compact_program_obs(
    program: &mut Program,
    partition: &[Vec<SuperblockSpec>],
    config: &CompactConfig,
    obs: &Obs,
) -> Result<CompactedProgram, CompactError> {
    if partition.len() != program.procs.len() {
        return Err(CompactError::PartitionSize {
            expected: program.procs.len(),
            got: partition.len(),
        });
    }
    let mut procs = Vec::with_capacity(program.procs.len());
    for (pi, specs) in partition.iter().enumerate() {
        let proc = program.proc_mut(ProcId::new(pi as u32));
        procs.push(try_compact_proc_obs(proc, specs, config, obs)?);
    }
    Ok(CompactedProgram { procs })
}

/// Compacts a single procedure under its superblock list.
///
/// This is the per-procedure unit of work [`try_compact_program`] iterates;
/// it is public so the recovery boundary in `pps-core` can compact (and on
/// failure roll back) one procedure at a time.
pub fn try_compact_proc(
    proc: &mut Proc,
    specs: &[SuperblockSpec],
    config: &CompactConfig,
) -> Result<CompactedProc, CompactError> {
    try_compact_proc_obs(proc, specs, config, &Obs::noop())
}

/// [`try_compact_proc`] with observability.
///
/// Emits a `compact` span for the procedure; counters for superblocks
/// scheduled, rename registers allocated, compensation stubs, and
/// speculated loads; a `compact.slot_occupancy` histogram (issued items
/// over `cycles × issue width`, per superblock); and a `compact.schedule`
/// decision event per superblock with its size, schedule length, and
/// occupancy — the compactor-side data `pps-explore` scheme comparisons
/// need.
pub fn try_compact_proc_obs(
    proc: &mut Proc,
    specs: &[SuperblockSpec],
    config: &CompactConfig,
    obs: &Obs,
) -> Result<CompactedProc, CompactError> {
    let _span = obs
        .span("compact")
        .arg("proc", proc.name.as_str())
        .arg("superblocks", specs.len());
    let rename_config = RenameConfig {
        enabled: config.renaming,
        move_renaming: config.move_renaming,
        max_registers: config.machine.num_registers,
    };
    let base_reg_count = proc.reg_count;
    let cfg = Cfg::compute(proc);
    if config.validate {
        for spec in specs {
            if let Err(e) = spec.validate(proc, &cfg) {
                return Err(CompactError::InvalidSuperblock {
                    proc: proc.name.clone(),
                    detail: e.to_string(),
                });
            }
        }
        // Coverage: every reachable block in exactly one superblock.
        let mut seen = vec![false; proc.blocks.len()];
        for spec in specs {
            for &b in &spec.blocks {
                if seen[b.index()] {
                    return Err(CompactError::DuplicateBlock {
                        proc: proc.name.clone(),
                        block: b,
                    });
                }
                seen[b.index()] = true;
            }
        }
        for b in proc.block_ids() {
            if cfg.is_reachable(b) && !seen[b.index()] {
                return Err(CompactError::UncoveredBlock {
                    proc: proc.name.clone(),
                    block: b,
                });
            }
        }
    }
    let liveness = Liveness::compute(proc, &cfg);

    let mut superblocks = Vec::with_capacity(specs.len());
    let mut stub_specs: Vec<SuperblockSpec> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let rename = rename_superblock(proc, spec, &liveness, base_reg_count, &rename_config);
        for &(stub, _) in &rename.stubs {
            stub_specs.push(SuperblockSpec::singleton(stub));
        }
        let ddg = build_ddg(proc, spec, &rename.exit_reads, &config.machine, config.speculate_loads);
        let sched = schedule(&ddg, &config.machine);
        if config.validate {
            if let Err(e) = check_schedule(&ddg, &config.machine, &sched) {
                return Err(CompactError::BadSchedule {
                    proc: proc.name.clone(),
                    detail: e.to_string(),
                });
            }
        }
        // Convert loads actually hoisted above an earlier exit to the
        // non-excepting (speculative) form.
        let speculated = if config.speculate_loads {
            mark_speculated_loads(proc, spec, &ddg, &sched)
        } else {
            0
        };
        if obs.is_recording() {
            let slots = u64::from(sched.n_cycles) * config.machine.issue_width as u64;
            let occupancy = if slots == 0 {
                0.0
            } else {
                f64::from(sched.n_items) / slots as f64
            };
            obs.histogram("compact.slot_occupancy", occupancy);
            obs.counter("compact.speculated_loads", speculated);
            obs.counter("compact.rename_stubs", rename.stubs.len() as u64);
            obs.decision(
                "compact.schedule",
                &[
                    ("proc", ArgValue::Str(proc.name.clone())),
                    ("sb", ArgValue::UInt(si as u64)),
                    ("head", ArgValue::Str(spec.head().to_string())),
                    ("blocks", ArgValue::UInt(spec.len() as u64)),
                    ("items", ArgValue::UInt(sched.n_items.into())),
                    ("cycles", ArgValue::UInt(sched.n_cycles.into())),
                    ("occupancy", ArgValue::Float(occupancy)),
                    ("speculated_loads", ArgValue::UInt(speculated)),
                    ("rename_stubs", ArgValue::UInt(rename.stubs.len() as u64)),
                ],
            );
        }
        superblocks.push(ScheduledSuperblock { spec: spec.clone(), schedule: sched });
    }
    obs.counter("compact.superblocks", specs.len() as u64);
    obs.counter(
        "compact.renames_applied",
        u64::from(proc.reg_count.saturating_sub(base_reg_count)),
    );
    // Schedule compensation stubs as singleton superblocks.
    for spec in stub_specs {
        let ddg = build_ddg(proc, &spec, &[Vec::new()], &config.machine, config.speculate_loads);
        let sched = schedule(&ddg, &config.machine);
        superblocks.push(ScheduledSuperblock { spec, schedule: sched });
    }

    let mut block_loc = vec![None; proc.blocks.len()];
    for (si, sb) in superblocks.iter().enumerate() {
        for (bi, &b) in sb.spec.blocks.iter().enumerate() {
            block_loc[b.index()] = Some((si as u32, bi as u32));
        }
    }
    Ok(CompactedProc { superblocks, block_loc })
}

/// Marks loads scheduled at or above an earlier exit's cycle as
/// speculative: on a taken exit, ops issued in the same or earlier cycles
/// have already executed, so such a load runs on paths where the original
/// program would not have reached it. Returns the number of loads marked.
fn mark_speculated_loads(
    proc: &mut pps_ir::Proc,
    spec: &SuperblockSpec,
    ddg: &crate::ddg::Ddg,
    sched: &Schedule,
) -> u64 {
    // Exit items in item order with their cycles.
    let exits: Vec<(u32, u32)> = ddg
        .exit_items
        .iter()
        .flatten()
        .map(|&i| (i, sched.cycle_of[i as usize]))
        .collect();
    let mut marked = 0;
    for (i, item) in ddg.items.iter().enumerate() {
        if let ItemKind::Instr { pos, idx } = item.kind {
            let bid = spec.blocks[pos];
            let is_load = matches!(
                proc.block(bid).instrs[idx],
                Instr::Load { speculative: false, .. }
            );
            if !is_load {
                continue;
            }
            let my_cycle = sched.cycle_of[i];
            let hoisted = exits
                .iter()
                .any(|&(e, ec)| (e as usize) < i && my_cycle <= ec);
            if hoisted {
                if let Instr::Load { speculative, .. } = &mut proc.block_mut(bid).instrs[idx] {
                    *speculative = true;
                    marked += 1;
                }
            }
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::verify::verify_program;
    use pps_ir::{AluOp, BlockId, Operand, Reg};

    /// A diamond + loop program with memory traffic, calls and outputs.
    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare_proc("helper", 1);
        let mut h = pb.begin_declared(helper);
        let x = Reg::new(0);
        let y = h.reg();
        h.alu(AluOp::Mul, y, x, 3i64);
        h.ret(Some(Operand::Reg(y)));
        h.finish();

        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let acc = f.reg();
        let c = f.reg();
        let addr = f.reg();
        f.mov(i, 0i64);
        f.mov(acc, 0i64);
        f.mov(addr, 64i64);
        let head = f.new_block();
        let odd = f.new_block();
        let even = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let m = f.reg();
        f.alu(AluOp::Rem, m, i, 2i64);
        f.branch(m, odd, even);
        f.switch_to(odd);
        let t = f.reg();
        f.call(helper, vec![Operand::Reg(i)], Some(t));
        f.alu(AluOp::Add, acc, acc, t);
        f.jump(latch);
        f.switch_to(even);
        f.store(i, addr, 0);
        let u = f.reg();
        f.load(u, addr, 0);
        f.alu(AluOp::Add, acc, acc, u);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.out(acc);
        f.ret(Some(Operand::Reg(acc)));
        let main = f.finish();
        pb.finish(main)
    }

    use pps_ir::Program;

    #[test]
    fn singleton_partition_covers_reachable_blocks() {
        let p = sample();
        let part = singleton_partition(&p);
        assert_eq!(part.len(), 2);
        assert_eq!(part[1].len(), 6, "main has 6 reachable blocks");
        assert!(part[1].iter().all(|s| s.len() == 1));
    }

    #[test]
    fn baseline_compaction_preserves_semantics() {
        let mut p = sample();
        let before = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[10]).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(before.memory, after.memory);
        // Every reachable block got a location.
        let main = p.entry;
        let cp = compacted.proc(main);
        assert!(cp.superblocks.len() >= 6);
        assert!(cp.location(BlockId::new(0)).is_some());
    }

    #[test]
    fn multiblock_superblock_compaction_preserves_semantics() {
        let mut p = sample();
        let before = Interp::new(&p, ExecConfig::default()).run(&[9]).unwrap();
        // Superblock [head, even, latch] (even is the i%2==0 direction,
        // the not-taken side of the branch)... head's branch goes odd when
        // m != 0. even is not_taken: on-trace = head -> even requires even
        // to be a successor; it is. latch follows even. But latch has a
        // side entrance from odd -> invalid as-is. Use [head, even] with
        // latch singleton... latch is reached from odd and even: side
        // entrance either way. So pick [entry-ish blocks]: use singletons
        // except [even] which pairs with nothing. Instead build the valid
        // two-block region [odd] ... odd's successor latch shared. The only
        // side-entrance-free multiblock region here is [entry(b0), head]?
        // head is reached from latch (back edge) too -> side entrance.
        // Construct tail-duplication-free program: use [even] + rest
        // singleton but exercise a multiblock region in `helper` by
        // splitting? helper is single-block. Fall back: craft a superblock
        // on a straight-line chain program instead.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let a = f.reg();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let off = f.new_block();
        f.alu(AluOp::Add, a, n, 1i64);
        f.branch(a, b2, off);
        f.switch_to(b2);
        let d = f.reg();
        f.alu(AluOp::Mul, d, a, 2i64);
        f.out(d);
        f.jump(b3);
        f.switch_to(b3);
        f.out(a);
        f.ret(Some(Operand::Reg(d)));
        f.switch_to(off);
        f.out(a);
        f.ret(Some(Operand::Reg(a)));
        let main = f.finish();
        let mut chain = pb.finish(main);
        let chain_before_t = Interp::new(&chain, ExecConfig::default()).run(&[1]).unwrap();
        let chain_before_f = Interp::new(&chain, ExecConfig::default()).run(&[-1]).unwrap();
        let part = vec![vec![
            SuperblockSpec::new(vec![BlockId::new(0), b2, b3]),
            SuperblockSpec::singleton(off),
        ]];
        let compacted = compact_program(&mut chain, &part, &CompactConfig::default());
        verify_program(&chain).unwrap();
        let after_t = Interp::new(&chain, ExecConfig::default()).run(&[1]).unwrap();
        let after_f = Interp::new(&chain, ExecConfig::default()).run(&[-1]).unwrap();
        assert_eq!(chain_before_t.output, after_t.output);
        assert_eq!(chain_before_f.output, after_f.output);
        assert_eq!(chain_before_t.return_value, after_t.return_value);
        assert_eq!(chain_before_f.return_value, after_f.return_value);
        let sbs = &compacted.proc(chain.entry).superblocks;
        // First superblock spans three blocks with one early exit.
        assert_eq!(sbs[0].spec.len(), 3);
        let sched = &sbs[0].schedule;
        assert!(sched.exit_cycles[0].is_some(), "branch exit");
        assert!(sched.exit_cycles[2].is_some(), "final ret");
        assert!(sched.n_cycles >= 2);

        // Also sanity-check the earlier sample still runs (exercise above).
        let _ = before;
        let part2 = singleton_partition(&p);
        let _ = compact_program(&mut p, &part2, &CompactConfig::default());
        let after = Interp::new(&p, ExecConfig::default()).run(&[9]).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn renaming_off_ablation_runs() {
        let mut p = sample();
        let before = Interp::new(&p, ExecConfig::default()).run(&[6]).unwrap();
        let part = singleton_partition(&p);
        let config = CompactConfig { renaming: false, move_renaming: false, ..Default::default() };
        let _ = compact_program(&mut p, &part, &config);
        let after = Interp::new(&p, ExecConfig::default()).run(&[6]).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    #[should_panic(expected = "in two superblocks")]
    fn invalid_partition_panics() {
        let mut p = sample();
        let mut part = singleton_partition(&p);
        // Duplicate a block across superblocks.
        part[1].push(SuperblockSpec::singleton(BlockId::new(0)));
        let _ = compact_program(&mut p, &part, &CompactConfig::default());
    }

    #[test]
    fn try_compact_reports_typed_errors() {
        let mut p = sample();
        let mut part = singleton_partition(&p);
        part[1].push(SuperblockSpec::singleton(BlockId::new(0)));
        match try_compact_program(&mut p, &part, &CompactConfig::default()) {
            Err(CompactError::DuplicateBlock { proc, block }) => {
                assert_eq!(proc, "main");
                assert_eq!(block, BlockId::new(0));
            }
            other => panic!("expected DuplicateBlock, got {other:?}"),
        }

        let mut p = sample();
        let mut part = singleton_partition(&p);
        part[1].pop();
        assert!(matches!(
            try_compact_program(&mut p, &part, &CompactConfig::default()),
            Err(CompactError::UncoveredBlock { .. })
        ));

        let mut p = sample();
        let part = vec![Vec::new()];
        assert!(matches!(
            try_compact_program(&mut p, &part, &CompactConfig::default()),
            Err(CompactError::PartitionSize { expected: 2, got: 1 })
        ));
    }
}
