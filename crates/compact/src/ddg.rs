//! Data-dependence graph over a (renamed) superblock body.
//!
//! Items are the superblock's instructions plus one *exit item* per block
//! terminator (internal unconditional jumps to the next block are elided —
//! they cost nothing after layout). All edges point forward in item order,
//! so items are topologically sorted by construction.
//!
//! Edge kinds:
//! - true dependences (def → use) with the producer's latency;
//! - residual anti (use → def, latency 0) and output (def → def, latency 1)
//!   dependences on registers the renamer left in place;
//! - memory dependences with base+offset disambiguation: accesses through
//!   the same base register at different constant offsets are independent;
//! - side-effect ordering: stores/calls/outs are pinned on both sides of
//!   every exit, and ordered among themselves where required;
//! - speculation control: loads may float above exits only when the
//!   configuration allows converting them to the non-excepting form;
//! - off-trace liveness: the producers of values an exit's compensation
//!   stub (or off-trace path) reads are pinned above that exit.

use crate::superblock::SuperblockSpec;
use pps_machine::{MachineConfig, OpClass};
use pps_ir::{Instr, Proc, Reg, Terminator};
use std::collections::HashMap;

/// What an item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// The `idx`-th instruction of the block at superblock position `pos`.
    Instr {
        /// Position of the owning block within the superblock.
        pos: usize,
        /// Instruction index within the block.
        idx: usize,
    },
    /// The terminator of the block at position `pos`.
    Exit {
        /// Position of the owning block within the superblock.
        pos: usize,
    },
}

/// One schedulable item.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Resource class.
    pub class: OpClass,
    /// Result latency (1 for items without results).
    pub latency: u32,
}

/// A dependence edge: `to` may not start before `from`'s cycle plus
/// `latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source item.
    pub from: u32,
    /// Sink item.
    pub to: u32,
    /// Minimum cycle distance.
    pub latency: u32,
}

/// The dependence graph of one superblock.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// Items in program order (topological).
    pub items: Vec<Item>,
    /// Dependence edges (may contain duplicates; all point forward).
    pub edges: Vec<Edge>,
    /// Per superblock position: the exit item for that block's terminator,
    /// or `None` when the terminator was elided (internal jump).
    pub exit_items: Vec<Option<u32>>,
}

/// Memory-access summary for disambiguation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MemRef {
    base: Reg,
    offset: i64,
}

fn mem_ref(instr: &Instr) -> Option<MemRef> {
    match instr {
        Instr::Load { base, offset, .. } => Some(MemRef { base: *base, offset: *offset }),
        Instr::Store { base, offset, .. } => Some(MemRef { base: *base, offset: *offset }),
        _ => None,
    }
}

/// Two references provably never alias: same base register (same SSA-ish
/// name, hence same value) with different offsets.
fn provably_disjoint(a: MemRef, b: MemRef) -> bool {
    a.base == b.base && a.offset != b.offset
}

/// Builds the dependence graph for `sb`.
///
/// `exit_reads` comes from [`crate::rename::rename_superblock`]; it lists,
/// per position, the registers the off-trace path reads at that exit.
/// `speculate_loads` permits loads to float above exits (they are later
/// converted to the non-excepting form if actually hoisted).
pub fn build_ddg(
    proc: &Proc,
    sb: &SuperblockSpec,
    exit_reads: &[Vec<Reg>],
    machine: &MachineConfig,
    speculate_loads: bool,
) -> Ddg {
    let mut items: Vec<Item> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut exit_items: Vec<Option<u32>> = vec![None; sb.len()];

    // Dataflow bookkeeping.
    let mut last_def: HashMap<Reg, u32> = HashMap::new();
    let mut uses_since_def: HashMap<Reg, Vec<u32>> = HashMap::new();
    // Memory/side-effect bookkeeping.
    let mut prior_stores: Vec<(u32, Option<MemRef>)> = Vec::new(); // stores + calls (None ref = barrier)
    let mut prior_loads: Vec<(u32, Option<MemRef>)> = Vec::new();
    let mut last_out: Option<u32> = None;
    let mut last_call: Option<u32> = None;
    // Exits seen so far, with their off-trace read sets.
    let mut prior_exits: Vec<u32> = Vec::new();
    let mut use_buf: Vec<Reg> = Vec::new();

    let add_edge = |edges: &mut Vec<Edge>, from: u32, to: u32, latency: u32| {
        debug_assert!(from < to || latency == 0 && from == to, "forward edges only");
        if from != to {
            edges.push(Edge { from, to, latency });
        }
    };

    for (pos, &bid) in sb.blocks.iter().enumerate() {
        let block = proc.block(bid);
        for (idx, instr) in block.instrs.iter().enumerate() {
            let id = items.len() as u32;
            let class = OpClass::of_instr(instr);
            let latency = machine.latency.latency(instr);
            items.push(Item { kind: ItemKind::Instr { pos, idx }, class, latency });

            // True dependences on uses; record anti-dep sources.
            use_buf.clear();
            instr.collect_uses(&mut use_buf);
            for &r in &use_buf {
                if let Some(&d) = last_def.get(&r) {
                    let lat = items[d as usize].latency;
                    add_edge(&mut edges, d, id, lat);
                }
                uses_since_def.entry(r).or_default().push(id);
            }

            // Memory ordering.
            match instr {
                Instr::Load { .. } => {
                    let mr = mem_ref(instr);
                    for &(s, sref) in &prior_stores {
                        let disjoint = match (mr, sref) {
                            (Some(a), Some(b)) => provably_disjoint(a, b),
                            _ => false,
                        };
                        if !disjoint {
                            add_edge(&mut edges, s, id, items[s as usize].latency);
                        }
                    }
                    prior_loads.push((id, mr));
                    // Loads may not float above exits unless speculation is
                    // allowed.
                    if !speculate_loads {
                        for &e in &prior_exits {
                            add_edge(&mut edges, e, id, 1);
                        }
                    }
                }
                Instr::Store { .. } => {
                    let mr = mem_ref(instr);
                    for &(s, sref) in &prior_stores {
                        let disjoint = match (mr, sref) {
                            (Some(a), Some(b)) => provably_disjoint(a, b),
                            _ => false,
                        };
                        if !disjoint {
                            add_edge(&mut edges, s, id, 1);
                        }
                    }
                    for &(l, lref) in &prior_loads {
                        let disjoint = match (mr, lref) {
                            (Some(a), Some(b)) => provably_disjoint(a, b),
                            _ => false,
                        };
                        if !disjoint {
                            add_edge(&mut edges, l, id, 0);
                        }
                    }
                    prior_stores.push((id, mr));
                    // Side effect: pinned below every prior exit.
                    for &e in &prior_exits {
                        add_edge(&mut edges, e, id, 1);
                    }
                }
                Instr::Call { .. } => {
                    // Barrier against all memory, outs, calls, exits.
                    for &(s, _) in &prior_stores {
                        add_edge(&mut edges, s, id, 1);
                    }
                    for &(l, _) in &prior_loads {
                        add_edge(&mut edges, l, id, 0);
                    }
                    if let Some(o) = last_out {
                        add_edge(&mut edges, o, id, 1);
                    }
                    if let Some(c) = last_call {
                        add_edge(&mut edges, c, id, 1);
                    }
                    for &e in &prior_exits {
                        add_edge(&mut edges, e, id, 1);
                    }
                    prior_stores.push((id, None));
                    prior_loads.push((id, None));
                    last_call = Some(id);
                }
                Instr::Out { .. } => {
                    if let Some(o) = last_out {
                        add_edge(&mut edges, o, id, 1);
                    }
                    if let Some(c) = last_call {
                        add_edge(&mut edges, c, id, 1);
                    }
                    for &e in &prior_exits {
                        add_edge(&mut edges, e, id, 1);
                    }
                    last_out = Some(id);
                }
                _ => {}
            }

            // Residual anti/output dependences and exit-clobber pins for
            // the definition.
            if let Some(d) = instr.dst() {
                if let Some(us) = uses_since_def.get(&d) {
                    for &u in us {
                        add_edge(&mut edges, u, id, 0);
                    }
                }
                if let Some(&pd) = last_def.get(&d) {
                    add_edge(&mut edges, pd, id, 1);
                }
                // A def whose register an earlier exit's off-trace path
                // reads must not be hoisted above that exit.
                for (&e, epos) in prior_exits.iter().zip(0..) {
                    let _ = epos;
                    let eitem = e as usize;
                    if let ItemKind::Exit { pos: ep } = items[eitem].kind {
                        if exit_reads[ep].contains(&d) {
                            add_edge(&mut edges, e, id, 1);
                        }
                    }
                }
                last_def.insert(d, id);
                uses_since_def.remove(&d);
            }
        }

        // Terminator.
        let internal_jump = pos + 1 < sb.len()
            && matches!(block.term, Terminator::Jump { target } if target == sb.blocks[pos + 1]);
        if internal_jump {
            continue;
        }
        let id = items.len() as u32;
        let latency = 1;
        items.push(Item { kind: ItemKind::Exit { pos }, class: OpClass::of_term(&block.term), latency });
        exit_items[pos] = Some(id);

        // Condition/selector/return-value uses.
        for r in block.term.uses() {
            if let Some(&d) = last_def.get(&r) {
                let lat = items[d as usize].latency;
                add_edge(&mut edges, d, id, lat);
            }
            uses_since_def.entry(r).or_default().push(id);
        }
        // Producers of off-trace-read values are pinned above the exit.
        // The off-trace reader (compensation stub or target block) executes
        // at least one cycle after the exit, so the pin latency is one less
        // than the producer's result latency.
        for &r in &exit_reads[pos] {
            if let Some(&d) = last_def.get(&r) {
                let lat = items[d as usize].latency.saturating_sub(1);
                add_edge(&mut edges, d, id, lat);
            }
        }
        // Side effects above stay above (same-cycle allowed: ops issued in
        // the taken-exit cycle still execute on our VLIW).
        for &(s, _) in &prior_stores {
            add_edge(&mut edges, s, id, 0);
        }
        if let Some(o) = last_out {
            add_edge(&mut edges, o, id, 0);
        }
        if let Some(c) = last_call {
            add_edge(&mut edges, c, id, 0);
        }
        // Exits stay ordered.
        if let Some(&e) = prior_exits.last() {
            add_edge(&mut edges, e, id, 1);
        }
        prior_exits.push(id);
    }

    Ddg { items, edges, exit_items }
}

impl Ddg {
    /// Number of schedulable items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the superblock has no items (cannot happen for valid
    /// superblocks; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Critical-path height of every item (longest latency-weighted path to
    /// any sink).
    pub fn heights(&self) -> Vec<u32> {
        let mut h = vec![0u32; self.items.len()];
        // Items are topologically ordered; scan edges in reverse.
        for e in self.edges.iter().rev() {
            let cand = h[e.to as usize] + e.latency;
            if cand > h[e.from as usize] {
                h[e.from as usize] = cand;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, BlockId, Operand, Program};

    fn has_edge(ddg: &Ddg, from: u32, to: u32) -> bool {
        ddg.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Single block: a = 1; b = a + 1; store b; load c; out c; ret
    fn straight() -> (Program, SuperblockSpec) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let b = f.reg();
        let c = f.reg();
        let addr = f.reg();
        f.mov(addr, 16i64);
        f.mov(a, 1i64);
        f.alu(AluOp::Add, b, a, 1i64);
        f.store(b, addr, 0);
        f.load(c, addr, 0);
        f.out(c);
        f.ret(None);
        let main = f.finish();
        (pb.finish(main), SuperblockSpec::singleton(BlockId::new(0)))
    }

    #[test]
    fn true_memory_and_output_edges() {
        let (p, sb) = straight();
        let proc = p.proc(p.entry);
        let exit_reads = vec![Vec::new()];
        let ddg = build_ddg(proc, &sb, &exit_reads, &MachineConfig::paper(), true);
        // Items: 0 mov addr, 1 mov a, 2 add b, 3 store, 4 load, 5 out, 6 ret.
        assert_eq!(ddg.len(), 7);
        assert!(has_edge(&ddg, 1, 2), "a -> add");
        assert!(has_edge(&ddg, 2, 3), "b -> store");
        assert!(has_edge(&ddg, 3, 4), "store -> load same address");
        assert!(has_edge(&ddg, 4, 5), "load -> out");
        assert!(has_edge(&ddg, 3, 6), "store pinned above exit");
        assert!(has_edge(&ddg, 5, 6), "out pinned above exit");
        assert_eq!(ddg.exit_items[0], Some(6));
    }

    #[test]
    fn disjoint_offsets_break_memory_edge() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let addr = f.reg();
        let c = f.reg();
        f.mov(addr, 16i64);
        f.store(Operand::Imm(1), addr, 0);
        f.load(c, addr, 8); // different offset, same base: disjoint
        f.out(c);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::singleton(BlockId::new(0));
        let ddg = build_ddg(proc, &sb, &[Vec::new()], &MachineConfig::paper(), true);
        // Items: 0 mov, 1 store, 2 load, 3 out, 4 ret.
        assert!(!has_edge(&ddg, 1, 2), "provably disjoint accesses");
    }

    /// Two-block superblock with an early exit between a store and a load.
    fn with_exit(speculate: bool) -> (Ddg, u32, u32) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let addr = f.reg();
        let v = f.reg();
        let fall = f.new_block();
        let off = f.new_block();
        f.mov(addr, 16i64);
        f.branch(pps_ir::Reg::new(0), off, fall);
        f.switch_to(fall);
        f.load(v, addr, 0);
        f.out(v);
        f.ret(None);
        f.switch_to(off);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), fall]);
        let exit_reads = vec![Vec::new(), Vec::new()];
        let ddg = build_ddg(proc, &sb, &exit_reads, &MachineConfig::paper(), speculate);
        // Items: 0 mov addr, 1 branch(exit), 2 load, 3 out, 4 ret(exit).
        (ddg, 1, 2)
    }

    #[test]
    fn load_pinned_without_speculation() {
        let (ddg, exit, load) = with_exit(false);
        assert!(has_edge(&ddg, exit, load));
    }

    #[test]
    fn load_floats_with_speculation() {
        let (ddg, exit, load) = with_exit(true);
        assert!(!has_edge(&ddg, exit, load));
        // But the out stays pinned below the exit.
        assert!(has_edge(&ddg, exit, 3));
        // Exits stay ordered.
        assert!(has_edge(&ddg, 1, 4));
    }

    #[test]
    fn residual_anti_output_deps() {
        // Unrenamed: a = 1; out a; a = 2; out a. Anti edge out->def, output
        // edge def->def.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        f.mov(a, 1i64);
        f.out(a);
        f.mov(a, 2i64);
        f.out(a);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::singleton(BlockId::new(0));
        let ddg = build_ddg(proc, &sb, &[Vec::new()], &MachineConfig::paper(), true);
        // Items: 0 mov, 1 out, 2 mov, 3 out, 4 ret.
        assert!(has_edge(&ddg, 1, 2), "anti dep use->redef");
        assert!(has_edge(&ddg, 0, 2), "output dep def->redef");
        assert!(has_edge(&ddg, 2, 3), "true dep");
        assert!(has_edge(&ddg, 1, 3), "out ordering");
    }

    #[test]
    fn exit_read_pins_producer() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.reg();
        let fall = f.new_block();
        let off = f.new_block();
        f.mov(a, 1i64);
        f.branch(pps_ir::Reg::new(0), off, fall);
        f.switch_to(fall);
        f.ret(None);
        f.switch_to(off);
        f.out(a);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), fall]);
        // Exit at position 0 reads `a` off-trace.
        let exit_reads = vec![vec![a], Vec::new()];
        let ddg = build_ddg(proc, &sb, &exit_reads, &MachineConfig::paper(), true);
        // Items: 0 mov a, 1 branch, 2 ret.
        assert!(has_edge(&ddg, 0, 1), "producer pinned above exit");
    }

    #[test]
    fn internal_jump_elided() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let nxt = f.new_block();
        f.nop();
        f.jump(nxt);
        f.switch_to(nxt);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let proc = p.proc(p.entry);
        let sb = SuperblockSpec::new(vec![BlockId::new(0), nxt]);
        let ddg = build_ddg(proc, &sb, &[Vec::new(), Vec::new()], &MachineConfig::paper(), true);
        // Items: nop, ret. The internal jump is gone.
        assert_eq!(ddg.len(), 2);
        assert_eq!(ddg.exit_items[0], None);
        assert_eq!(ddg.exit_items[1], Some(1));
    }

    #[test]
    fn heights_reflect_critical_path() {
        let (p, sb) = straight();
        let proc = p.proc(p.entry);
        let ddg = build_ddg(proc, &sb, &[Vec::new()], &MachineConfig::paper(), true);
        let h = ddg.heights();
        // Chain: mov a(1) -> add(2) -> store(3) -> load(4) -> out(5) -> ret.
        assert!(h[1] > h[2]);
        assert!(h[2] > h[3]);
        assert!(h[3] > h[4]);
        assert_eq!(h[6], 0, "sink height zero");
    }
}
