//! The superblock region type shared between formation and compaction.

use pps_ir::analysis::Cfg;
use pps_ir::{BlockId, Proc, Terminator};

/// A superblock: a sequence of basic blocks with a single entry (the head)
/// and possibly many exits.
///
/// Invariants (checked by [`validate`](Self::validate)):
/// - blocks are non-empty and pairwise distinct;
/// - each block except the last has the next block as a CFG successor (the
///   on-trace direction);
/// - no block except the head has a predecessor outside the superblock
///   other than via the previous block (single entry — established by tail
///   duplication during formation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperblockSpec {
    /// Blocks in on-trace order; the first is the head.
    pub blocks: Vec<BlockId>,
}

impl SuperblockSpec {
    /// Creates a superblock from an on-trace block sequence.
    ///
    /// # Panics
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<BlockId>) -> Self {
        assert!(!blocks.is_empty(), "superblock must have at least one block");
        SuperblockSpec { blocks }
    }

    /// A single-block superblock.
    pub fn singleton(block: BlockId) -> Self {
        SuperblockSpec { blocks: vec![block] }
    }

    /// The head (single entry) block.
    pub fn head(&self) -> BlockId {
        self.blocks[0]
    }

    /// The last block.
    pub fn last(&self) -> BlockId {
        *self.blocks.last().expect("non-empty")
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false ([`new`](Self::new) rejects empty sequences); present
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Checks the superblock invariants against `proc`.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, proc: &Proc, cfg: &Cfg) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("empty superblock".into());
        }
        for (i, &b) in self.blocks.iter().enumerate() {
            if b.index() >= proc.blocks.len() {
                return Err(format!("block {b} out of range"));
            }
            if self.blocks[..i].contains(&b) {
                return Err(format!("block {b} appears twice"));
            }
        }
        for w in self.blocks.windows(2) {
            let (a, b) = (w[0], w[1]);
            if !cfg.succs[a.index()].contains(&b) {
                return Err(format!("{b} is not a CFG successor of {a}"));
            }
            if let Terminator::Jump { target } = proc.block(a).term {
                debug_assert_eq!(target, b);
            }
        }
        // Single entry: interior blocks may only be reached from their
        // predecessor within the superblock.
        for (i, &b) in self.blocks.iter().enumerate().skip(1) {
            let prev = self.blocks[i - 1];
            for &p in &cfg.preds[b.index()] {
                if p != prev {
                    return Err(format!(
                        "side entrance: {b} (position {i}) reached from {p}, not only {prev}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Static instruction count of the superblock including terminators,
    /// excluding elided internal jumps (an internal unconditional jump to
    /// the next block costs nothing after layout).
    pub fn static_size(&self, proc: &Proc) -> usize {
        let mut n = 0;
        for (i, &b) in self.blocks.iter().enumerate() {
            let block = proc.block(b);
            n += block.instrs.len();
            let elided = i + 1 < self.blocks.len()
                && matches!(block.term, Terminator::Jump { target } if target == self.blocks[i+1]);
            if !elided {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{Program, Reg};

    /// entry --(br)--> a | b; a -> c; b -> c; c: ret. Also entry2 jumps
    /// into a (side entrance for testing).
    fn prog(with_side_entrance: bool) -> (Program, Vec<BlockId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        let c = f.new_block();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.jump(c);
        f.switch_to(b);
        if with_side_entrance {
            f.jump(a);
        } else {
            f.jump(c);
        }
        f.switch_to(c);
        f.ret(None);
        let main = f.finish();
        (pb.finish(main), vec![BlockId::new(0), a, b, c])
    }

    #[test]
    fn valid_superblock_passes() {
        let (p, ids) = prog(false);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let sb = SuperblockSpec::new(vec![ids[0], ids[1]]);
        assert_eq!(sb.validate(proc, &cfg), Ok(()));
        assert_eq!(sb.head(), ids[0]);
        assert_eq!(sb.last(), ids[1]);
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn side_entrance_rejected() {
        let (p, ids) = prog(true);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let sb = SuperblockSpec::new(vec![ids[0], ids[1]]);
        let err = sb.validate(proc, &cfg).unwrap_err();
        assert!(err.contains("side entrance"), "{err}");
    }

    #[test]
    fn join_block_is_side_entrance() {
        // c has preds a and b; [entry, a, c] therefore has a side entrance
        // through b in the no-side-entrance program too.
        let (p, ids) = prog(false);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let sb = SuperblockSpec::new(vec![ids[0], ids[1], ids[3]]);
        // validate above said Ok for this shape? No: c is reached from b as
        // well, so it must fail.
        let r = sb.validate(proc, &cfg);
        assert!(r.is_err());
    }

    #[test]
    fn non_successor_rejected() {
        let (p, ids) = prog(false);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let sb = SuperblockSpec::new(vec![ids[1], ids[2]]);
        assert!(sb.validate(proc, &cfg).is_err());
    }

    #[test]
    fn duplicate_block_rejected() {
        let (p, ids) = prog(false);
        let proc = p.proc(p.entry);
        let cfg = Cfg::compute(proc);
        let sb = SuperblockSpec { blocks: vec![ids[0], ids[0]] };
        assert!(sb.validate(proc, &cfg).unwrap_err().contains("twice"));
    }

    #[test]
    fn static_size_elides_internal_jumps() {
        let (p, ids) = prog(false);
        let proc = p.proc(p.entry);
        // a: [jump c] -> internal jump elided when followed by c.
        let sb = SuperblockSpec::new(vec![ids[1], ids[3]]);
        // a has 0 instrs + elided jump, c has 0 instrs + ret = 1.
        assert_eq!(sb.static_size(proc), 1);
        let single = SuperblockSpec::singleton(ids[1]);
        assert_eq!(single.static_size(proc), 1);
    }
}
