//! Hardware trace-cache model (paper §6's "ramifications" discussion).
//!
//! The paper closes by noting that trace caches [Rotenberg et al.] perform
//! in hardware "an action similar to the trace-selection step of our
//! trace-formation phase", and that heuristics for identifying and
//! enlarging dynamic traces are an open question. This module makes the
//! connection measurable: a simplified fill-unit + trace-cache model runs
//! over the dynamic block stream of a program, and the harness compares
//! trace-cache effectiveness across software formation schemes (does
//! software superblock formation help or hinder a hardware trace cache?).
//!
//! Model: a direct-mapped cache of `entries` traces. A trace is a
//! contiguous run of basic blocks with at most `max_instrs` instructions
//! and `max_branches` conditional/multiway branches, never spanning a
//! procedure call or return. Fetch looks up the next block's entry; a hit
//! requires the cached trace to match the actual upcoming block sequence
//! (perfect branch-prediction assumption, as in the original limit
//! studies). On a miss, the fill unit installs the trace that execution
//! actually followed.

use pps_ir::{BlockId, ProcId, Program, TraceSink};

/// Trace-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// Number of trace entries (direct-mapped).
    pub entries: usize,
    /// Maximum instructions per trace.
    pub max_instrs: u32,
    /// Maximum counted branches per trace.
    pub max_branches: u32,
}

impl Default for TraceCacheConfig {
    /// A Rotenberg-style 64-entry, 16-instruction, 3-branch trace cache.
    fn default() -> Self {
        TraceCacheConfig { entries: 64, max_instrs: 16, max_branches: 3 }
    }
}

/// Aggregate trace-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Trace-cache lookups.
    pub lookups: u64,
    /// Lookups whose cached trace matched the executed path.
    pub hits: u64,
    /// Instructions delivered by the trace cache.
    pub instrs_from_cache: u64,
    /// Total instructions fetched.
    pub instrs_total: u64,
    /// Traces installed by the fill unit.
    pub fills: u64,
}

impl TraceCacheStats {
    /// Fraction of lookups that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of instructions delivered from the trace cache.
    pub fn instr_coverage(&self) -> f64 {
        if self.instrs_total == 0 {
            0.0
        } else {
            self.instrs_from_cache as f64 / self.instrs_total as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Entry {
    /// Cached block run (proc-local; one entry never crosses procedures).
    blocks: Vec<(ProcId, BlockId)>,
    instrs: u32,
}

/// The trace-cache simulator. Implements [`TraceSink`]: attach it to an
/// interpreter run of the (original or transformed) program.
#[derive(Debug)]
pub struct TraceCacheSim {
    config: TraceCacheConfig,
    /// Per-(proc, block): instruction count and branch-ness.
    instr_count: Vec<Vec<u32>>,
    is_branch: Vec<Vec<bool>>,
    cache: Vec<Option<Entry>>,
    /// Buffered upcoming blocks (the simulator needs lookahead to verify
    /// matches; call/return boundaries flush).
    buffer: Vec<(ProcId, BlockId)>,
    stats: TraceCacheStats,
}

impl TraceCacheSim {
    /// Creates a simulator for `program`.
    pub fn new(program: &Program, config: TraceCacheConfig) -> Self {
        TraceCacheSim {
            config,
            instr_count: program
                .procs
                .iter()
                .map(|p| p.blocks.iter().map(|b| b.len_with_term() as u32).collect())
                .collect(),
            is_branch: program
                .procs
                .iter()
                .map(|p| p.blocks.iter().map(|b| b.term.is_counted_branch()).collect())
                .collect(),
            cache: vec![None; config.entries],
            buffer: Vec::new(),
            stats: TraceCacheStats::default(),
        }
    }

    fn slot(&self, key: (ProcId, BlockId)) -> usize {
        let h = (key.0.index() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.index() as u64)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
        (h % self.cache.len() as u64) as usize
    }

    /// Builds the maximal legal trace starting at `buffer[start]`.
    fn build_trace(&self, start: usize) -> Entry {
        let mut blocks = Vec::new();
        let mut instrs = 0u32;
        let mut branches = 0u32;
        for &(p, b) in &self.buffer[start..] {
            let bi = self.instr_count[p.index()][b.index()];
            if !blocks.is_empty() && instrs + bi > self.config.max_instrs {
                break;
            }
            blocks.push((p, b));
            instrs += bi;
            if self.is_branch[p.index()][b.index()] {
                branches += 1;
                if branches >= self.config.max_branches {
                    break;
                }
            }
        }
        Entry { blocks, instrs }
    }

    /// Processes buffered blocks, leaving `keep` of lookahead unprocessed.
    fn drain(&mut self, keep: usize) {
        let mut pos = 0;
        while self.buffer.len().saturating_sub(pos) > keep {
            let key = self.buffer[pos];
            self.stats.lookups += 1;
            let slot = self.slot(key);
            let hit = self.cache[slot].as_ref().is_some_and(|e| {
                !e.blocks.is_empty()
                    && pos + e.blocks.len() <= self.buffer.len()
                    && self.buffer[pos..pos + e.blocks.len()] == e.blocks[..]
            });
            if hit {
                let e = self.cache[slot].as_ref().expect("hit entry");
                self.stats.hits += 1;
                self.stats.instrs_from_cache += u64::from(e.instrs);
                self.stats.instrs_total += u64::from(e.instrs);
                pos += e.blocks.len();
            } else {
                // Conventional fetch of one block; the fill unit installs
                // the trace execution actually follows.
                let built = self.build_trace(pos);
                self.stats.instrs_total +=
                    u64::from(self.instr_count[key.0.index()][key.1.index()]);
                if !built.blocks.is_empty() {
                    self.cache[slot] = Some(built);
                    self.stats.fills += 1;
                }
                pos += 1;
            }
        }
        self.buffer.drain(..pos);
    }

    /// Finalizes the run and returns the statistics.
    pub fn finish(mut self) -> TraceCacheStats {
        self.drain(0);
        self.stats
    }
}

impl TraceSink for TraceCacheSim {
    fn enter_proc(&mut self, _proc: ProcId) {
        // Traces never span activations: flush the lookahead.
        self.drain(0);
    }

    fn exit_proc(&mut self, _proc: ProcId) {
        self.drain(0);
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        self.buffer.push((proc, block));
        // Keep enough lookahead to verify a maximal trace match.
        let keep = self.config.max_instrs as usize;
        if self.buffer.len() > 4 * keep {
            self.drain(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};

    fn loopy(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.out(i);
        f.ret(None);
        let main = f.finish();
        pb.finish(main)
    }

    fn run(p: &Program, config: TraceCacheConfig) -> TraceCacheStats {
        let mut sim = TraceCacheSim::new(p, config);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[], &mut sim)
            .unwrap();
        sim.finish()
    }

    #[test]
    fn repetitive_loop_hits_after_warmup() {
        let p = loopy(500);
        let stats = run(&p, TraceCacheConfig::default());
        assert!(stats.lookups > 0);
        assert!(
            stats.hit_rate() > 0.9,
            "steady loop should hit: {:.3}",
            stats.hit_rate()
        );
        assert!(stats.instr_coverage() > 0.9);
        assert!(stats.fills >= 1);
    }

    #[test]
    fn accounting_is_consistent() {
        let p = loopy(100);
        let stats = run(&p, TraceCacheConfig::default());
        assert!(stats.hits <= stats.lookups);
        assert!(stats.instrs_from_cache <= stats.instrs_total);
        // Every executed instruction is fetched exactly once.
        let r = Interp::new(&p, ExecConfig::default()).run(&[]).unwrap();
        assert_eq!(stats.instrs_total, r.counts.instrs);
    }

    #[test]
    fn tiny_cache_thrashes() {
        // With a single entry, alternating trace shapes evict each other.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let head = f.new_block();
        let a = f.new_block();
        let b = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::Rem, m, i, 2i64);
        f.branch(m, a, b);
        f.switch_to(a);
        f.jump(latch);
        f.switch_to(b);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(400));
        f.branch(c, head, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let small = run(&p, TraceCacheConfig { entries: 1, ..Default::default() });
        let big = run(&p, TraceCacheConfig { entries: 64, ..Default::default() });
        assert!(
            big.hit_rate() > small.hit_rate(),
            "more entries must help: {:.3} vs {:.3}",
            big.hit_rate(),
            small.hit_rate()
        );
    }

    #[test]
    fn trace_length_limits_respected() {
        let p = loopy(50);
        let sim = TraceCacheSim::new(&p, TraceCacheConfig::default());
        // build_trace over a synthetic buffer: limits enforced.
        let mut s = sim;
        for _ in 0..40 {
            s.buffer.push((p.entry, pps_ir::BlockId::new(1)));
            s.buffer.push((p.entry, pps_ir::BlockId::new(2)));
        }
        let e = s.build_trace(0);
        assert!(e.instrs <= s.config.max_instrs);
        let branches = e
            .blocks
            .iter()
            .filter(|(pp, b)| s.is_branch[pp.index()][b.index()])
            .count() as u32;
        assert!(branches <= s.config.max_branches);
    }
}
