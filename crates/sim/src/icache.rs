//! Direct-mapped instruction-cache simulation.

use pps_machine::ICacheConfig;

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Instruction-fetch accesses.
    pub accesses: u64,
    /// Line misses.
    pub misses: u64,
    /// Total miss-penalty cycles.
    pub penalty_cycles: u64,
}

impl CacheStats {
    /// Misses per instruction access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A direct-mapped instruction cache over byte addresses.
#[derive(Debug, Clone)]
pub struct DirectMappedICache {
    config: ICacheConfig,
    /// Resident line per slot (`u64::MAX` = empty).
    tags: Vec<u64>,
    stats: CacheStats,
    /// Batched-fetch combiner: a contiguous run `(base, n_instrs)` not yet
    /// applied to the tag array. See [`Self::fetch_batched`].
    pending: Option<(u64, u32)>,
}

impl DirectMappedICache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: ICacheConfig) -> Self {
        DirectMappedICache {
            tags: vec![u64::MAX; config.num_lines()],
            config,
            stats: CacheStats::default(),
            pending: None,
        }
    }

    /// Fetches `n_instrs` consecutive instructions starting at byte address
    /// `base`: one access per instruction; a line miss is charged once per
    /// line transition.
    pub fn fetch_range(&mut self, base: u64, n_instrs: u32) {
        if n_instrs == 0 {
            return;
        }
        let ib = self.config.instr_bytes as u64;
        self.stats.accesses += u64::from(n_instrs);
        let first_line = self.config.line_of(base);
        let last_line = self.config.line_of(base + ib * u64::from(n_instrs) - 1);
        for line in first_line..=last_line {
            let slot = self.config.slot_of_line(line);
            if self.tags[slot] != line {
                self.tags[slot] = line;
                self.stats.misses += 1;
                self.stats.penalty_cycles += self.config.miss_penalty;
            }
        }
    }

    /// Like [`Self::fetch_range`], but fetches that extend the previous
    /// batched fetch contiguously are merged and applied to the tag array
    /// in one pass. Statistics are identical to issuing each fetch with
    /// `fetch_range`: accesses add, and the boundary line between two
    /// contiguous runs — a guaranteed hit on the second run, since the
    /// first just installed its tag — is simply not re-probed. Call
    /// [`Self::flush`] before reading [`Self::stats`].
    pub fn fetch_batched(&mut self, base: u64, n_instrs: u32) {
        if n_instrs == 0 {
            return;
        }
        let ib = self.config.instr_bytes as u64;
        match self.pending {
            Some((b, n)) if base == b + ib * u64::from(n) => {
                self.pending = Some((b, n + n_instrs));
            }
            _ => {
                self.flush();
                self.pending = Some((base, n_instrs));
            }
        }
    }

    /// Applies any pending batched fetch to the tag array.
    pub fn flush(&mut self) {
        if let Some((base, n)) = self.pending.take() {
            self.fetch_range(base, n);
        }
    }

    /// Statistics so far. With [`Self::fetch_batched`] in use, call
    /// [`Self::flush`] first.
    pub fn stats(&self) -> CacheStats {
        debug_assert!(self.pending.is_none(), "flush() before stats()");
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DirectMappedICache {
        // 4 lines of 32 bytes = 128-byte cache.
        DirectMappedICache::new(ICacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            miss_penalty: 6,
            instr_bytes: 4,
        })
    }

    #[test]
    fn compulsory_miss_then_hits() {
        let mut c = small();
        c.fetch_range(0, 8); // exactly one line
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 8);
        c.fetch_range(0, 8);
        assert_eq!(c.stats().misses, 1, "second fetch hits");
        assert_eq!(c.stats().accesses, 16);
        assert_eq!(c.stats().penalty_cycles, 6);
    }

    #[test]
    fn range_spanning_lines_misses_per_line() {
        let mut c = small();
        c.fetch_range(16, 8); // bytes 16..48: lines 0 and 1
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = small();
        c.fetch_range(0, 8); // line 0 -> slot 0
        c.fetch_range(128, 8); // line 4 -> slot 0 (conflict)
        c.fetch_range(0, 8); // line 0 again: miss (evicted)
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn zero_length_fetch_is_free() {
        let mut c = small();
        c.fetch_range(0, 0);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn batched_fetches_match_unbatched_exactly() {
        // A fetch stream mixing contiguous runs (mergeable), jumps, and
        // conflicting lines; batched and unbatched must agree on every
        // statistic and on the final tag state (observed via re-fetch).
        let stream: &[(u64, u32)] = &[
            (0, 8),    // line 0
            (32, 8),   // line 1 — contiguous with previous, merges
            (64, 4),   // line 2 — contiguous again
            (128, 8),  // jump: line 4, conflicts with line 0
            (0, 8),    // back to line 0: miss (evicted)
            (0, 4),    // hit, contiguous with nothing before it spatially
            (16, 12),  // contiguous extension crossing into line 1
            (300, 0),  // zero-length: ignored, must not break a run
            (64, 2),   // non-contiguous jump
        ];
        let mut plain = small();
        for &(b, n) in stream {
            plain.fetch_range(b, n);
        }
        let mut batched = small();
        for &(b, n) in stream {
            batched.fetch_batched(b, n);
        }
        batched.flush();
        assert_eq!(batched.stats(), plain.stats());
        // Same resident lines afterwards.
        assert_eq!(batched.tags, plain.tags);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.fetch_range(0, 8);
        c.fetch_range(0, 8);
        let s = c.stats();
        assert!((s.miss_rate() - 1.0 / 16.0).abs() < 1e-12);
    }
}
