//! Pettis–Hansen-style code layout.
//!
//! The paper's compiler runs a Pettis & Hansen procedure-placement
//! optimization before measuring the instruction cache. We implement the
//! chain-merging variant at superblock granularity: within each procedure,
//! superblocks that frequently transfer to one another are chained so hot
//! fall-throughs stay adjacent; procedures are then ordered by activation
//! count (hottest first, entry procedure leading).

use crate::cycle::Transitions;
use pps_compact::CompactedProgram;
use pps_ir::{ProcId, Program};
use pps_machine::MachineConfig;

/// Base byte address per superblock.
#[derive(Debug, Clone)]
pub struct Layout {
    /// `addr[proc][sb]` — base address of that superblock's code.
    addr: Vec<Vec<u64>>,
    /// Total laid-out size in bytes.
    total_bytes: u64,
}

impl Layout {
    /// Base address of superblock `sb` of `proc`.
    pub fn base(&self, proc: ProcId, sb: u32) -> u64 {
        self.addr[proc.index()][sb as usize]
    }

    /// Total code size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Builds a layout from training-run transition counts.
    ///
    /// Superblocks within a procedure are chained greedily by descending
    /// transition weight (Pettis–Hansen chain merging); chains are emitted
    /// hottest-first with the entry superblock's chain leading. Procedures
    /// are ordered by activation count, the program entry first.
    pub fn build(
        program: &Program,
        compacted: &CompactedProgram,
        transitions: &Transitions,
        machine: &MachineConfig,
    ) -> Layout {
        let ib = machine.icache.instr_bytes as u64;
        let mut addr: Vec<Vec<u64>> = compacted
            .procs
            .iter()
            .map(|p| vec![0u64; p.superblocks.len()])
            .collect();

        // Procedure order: entry first, then by activation count.
        let mut proc_order: Vec<usize> = (0..program.procs.len()).collect();
        proc_order.sort_by_key(|&pi| {
            let pid = ProcId::new(pi as u32);
            let is_entry = pid == program.entry;
            (
                std::cmp::Reverse(u64::from(is_entry)),
                std::cmp::Reverse(transitions.activations(pid)),
                pi,
            )
        });

        let mut cursor: u64 = 0;
        for pi in proc_order {
            let pid = ProcId::new(pi as u32);
            let cp = &compacted.procs[pi];
            let n = cp.superblocks.len();
            if n == 0 {
                continue;
            }

            // Chain merging.
            let mut chain_of: Vec<usize> = (0..n).collect();
            let mut chains: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            let mut weight: Vec<u64> = (0..n)
                .map(|i| transitions.entries(pid, i as u32))
                .collect();
            let mut edges: Vec<(u64, u32, u32)> = transitions
                .iter_proc(pid)
                .map(|((a, b), w)| (w, a, b))
                .collect();
            edges.sort_by(|x, y| y.cmp(x));
            for (w, a, b) in edges {
                let (a, b) = (a as usize, b as usize);
                if a >= n || b >= n {
                    continue;
                }
                let ca = chain_of[a];
                let cb = chain_of[b];
                if ca == cb {
                    continue;
                }
                // Merge only tail-of(ca) == a with head-of(cb) == b.
                if chains[ca].last() == Some(&a) && chains[cb].first() == Some(&b) {
                    let moved = std::mem::take(&mut chains[cb]);
                    for &m in &moved {
                        chain_of[m] = ca;
                    }
                    chains[ca].extend(moved);
                    weight[ca] += weight[cb] + w;
                    weight[cb] = 0;
                }
            }

            // Entry chain first, then by weight.
            let entry_sb = cp
                .location(program.proc(pid).entry)
                .map(|(sb, _)| sb as usize)
                .unwrap_or(0);
            let entry_chain = chain_of[entry_sb];
            let mut chain_ids: Vec<usize> =
                (0..chains.len()).filter(|&c| !chains[c].is_empty()).collect();
            chain_ids.sort_by_key(|&c| {
                (
                    std::cmp::Reverse(u64::from(c == entry_chain)),
                    std::cmp::Reverse(weight[c]),
                    c,
                )
            });

            for c in chain_ids {
                for &sb in &chains[c] {
                    addr[pi][sb] = cursor;
                    cursor += u64::from(cp.superblocks[sb].schedule.n_items) * ib;
                }
            }
        }
        Layout { addr, total_bytes: cursor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_compact::{compact_program, singleton_partition, CompactConfig};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::Reg;

    #[test]
    fn hot_successor_laid_out_adjacent() {
        // entry branches to hot/cold; both return.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let hot = f.new_block();
        let cold = f.new_block();
        f.branch(Reg::new(0), hot, cold);
        f.switch_to(hot);
        f.ret(None);
        f.switch_to(cold);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();

        // Fake transitions: entry->hot dominates.
        let mut tr = Transitions::new(&compacted);
        let pid = p.entry;
        let (entry_sb, _) = compacted.proc(pid).location(pps_ir::BlockId::new(0)).unwrap();
        let (hot_sb, _) = compacted.proc(pid).location(hot).unwrap();
        let (cold_sb, _) = compacted.proc(pid).location(cold).unwrap();
        tr.record_activation(pid);
        for _ in 0..100 {
            tr.record(pid, entry_sb, hot_sb);
        }
        tr.record(pid, entry_sb, cold_sb);

        let layout = Layout::build(&p, &compacted, &tr, &m);
        let a_entry = layout.base(pid, entry_sb);
        let a_hot = layout.base(pid, hot_sb);
        let a_cold = layout.base(pid, cold_sb);
        let entry_size =
            u64::from(compacted.proc(pid).superblocks[entry_sb as usize].schedule.n_items) * 4;
        assert_eq!(a_hot, a_entry + entry_size, "hot block directly follows entry");
        assert!(a_cold > a_hot, "cold block placed after the hot chain");
        assert!(layout.total_bytes() > 0);
    }

    #[test]
    fn entry_procedure_laid_out_first() {
        // Two procs; helper is hotter by activation count, but the entry
        // procedure must still lead the layout.
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare_proc("helper", 0);
        let mut h = pb.begin_declared(helper);
        h.ret(None);
        h.finish();
        let mut f = pb.begin_proc("main", 0);
        f.call(helper, vec![], None);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let mut tr = Transitions::new(&compacted);
        for _ in 0..100 {
            tr.record_activation(helper);
        }
        tr.record_activation(p.entry);
        let layout = Layout::build(&p, &compacted, &tr, &m);
        assert_eq!(layout.base(p.entry, 0), 0, "entry proc at address 0");
        assert!(layout.base(helper, 0) > 0);
    }

    #[test]
    fn layout_is_dense_and_non_overlapping() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let a = f.new_block();
        let b = f.new_block();
        f.branch(Reg::new(0), a, b);
        f.switch_to(a);
        f.ret(None);
        f.switch_to(b);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let tr = Transitions::new(&compacted);
        let layout = Layout::build(&p, &compacted, &tr, &m);
        // Collect (base, size) pairs; they must tile [0, total) exactly.
        let pid = p.entry;
        let mut spans: Vec<(u64, u64)> = compacted
            .proc(pid)
            .superblocks
            .iter()
            .enumerate()
            .map(|(i, sb)| (layout.base(pid, i as u32), u64::from(sb.schedule.n_items) * 4))
            .collect();
        spans.sort();
        let mut cursor = 0;
        for (base, size) in spans {
            assert_eq!(base, cursor, "dense, non-overlapping layout");
            cursor += size;
        }
        assert_eq!(cursor, layout.total_bytes());
    }
}
