#![warn(missing_docs)]

//! Compiled-simulation analog (paper §3.2).
//!
//! The paper measures cycle counts by compiled simulation on a real Alpha.
//! Here, the reference interpreter executes the *transformed* program (so
//! semantics are exact) while a [`cycle::CycleSim`] trace sink charges
//! cycles from the compacted schedules: every dynamic superblock traversal
//! leaves through exactly one exit, and leaving through the terminator
//! scheduled at cycle `c` costs `c + 1` cycles.
//!
//! The instruction cache (32KB direct-mapped, 32-byte lines, 6-cycle miss
//! penalty) is simulated over the fetch stream implied by the schedules:
//! leaving a superblock at exit `e` fetches the prefix of instructions
//! scheduled at cycles `<= cycle(e)`, laid out in schedule order at the
//! superblock's base address from a Pettis–Hansen-style [`layout`].
//!
//! [`simulate`] packages one run; [`metrics`] aggregates the Figure 7
//! statistics (dynamically-weighted blocks-executed-per-superblock and
//! superblock size).

pub mod cycle;
pub mod icache;
pub mod layout;
pub mod metrics;
pub mod tracecache;

use pps_compact::CompactedProgram;
use pps_ir::interp::{ExecConfig, ExecError, ExecResult};
use pps_ir::{Exec, Program};
use pps_machine::MachineConfig;
use pps_obs::Obs;

pub use cycle::{CycleSim, Transitions};
pub use icache::{CacheStats, DirectMappedICache};
pub use layout::Layout;
pub use metrics::SbDynStats;
pub use tracecache::{TraceCacheConfig, TraceCacheSim, TraceCacheStats};

/// The complete outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Observable execution result (outputs, return value, dynamic counts).
    pub exec: ExecResult,
    /// Cycle count with a perfect instruction cache.
    pub cycles: u64,
    /// Instruction-cache statistics, when a layout was supplied.
    pub icache: Option<CacheStats>,
    /// Inter-superblock transition counts (for layout construction).
    pub transitions: Transitions,
    /// Figure 7 statistics.
    pub sb_stats: SbDynStats,
}

impl SimOutcome {
    /// Cycle count including instruction-cache miss penalties (equals
    /// [`cycles`](Self::cycles) when no layout was supplied).
    pub fn cycles_with_icache(&self) -> u64 {
        self.cycles + self.icache.as_ref().map_or(0, |c| c.penalty_cycles)
    }

    /// Instruction-cache miss rate (per instruction fetched), if simulated.
    pub fn miss_rate(&self) -> Option<f64> {
        self.icache.as_ref().map(CacheStats::miss_rate)
    }

    /// Records this outcome into `obs` as `sim.*` counters: cycle count,
    /// instruction-cache statistics (when simulated), and the dynamic
    /// superblock statistics behind Figure 7.
    pub fn record_metrics(&self, obs: &Obs) {
        obs.counter("sim.cycles", self.cycles);
        if let Some(ic) = &self.icache {
            obs.counter("sim.icache.accesses", ic.accesses);
            obs.counter("sim.icache.misses", ic.misses);
            obs.counter("sim.icache.penalty_cycles", ic.penalty_cycles);
        }
        obs.counter("sim.sb.traversals", self.sb_stats.traversals);
        obs.counter("sim.sb.blocks_executed", self.sb_stats.blocks_executed);
        obs.counter("sim.sb.size_blocks", self.sb_stats.size_blocks);
    }
}

/// Runs `program` on `args`, charging cycles from `compacted`'s schedules.
/// Pass a [`Layout`] to simulate the instruction cache as well.
///
/// # Errors
/// Propagates interpreter errors ([`ExecError`]).
pub fn simulate(
    program: &Program,
    compacted: &CompactedProgram,
    machine: &MachineConfig,
    layout: Option<&Layout>,
    args: &[i64],
) -> Result<SimOutcome, ExecError> {
    simulate_obs(program, compacted, machine, layout, args, &Obs::noop())
}

/// [`simulate`] with observability: the run executes under a `simulate`
/// span and the outcome's `sim.*` metrics are recorded into `obs`.
///
/// # Errors
/// As [`simulate`].
pub fn simulate_obs(
    program: &Program,
    compacted: &CompactedProgram,
    machine: &MachineConfig,
    layout: Option<&Layout>,
    args: &[i64],
    obs: &Obs,
) -> Result<SimOutcome, ExecError> {
    let span = obs.span("simulate").arg("icache", layout.is_some());
    let mut sim = CycleSim::new(compacted, machine, layout);
    let exec = Exec::new(program, ExecConfig::default()).run_traced(args, &mut sim)?;
    let outcome = sim.finish(exec);
    drop(span.arg("cycles", outcome.cycles));
    outcome.record_metrics(obs);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::interp::Interp;
    use pps_compact::compactor::singleton_partition;
    use pps_compact::{compact_program, CompactConfig};
    use pps_core::{form_and_compact, FormConfig, Scheme};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, Operand, Program, Reg};
    use pps_profile::{EdgeProfiler, PathProfiler};

    fn loopy() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let s = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        f.mov(s, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.alu(AluOp::Add, s, s, i);
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.out(s);
        f.ret(Some(Operand::Reg(s)));
        let main = f.finish();
        pb.finish(main)
    }

    #[test]
    fn baseline_cycles_match_hand_count() {
        let mut p = loopy();
        let part = singleton_partition(&p);
        // Renaming off so the arithmetic below has no compensation stubs.
        let cc = CompactConfig { renaming: false, move_renaming: false, ..Default::default() };
        let compacted = compact_program(&mut p, &part, &cc);
        let m = MachineConfig::paper();
        let out = simulate(&p, &compacted, &m, None, &[3]).unwrap();
        assert_eq!(out.exec.return_value, Some(3));
        // Hand count (8-wide, 1 control/cycle, unit latency):
        //  entry: mov,mov @0 + jump @0 -> 1 cycle
        //  head: cmp @0, branch @1 -> 2 cycles, 4 traversals
        //  body: add,add @0, jump @0 -> 1 cycle, 3 traversals
        //  exit: out @0, ret @0 (latency-0 edge) -> 1 cycle
        // total = 1 + 4*2 + 3*1 + 1 = 13.
        assert_eq!(out.cycles, 13);
        // Transitions recorded.
        assert!(out.transitions.total() > 0);
        // Fig-7 stats: every traversal of a singleton executes 1 block.
        assert_eq!(out.sb_stats.traversals, 1 + 4 + 3 + 1);
        assert_eq!(out.sb_stats.blocks_executed, out.sb_stats.traversals);
    }

    #[test]
    fn formed_program_reaches_fewer_cycles_than_baseline() {
        let mut base = loopy();
        let part = singleton_partition(&base);
        let compact_base = compact_program(&mut base, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let cycles_base = simulate(&base, &compact_base, &m, None, &[500])
            .unwrap()
            .cycles;

        let mut formed = loopy();
        let mut ep = EdgeProfiler::new(&formed);
        Interp::new(&formed, ExecConfig::default())
            .run_traced(&[300], &mut ep)
            .unwrap();
        let mut pp = PathProfiler::new(&formed, 15);
        Interp::new(&formed, ExecConfig::default())
            .run_traced(&[300], &mut pp)
            .unwrap();
        let (compacted, _) = form_and_compact(
            &mut formed,
            &ep.finish(),
            Some(&pp.finish()),
            Scheme::P4,
            &FormConfig::default(),
            &CompactConfig::default(),
        )
        .unwrap();
        let out = simulate(&formed, &compacted, &m, None, &[500]).unwrap();
        assert_eq!(out.exec.return_value, Some(500 * 499 / 2));
        assert!(
            out.cycles < cycles_base,
            "P4 {} !< baseline {}",
            out.cycles,
            cycles_base
        );
    }

    #[test]
    fn icache_simulation_counts_misses() {
        let mut p = loopy();
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        // Training run for transitions, then layout, then measured run.
        let train = simulate(&p, &compacted, &m, None, &[50]).unwrap();
        let layout = Layout::build(&p, &compacted, &train.transitions, &m);
        let out = simulate(&p, &compacted, &m, Some(&layout), &[50]).unwrap();
        let stats = out.icache.expect("icache simulated");
        assert!(stats.accesses > 0);
        // Tiny program: everything fits; misses only compulsory.
        assert!(stats.misses >= 1, "at least one compulsory miss");
        assert!(stats.miss_rate() < 0.05, "tiny working set mostly hits");
        assert_eq!(
            out.cycles_with_icache(),
            out.cycles + stats.misses * m.icache.miss_penalty
        );
    }
}
