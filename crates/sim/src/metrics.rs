//! Dynamic superblock statistics — the two metrics of the paper's Figure 7.

/// Dynamically-weighted superblock statistics.
///
/// The paper's Figure 7 plots, per scheme: the average number of basic
/// blocks *executed* per dynamic superblock traversal (how far execution
/// gets before exiting — the gray bars) and the average *size* in blocks of
/// the traversed superblock (the white extensions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SbDynStats {
    /// Dynamic superblock traversals.
    pub traversals: u64,
    /// Total basic blocks executed across traversals.
    pub blocks_executed: u64,
    /// Total superblock sizes (in blocks) across traversals.
    pub size_blocks: u64,
}

impl SbDynStats {
    /// Average blocks executed per dynamic superblock (Figure 7 gray bar).
    pub fn avg_blocks_executed(&self) -> f64 {
        if self.traversals == 0 {
            0.0
        } else {
            self.blocks_executed as f64 / self.traversals as f64
        }
    }

    /// Average superblock size per dynamic traversal (Figure 7 white bar).
    pub fn avg_size(&self) -> f64 {
        if self.traversals == 0 {
            0.0
        } else {
            self.size_blocks as f64 / self.traversals as f64
        }
    }

    /// Fraction of each traversed superblock actually executed.
    pub fn completion_fraction(&self) -> f64 {
        if self.size_blocks == 0 {
            0.0
        } else {
            self.blocks_executed as f64 / self.size_blocks as f64
        }
    }

    /// Records one traversal that executed `executed` of `size` blocks.
    #[inline]
    pub fn record(&mut self, executed: u32, size: u32) {
        self.traversals += 1;
        self.blocks_executed += u64::from(executed);
        self.size_blocks += u64::from(size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = SbDynStats::default();
        s.record(2, 4);
        s.record(4, 4);
        assert_eq!(s.traversals, 2);
        assert!((s.avg_blocks_executed() - 3.0).abs() < 1e-9);
        assert!((s.avg_size() - 4.0).abs() < 1e-9);
        assert!((s.completion_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_is_zero() {
        let s = SbDynStats::default();
        assert_eq!(s.avg_blocks_executed(), 0.0);
        assert_eq!(s.avg_size(), 0.0);
        assert_eq!(s.completion_fraction(), 0.0);
    }
}
