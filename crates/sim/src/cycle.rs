//! Cycle accounting over a dynamic execution of the transformed program.
//!
//! [`CycleSim`] is a [`TraceSink`]: the reference interpreter reports every
//! block entry, and the sink maps blocks to `(superblock, position)` pairs.
//! Advancing to the next position of the same superblock is free (those
//! cycles are inside the schedule); any other transfer *leaves* the current
//! superblock through the terminator at its current position and charges
//! `exit cycle + 1` cycles — exactly the paper's model where the compactor
//! minimizes the cycle count to each exit.

use crate::icache::DirectMappedICache;
use crate::layout::Layout;
use crate::metrics::SbDynStats;
use crate::SimOutcome;
use pps_compact::CompactedProgram;
use pps_ir::interp::ExecResult;
use pps_ir::{BlockId, ProcId, TraceSink};
use pps_machine::MachineConfig;

/// Per-procedure dense transition matrix: `counts[from * n + to]`, `n` the
/// procedure's superblock count. The hot path ([`Transitions::record`]) is
/// one multiply-add and an increment — no hashing — and iteration is
/// row-major, so the order of reported edges is a pure function of the
/// counts, independent of insertion order (and hence of `--jobs`
/// scheduling).
#[derive(Debug, Clone, Default)]
struct SbMatrix {
    n: u32,
    counts: Vec<u64>,
}

/// Inter-superblock transition counts from one run, used to build a
/// [`Layout`].
#[derive(Debug, Clone)]
pub struct Transitions {
    /// Per procedure: dense `(from_sb, to_sb)` count matrix.
    per_proc: Vec<SbMatrix>,
    /// Per procedure: entry counts per superblock (first superblock of an
    /// activation, or entered from a call return context).
    entry_counts: Vec<Vec<u64>>,
    /// Activation counts per procedure.
    activation_counts: Vec<u64>,
}

impl Transitions {
    /// Creates empty counters shaped like `compacted`.
    pub fn new(compacted: &CompactedProgram) -> Self {
        Transitions {
            per_proc: compacted
                .procs
                .iter()
                .map(|p| {
                    let n = p.superblocks.len();
                    SbMatrix { n: n as u32, counts: vec![0; n * n] }
                })
                .collect(),
            entry_counts: compacted
                .procs
                .iter()
                .map(|p| vec![0; p.superblocks.len()])
                .collect(),
            activation_counts: vec![0; compacted.procs.len()],
        }
    }

    /// Records a transition between superblocks of `proc`.
    pub fn record(&mut self, proc: ProcId, from_sb: u32, to_sb: u32) {
        let m = &mut self.per_proc[proc.index()];
        m.counts[(from_sb * m.n + to_sb) as usize] += 1;
    }

    /// Records an activation-entry into `sb` of `proc`.
    pub fn record_entry(&mut self, proc: ProcId, sb: u32) {
        self.entry_counts[proc.index()][sb as usize] += 1;
    }

    /// Records an activation of `proc`.
    pub fn record_activation(&mut self, proc: ProcId) {
        self.activation_counts[proc.index()] += 1;
    }

    /// Activation count of `proc`.
    pub fn activations(&self, proc: ProcId) -> u64 {
        self.activation_counts[proc.index()]
    }

    /// Entry count of superblock `sb` of `proc`.
    pub fn entries(&self, proc: ProcId, sb: u32) -> u64 {
        self.entry_counts[proc.index()][sb as usize]
    }

    /// Iterates `( (from, to), count )` over the non-zero edges of `proc`,
    /// in row-major `(from, to)` order — deterministic regardless of the
    /// order transitions were recorded in.
    pub fn iter_proc(&self, proc: ProcId) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        let m = &self.per_proc[proc.index()];
        m.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(move |(i, &c)| ((i as u32 / m.n, i as u32 % m.n), c))
    }

    /// Total transition events recorded.
    pub fn total(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|m| m.counts.iter().sum::<u64>())
            .sum()
    }
}

/// One live activation's position within the superblock structure.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    proc: ProcId,
    /// Current `(superblock, position)`, `None` before the first block.
    at: Option<(u32, u32)>,
}

/// The cycle-charging trace sink. See the module docs.
#[derive(Debug)]
pub struct CycleSim<'a> {
    compacted: &'a CompactedProgram,
    layout: Option<&'a Layout>,
    icache: Option<DirectMappedICache>,
    stack: Vec<Cursor>,
    cycles: u64,
    transitions: Transitions,
    sb_stats: SbDynStats,
}

impl<'a> CycleSim<'a> {
    /// Creates a sink charging cycles from `compacted`'s schedules; when
    /// `layout` is given, the instruction cache is simulated too.
    pub fn new(
        compacted: &'a CompactedProgram,
        machine: &MachineConfig,
        layout: Option<&'a Layout>,
    ) -> Self {
        CycleSim {
            compacted,
            layout,
            icache: layout.map(|_| DirectMappedICache::new(machine.icache)),
            stack: Vec::new(),
            cycles: 0,
            transitions: Transitions::new(compacted),
            sb_stats: SbDynStats::default(),
        }
    }

    fn leave(&mut self, proc: ProcId, sb: u32, pos: u32) {
        let scheduled = &self.compacted.proc(proc).superblocks[sb as usize];
        let sched = &scheduled.schedule;
        self.cycles += sched.cost_of_exit(pos as usize);
        self.sb_stats.record(pos + 1, scheduled.spec.len() as u32);
        if let (Some(layout), Some(icache)) = (self.layout, self.icache.as_mut()) {
            let base = layout.base(proc, sb);
            // Batched: consecutive leaves walking the layout contiguously
            // (the hot-chain case the layout is built for) merge into one
            // tag-array pass.
            icache.fetch_batched(base, sched.fetch_of_exit(pos as usize));
        }
    }

    /// Consumes the sink, producing the run outcome.
    pub fn finish(mut self, exec: ExecResult) -> SimOutcome {
        debug_assert!(self.stack.is_empty(), "all activations closed");
        if let Some(icache) = self.icache.as_mut() {
            icache.flush();
        }
        SimOutcome {
            exec,
            cycles: self.cycles,
            icache: self.icache.map(|c| c.stats()),
            transitions: self.transitions,
            sb_stats: self.sb_stats,
        }
    }
}

impl TraceSink for CycleSim<'_> {
    fn enter_proc(&mut self, proc: ProcId) {
        self.stack.push(Cursor { proc, at: None });
        self.transitions.record_activation(proc);
    }

    fn exit_proc(&mut self, proc: ProcId) {
        let cur = self.stack.pop().expect("activation open");
        debug_assert_eq!(cur.proc, proc);
        if let Some((sb, pos)) = cur.at {
            self.leave(proc, sb, pos);
        }
    }

    fn block(&mut self, proc: ProcId, block: BlockId) {
        let (sb, pos) = self
            .compacted
            .proc(proc)
            .location(block)
            .unwrap_or_else(|| panic!("executed block {block} of {proc} not in any superblock"));
        let cur = self.stack.last_mut().expect("activation open");
        debug_assert_eq!(cur.proc, proc);
        match cur.at {
            Some((csb, cpos)) if csb == sb && pos == cpos + 1 => {
                // Internal fall-through: inside the schedule, free.
                cur.at = Some((sb, pos));
            }
            prev => {
                debug_assert_eq!(pos, 0, "inter-superblock transfers target heads");
                if let Some((psb, ppos)) = prev {
                    self.leave(proc, psb, ppos);
                    self.transitions.record(proc, psb, sb);
                } else {
                    self.transitions.record_entry(proc, sb);
                }
                let cur = self.stack.last_mut().expect("activation open");
                cur.at = Some((sb, pos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use pps_compact::{compact_program, singleton_partition, CompactConfig, SuperblockSpec};
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::{AluOp, Operand, Program, Reg};

    /// Two-block straight-line program compiled as one superblock.
    fn straight2() -> (Program, Vec<Vec<SuperblockSpec>>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let a = f.reg();
        let nxt = f.new_block();
        f.mov(a, 1i64);
        f.jump(nxt);
        f.switch_to(nxt);
        f.out(a);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let part = vec![vec![SuperblockSpec::new(vec![BlockId::new(0), nxt])]];
        (p, part)
    }

    #[test]
    fn internal_fallthrough_is_free() {
        let (mut p, part) = straight2();
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let out = simulate(&p, &compacted, &m, None, &[]).unwrap();
        // One superblock traversal. Move renaming forwards the constant
        // into `out`, so mov/out/ret all pack into cycle 0: 1 cycle.
        assert_eq!(out.cycles, 1);
        assert_eq!(out.sb_stats.traversals, 1);
        assert_eq!(out.sb_stats.blocks_executed, 2);
        assert_eq!(out.sb_stats.size_blocks, 2);

        // Without move renaming the true dependence chain costs 2 cycles:
        // mov@0 (jump elided), out@1, ret@1.
        let (mut p2, part2) = straight2();
        let cfg = CompactConfig { move_renaming: false, ..Default::default() };
        let compacted2 = compact_program(&mut p2, &part2, &cfg);
        let out2 = simulate(&p2, &compacted2, &m, None, &[]).unwrap();
        assert_eq!(out2.cycles, 2);
    }

    #[test]
    fn early_exit_charges_exit_cycle() {
        // superblock [b0, fall]: the branch exit costs fewer cycles than
        // completion.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 1);
        let fall = f.new_block();
        let off = f.new_block();
        let a = f.reg();
        f.mov(a, 1i64);
        f.branch(Reg::new(0), off, fall);
        f.switch_to(fall);
        f.out(a);
        let b = f.reg();
        f.alu(AluOp::Add, b, a, 1i64);
        f.out(b);
        f.ret(None);
        f.switch_to(off);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let part = vec![vec![
            SuperblockSpec::new(vec![BlockId::new(0), fall]),
            SuperblockSpec::singleton(off),
        ]];
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let taken = simulate(&p, &compacted, &m, None, &[1]).unwrap();
        let fell = simulate(&p, &compacted, &m, None, &[0]).unwrap();
        assert!(taken.cycles < fell.cycles, "early exit cheaper than completion");
        // Early-exit traversal executed 1 of 2 blocks, plus the off
        // singleton (1 of 1).
        assert_eq!(taken.sb_stats.traversals, 2);
        assert_eq!(taken.sb_stats.blocks_executed, 2);
        assert_eq!(taken.sb_stats.size_blocks, 3);
    }

    #[test]
    fn calls_do_not_break_caller_superblock() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_proc("f", 0);
        let mut g = pb.begin_declared(callee);
        g.ret(Some(Operand::Imm(7)));
        g.finish();
        let mut f = pb.begin_proc("main", 0);
        let r = f.reg();
        let nxt = f.new_block();
        f.call(callee, vec![], Some(r));
        f.jump(nxt);
        f.switch_to(nxt);
        f.out(r);
        f.ret(None);
        let main = f.finish();
        let mut p = pb.finish(main);
        let part = vec![
            vec![SuperblockSpec::singleton(BlockId::new(0))],
            vec![SuperblockSpec::new(vec![BlockId::new(0), nxt])],
        ];
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let out = simulate(&p, &compacted, &m, None, &[]).unwrap();
        assert_eq!(out.exec.output, vec![7]);
        // Two traversals: callee singleton + caller superblock (the call
        // does not end the caller's traversal).
        assert_eq!(out.sb_stats.traversals, 2);
        assert_eq!(out.sb_stats.blocks_executed, 3);
    }

    #[test]
    fn transitions_track_superblock_flow() {
        let (mut p, _) = straight2();
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let m = MachineConfig::paper();
        let out = simulate(&p, &compacted, &m, None, &[]).unwrap();
        let pid = p.entry;
        assert_eq!(out.transitions.activations(pid), 1);
        // b0-singleton -> nxt-singleton transition recorded once.
        assert_eq!(out.transitions.total(), 1);
        let (sb0, _) = compacted.proc(pid).location(BlockId::new(0)).unwrap();
        assert_eq!(out.transitions.entries(pid, sb0), 1);
    }

    #[test]
    fn transition_iteration_is_row_major_regardless_of_record_order() {
        let (mut p, _) = straight2();
        let part = singleton_partition(&p);
        let compacted = compact_program(&mut p, &part, &CompactConfig::default());
        let pid = p.entry;
        let mut a = Transitions::new(&compacted);
        a.record(pid, 1, 0);
        a.record(pid, 0, 1);
        a.record(pid, 0, 1);
        let mut b = Transitions::new(&compacted);
        b.record(pid, 0, 1);
        b.record(pid, 1, 0);
        b.record(pid, 0, 1);
        let ea: Vec<_> = a.iter_proc(pid).collect();
        let eb: Vec<_> = b.iter_proc(pid).collect();
        assert_eq!(ea, eb, "edge order is a function of the counts alone");
        assert_eq!(ea, vec![((0, 1), 2), ((1, 0), 1)]);
        assert_eq!(a.total(), 3);
    }
}
