//! Bounded, content-addressed caching of compile artifacts.
//!
//! Every `Compile`/`RunCell` reply is a pure function of the request, and
//! the request's semantic content is captured by its
//! [`ArtifactKey`](pps_core::ArtifactKey) — canonical program hash,
//! canonical profile hash, scheme, machine hash — plus the residual
//! request class (which benchmark cell and guard mode selected the
//! oracle/measurement inputs). [`CompileCache`] memoizes replies under
//! exactly that identity: a hit returns the `Arc`'d reply whose encoding
//! is byte-identical to re-running the pipeline, because the key pins
//! every input the pipeline reads.
//!
//! # Coherence with PGO hot-swap
//!
//! The continuous-PGO loop recompiles drifted units in the background and
//! swaps them in atomically. Each `(bench, scale, scheme)` group carries
//! an *epoch* here; a successful hot-swap bumps it
//! ([`CompileCache::invalidate_group`]), which eagerly drops the group's
//! entries and lazily rejects any stragglers on lookup — so a unit that
//! drifted is never served from cache across a swap. (Replies are pure,
//! so this is a freshness guarantee, not a correctness patch: the next
//! miss recompiles against the same key and produces the same bytes.)
//!
//! Eviction is LRU over a fixed entry budget; counters (hits, misses,
//! evictions, invalidations) feed `/metrics`, `/health`, and the minor-3
//! Pong snapshot.

use crate::proto::{HealthSnapshot, Response};
use pps_core::ArtifactKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default entry budget of the daemon's cache.
pub const DEFAULT_CAPACITY: usize = 128;

/// Which request class produced (and may reuse) a cached artifact. Two
/// classes never share entries even under an equal [`ArtifactKey`]: the
/// reply shapes differ, and `RunCell` additionally folds the guard mode
/// into the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheClass {
    /// A `Compile` request (report reply).
    Compile,
    /// A `RunCell` request with the given strict flag (metrics reply).
    RunCell {
        /// Guard mode the cell ran under.
        strict: bool,
    },
}

/// Full cache key: the content address plus the request class and the
/// benchmark cell it was computed for. `bench`/`scale` select the
/// training/oracle inputs, which the ArtifactKey's program hash does not
/// cover by construction (it hashes the program, not the suite row).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content address of the artifact.
    pub artifact: ArtifactKey,
    /// Request class.
    pub class: CacheClass,
    /// Benchmark name.
    pub bench: String,
    /// Suite scale.
    pub scale: u32,
}

impl CacheKey {
    fn group(&self) -> GroupKey {
        GroupKey {
            bench: self.bench.clone(),
            scale: self.scale,
            scheme: self.artifact.scheme.clone(),
        }
    }
}

/// The invalidation granule: the PGO tier tracks serving units per
/// `(bench, scale, scheme)`, so that is what a hot-swap invalidates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    bench: String,
    scale: u32,
    scheme: String,
}

#[derive(Debug)]
struct Entry {
    response: Arc<Response>,
    epoch: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<CacheKey, Entry>,
    epochs: HashMap<GroupKey, u64>,
    tick: u64,
}

/// A bounded LRU of compile artifacts keyed by content. Shared across
/// worker threads behind an `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct CompileCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl CompileCache {
    /// A cache bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The entry budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`. A current-epoch entry is a hit; an entry stranded
    /// behind an epoch bump is dropped and counted as both an
    /// invalidation and a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Response>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let current = inner.epochs.get(&key.group()).copied().unwrap_or(0);
        match inner.entries.get_mut(key) {
            Some(e) if e.epoch == current => {
                e.last_used = tick;
                let r = e.response.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            Some(_) => {
                inner.entries.remove(key);
                drop(inner);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a reply under `key`, stamped with the group's current
    /// epoch. Evicts the least-recently-used entry when the budget is
    /// full. Error replies must not be cached — callers only insert
    /// successful compiles.
    pub fn insert(&self, key: CacheKey, response: Response) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let epoch = inner.epochs.get(&key.group()).copied().unwrap_or(0);
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner
            .entries
            .insert(key, Entry { response: Arc::new(response), epoch, last_used: tick });
    }

    /// Bumps the epoch of `(bench, scale, scheme)` and eagerly drops its
    /// resident entries. Called by the PGO tier when a recompiled unit
    /// hot-swaps in, so a drifted group never serves a pre-swap entry.
    pub fn invalidate_group(&self, bench: &str, scale: u32, scheme: &str) {
        let group = GroupKey { bench: bench.to_string(), scale, scheme: scheme.to_string() };
        let mut inner = self.inner.lock().expect("cache lock");
        *inner.epochs.entry(group.clone()).or_insert(0) += 1;
        let stale: Vec<CacheKey> = inner
            .entries
            .keys()
            .filter(|k| k.group() == group)
            .cloned()
            .collect();
        let dropped = stale.len() as u64;
        for k in stale {
            inner.entries.remove(&k);
        }
        drop(inner);
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// `(hits, misses, evictions, invalidations, entries)` right now.
    pub fn stats(&self) -> (u64, u64, u64, u64, usize) {
        let entries = self.inner.lock().expect("cache lock").entries.len();
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.invalidations.load(Ordering::Relaxed),
            entries,
        )
    }

    /// Copies the counters into a health snapshot (the minor-3 fields).
    pub fn fill_health(&self, h: &mut HealthSnapshot) {
        let (hits, misses, evictions, invalidations, entries) = self.stats();
        h.cache_hits = hits;
        h.cache_misses = misses;
        h.cache_evictions = evictions;
        h.cache_invalidations = invalidations;
        h.cache_entries = entries as u32;
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64, scheme: &str) -> CacheKey {
        CacheKey {
            artifact: ArtifactKey::new(n, n + 1, scheme, 7),
            class: CacheClass::Compile,
            bench: "wc".into(),
            scale: 1,
        }
    }

    fn reply(s: &str) -> Response {
        Response::Compile { report: s.to_string() }
    }

    #[test]
    fn hit_returns_the_inserted_reply() {
        let cache = CompileCache::new(4);
        let k = key(1, "P4");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), reply("r1"));
        assert_eq!(*cache.get(&k).unwrap(), reply("r1"));
        let (hits, misses, ..) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn classes_do_not_collide() {
        let cache = CompileCache::new(4);
        let compile = key(1, "P4");
        let runcell = CacheKey { class: CacheClass::RunCell { strict: true }, ..compile.clone() };
        cache.insert(compile.clone(), reply("compile"));
        assert!(cache.get(&runcell).is_none());
        let lax = CacheKey { class: CacheClass::RunCell { strict: false }, ..runcell.clone() };
        cache.insert(runcell.clone(), reply("strict"));
        assert!(cache.get(&lax).is_none(), "strict flag is part of the identity");
        assert_eq!(*cache.get(&compile).unwrap(), reply("compile"));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = CompileCache::new(2);
        let (a, b, c) = (key(1, "P4"), key(2, "P4"), key(3, "P4"));
        cache.insert(a.clone(), reply("a"));
        cache.insert(b.clone(), reply("b"));
        let _ = cache.get(&a); // warm `a`, leaving `b` coldest
        cache.insert(c.clone(), reply("c"));
        assert!(cache.get(&b).is_none(), "b was evicted");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        let (.., evictions, _, entries) = cache.stats();
        assert_eq!(evictions, 1);
        assert_eq!(entries, 2);
    }

    #[test]
    fn swap_invalidation_drops_the_group_and_only_the_group() {
        let cache = CompileCache::new(8);
        let p4 = key(1, "P4");
        let m4 = key(1, "M4");
        cache.insert(p4.clone(), reply("p4"));
        cache.insert(m4.clone(), reply("m4"));
        cache.invalidate_group("wc", 1, "P4");
        assert!(cache.get(&p4).is_none(), "swapped group no longer serves");
        assert!(cache.get(&m4).is_some(), "other schemes untouched");
        let (_, _, _, invalidations, _) = cache.stats();
        assert_eq!(invalidations, 1);
        // Re-inserting after the bump serves again at the new epoch.
        cache.insert(p4.clone(), reply("p4'"));
        assert_eq!(*cache.get(&p4).unwrap(), reply("p4'"));
    }

    #[test]
    fn entry_inserted_before_bump_is_rejected_lazily_too() {
        let cache = CompileCache::new(8);
        let k = key(9, "P4e");
        cache.insert(k.clone(), reply("old"));
        // Simulate the bump racing ahead of eager cleanup by re-inserting
        // at the old epoch: epoch mismatch must reject on lookup.
        {
            let mut inner = cache.inner.lock().unwrap();
            let group = k.group();
            *inner.epochs.entry(group).or_insert(0) += 1;
        }
        assert!(cache.get(&k).is_none(), "stale epoch never serves");
    }

    #[test]
    fn fill_health_reports_counters() {
        let cache = CompileCache::new(2);
        let k = key(1, "BB");
        let _ = cache.get(&k);
        cache.insert(k.clone(), reply("x"));
        let _ = cache.get(&k);
        let mut h = HealthSnapshot::default();
        cache.fill_health(&mut h);
        assert_eq!(h.cache_hits, 1);
        assert_eq!(h.cache_misses, 1);
        assert_eq!(h.cache_entries, 1);
    }
}
