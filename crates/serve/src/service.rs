//! Executes decoded requests against the real scheduling pipeline.
//!
//! [`execute`] is deliberately a pure function of the request (plus the
//! workspace's deterministic pipeline), so the load generator can compute
//! the expected reply in-process and assert the daemon's bytes are
//! identical — the service must never drift from the library.

use crate::cache::{CacheClass, CacheKey, CompileCache};
use crate::proto::{ErrorKind, HealthSnapshot, ProfileText, Request, Response};
use crate::runner::{run_scheme_obs, RunConfig, RunError};
use crate::server::Handler;
use std::sync::Arc;
use pps_compact::CompactConfig;
use pps_core::{
    guarded_form_and_compact_obs, machine_hash, ArtifactKey, FormConfig, GuardConfig, GuardMode,
    Scheme,
};
use pps_machine::MachineConfig;
use pps_ir::interp::ExecConfig;
use pps_ir::trace::TeeSink;
use pps_ir::Exec;
use pps_obs::{Level, Obs, ObsConfig};
use pps_profile::serialize::{edge_from_text, edge_to_text, path_from_text, path_to_text};
use pps_profile::{
    EdgeProfile, EdgeProfiler, KPathProfile, PathProfile, PathProfiler, DEFAULT_PATH_DEPTH,
};
use pps_suite::{benchmark_by_name, Benchmark, Scale};

/// Largest accepted suite scale — bounds per-request work.
pub const MAX_SCALE: u32 = 100;

/// The production [`Handler`]: every request runs the same code paths the
/// CLI harness uses.
#[derive(Debug, Default)]
pub struct PipelineHandler;

impl Handler for PipelineHandler {
    fn handle(&self, request: &Request, obs: &Obs) -> Response {
        execute(request, obs)
    }
}

/// Observes the profiles that flow through request execution — the
/// continuous-PGO aggregator implements this to fold every trained or
/// client-supplied profile pair into its live aggregate. Publishing is a
/// pure side effect: it must never change the response bytes.
pub trait ProfileSink: Send + Sync {
    /// A profile pair for `bench` at `scale` was trained or accepted
    /// during request execution.
    fn publish(&self, bench: &str, scale: u32, edge: &EdgeProfile, path: &PathProfile);

    /// A compiled unit for `(bench, scale, scheme)` was produced against
    /// `path` — the reference profile drift is measured from.
    fn observe_unit(&self, bench: &str, scale: u32, scheme: &str, path: &PathProfile);
}

/// [`PipelineHandler`] plus a content-addressed reply cache consulted
/// before the pipeline. Hits return the cached [`Response`] — byte-
/// identical to a recompute because [`execute`] is a pure function of
/// exactly the inputs the [`ArtifactKey`] hashes. Health snapshots carry
/// the cache counters.
pub struct CachedPipelineHandler {
    cache: Arc<CompileCache>,
}

impl CachedPipelineHandler {
    /// Wraps the cache as the daemon's handler.
    pub fn new(cache: Arc<CompileCache>) -> Self {
        CachedPipelineHandler { cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.cache
    }
}

impl Handler for CachedPipelineHandler {
    fn handle(&self, request: &Request, obs: &Obs) -> Response {
        execute_cached(request, obs, None, Some(&self.cache))
    }

    fn health(&self, mut base: HealthSnapshot) -> HealthSnapshot {
        self.cache.fill_health(&mut base);
        base
    }
}

/// Parses a scheme name: `BB`, `M<n>`, `P<n>`, `P<n>e`, `Pk2`/`Pk3`,
/// `Px4` — in any capitalization. Delegates to [`Scheme::parse`], the one
/// canonicalizer: every consumer that keys on scheme identity (reply
/// cache, shard router, `ArtifactKey`) goes through `parse(..).name()`,
/// so spelling variants (`PK2` vs `Pk2`) can never split cache entries or
/// route to different shards.
pub fn parse_scheme(name: &str) -> Option<Scheme> {
    Scheme::parse(name)
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error { kind, message: message.into() }
}

// The Err is the reply the caller returns as-is; it is never propagated
// up a deep call chain, so its size (dominated by Pong's HealthSnapshot)
// costs nothing here.
#[allow(clippy::result_large_err)]
fn lookup_bench(name: &str, scale: u32) -> Result<Benchmark, Response> {
    if scale == 0 || scale > MAX_SCALE {
        return Err(error(
            ErrorKind::BadRequest,
            format!("scale {scale} out of range 1..={MAX_SCALE}"),
        ));
    }
    benchmark_by_name(name, Scale(scale))
        .ok_or_else(|| error(ErrorKind::UnknownBench, format!("no benchmark `{name}`")))
}

/// One training run of `program` feeding both profilers.
#[allow(clippy::result_large_err)]
fn train_profiles_on(
    program: &pps_ir::Program,
    train_args: &[i64],
    name: &str,
    depth: usize,
) -> Result<(EdgeProfile, PathProfile), Response> {
    let mut tee = TeeSink::new(EdgeProfiler::new(program), PathProfiler::new(program, depth));
    Exec::new(program, ExecConfig::default())
        .run_traced(train_args, &mut tee)
        .map_err(|e| error(ErrorKind::Exec, format!("{name} train run: {e}")))?;
    Ok((tee.a.finish(), tee.b.finish()))
}

/// One training run feeding both profilers.
#[allow(clippy::result_large_err)]
fn train_profiles(
    bench: &Benchmark,
    depth: usize,
) -> Result<(EdgeProfile, PathProfile), Response> {
    train_profiles_on(&bench.program, &bench.train_args, bench.name, depth)
}

/// One k-iteration training run: the edge profile, the chopped k-path
/// profile (hashed into the artifact key), and the path profile derived
/// from it (what the pipeline and the PGO tier consume).
#[allow(clippy::result_large_err)]
fn train_kprofiles(
    bench: &Benchmark,
    k: usize,
    depth: usize,
) -> Result<(EdgeProfile, KPathProfile, PathProfile), Response> {
    let (edge, kprof) = crate::runner::train_kpair(bench, k)
        .map_err(|e| error(ErrorKind::Exec, e.to_string()))?;
    let path = kprof.to_path_profile(depth);
    Ok((edge, kprof, path))
}

/// Executes one request, deterministically. `Ping`/`Shutdown` are answered
/// by the server itself and only reach here in tests.
pub fn execute(request: &Request, obs: &Obs) -> Response {
    execute_with(request, obs, None)
}

/// [`execute`] with an optional [`ProfileSink`] observing the profiles the
/// request trains or carries. The sink is side-effect-only: for any
/// request, `execute_with(req, obs, Some(sink))` returns exactly the bytes
/// `execute(req, obs)` would — the load generator asserts this by diffing
/// daemon replies against in-process `execute`.
pub fn execute_with(request: &Request, obs: &Obs, sink: Option<&dyn ProfileSink>) -> Response {
    execute_cached(request, obs, sink, None)
}

/// [`execute_with`] with an optional content-addressed reply cache
/// consulted before the pipeline. The cache is invisible in the reply
/// bytes: a hit returns a [`Response`] that is byte-identical to what the
/// pipeline would recompute, because [`execute`] is a pure function of
/// exactly the inputs the cache key hashes (program structure, canonical
/// profiles, scheme, machine model, plus the request's residual
/// bench/scale/class). Only successful replies are cached; errors always
/// re-execute.
pub fn execute_cached(
    request: &Request,
    obs: &Obs,
    sink: Option<&dyn ProfileSink>,
    cache: Option<&CompileCache>,
) -> Response {
    match request {
        Request::Ping => Response::Pong { health: HealthSnapshot::default() },
        Request::Shutdown => Response::ShuttingDown,
        Request::Profile { bench, scale, depth } => profile(bench, *scale, *depth, sink),
        Request::Compile { bench, scale, scheme, profile } => {
            compile(bench, *scale, scheme, profile.as_ref(), obs, sink, cache)
        }
        Request::RunCell { bench, scale, scheme, strict } => {
            run_cell(bench, *scale, scheme, *strict, obs, sink, cache)
        }
    }
}

/// The content address of the unit a request resolves to: canonical
/// program hash, canonical profile hash, scheme name, machine hash. For
/// `Pk*` units trained server-side the profile hash folds the k-iteration
/// profile in ([`pps_profile::profile_triple_hash`]), so two k values that
/// happen to derive the same flattened path profile still address
/// different artifacts.
fn artifact_key(
    bench: &Benchmark,
    edge: &EdgeProfile,
    path: &PathProfile,
    kpath: Option<&KPathProfile>,
    scheme: Scheme,
    machine: &MachineConfig,
) -> ArtifactKey {
    let profile_hash = match kpath {
        Some(kp) => pps_profile::profile_triple_hash(edge, path, kp),
        None => pps_profile::profile_pair_hash(edge, path),
    };
    ArtifactKey::new(
        pps_ir::hash::program_hash(&bench.program),
        profile_hash,
        scheme.name(),
        machine_hash(machine),
    )
}

fn profile(bench: &str, scale: u32, depth: u32, sink: Option<&dyn ProfileSink>) -> Response {
    let bench = match lookup_bench(bench, scale) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let depth = if depth == 0 { DEFAULT_PATH_DEPTH } else { depth as usize };
    match train_profiles(&bench, depth) {
        Ok((edge, path)) => {
            if let Some(sink) = sink {
                sink.publish(bench.name, scale, &edge, &path);
            }
            Response::Profile {
                edge: edge_to_text(&edge),
                path: path_to_text(&path),
            }
        }
        Err(r) => r,
    }
}

fn compile(
    bench: &str,
    scale: u32,
    scheme_name: &str,
    profile: Option<&ProfileText>,
    obs: &Obs,
    sink: Option<&dyn ProfileSink>,
    cache: Option<&CompileCache>,
) -> Response {
    let Some(scheme) = parse_scheme(scheme_name) else {
        return error(ErrorKind::UnknownScheme, format!("no scheme `{scheme_name}`"));
    };
    // Scheme identity is the canonical spelling from here on — cache
    // keys, shard routing and PGO labels must not see `PK2` vs `Pk2`.
    let scheme_name = scheme.name();
    let bench = match lookup_bench(bench, scale) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let mut kpath: Option<KPathProfile> = None;
    let (edge, path) = match profile {
        Some(p) => {
            let edge = match edge_from_text(&p.edge) {
                Ok(e) => e,
                Err(e) => return error(ErrorKind::BadProfile, format!("edge profile: {e}")),
            };
            let path = match path_from_text(&p.path) {
                Ok(p) => p,
                Err(e) => return error(ErrorKind::BadProfile, format!("path profile: {e}")),
            };
            (edge, path)
        }
        None => match scheme.kpath_k() {
            // `Pk*` with no supplied pair: one k-iteration training run;
            // the derived pair drives the pipeline, the k-path profile
            // itself is folded into the artifact key below.
            Some(k) => match train_kprofiles(&bench, k as usize, DEFAULT_PATH_DEPTH) {
                Ok((edge, kprof, path)) => {
                    kpath = Some(kprof);
                    (edge, path)
                }
                Err(r) => return r,
            },
            None => match train_profiles(&bench, DEFAULT_PATH_DEPTH) {
                Ok(pair) => pair,
                Err(r) => return r,
            },
        },
    };
    if let Some(sink) = sink {
        sink.publish(bench.name, scale, &edge, &path);
    }

    let key = cache.map(|_| CacheKey {
        artifact: artifact_key(
            &bench,
            &edge,
            &path,
            kpath.as_ref(),
            scheme,
            &CompactConfig::default().machine,
        ),
        class: CacheClass::Compile,
        bench: bench.name.to_string(),
        scale,
    });
    if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
        if let Some(reply) = cache.get(key) {
            // A hit stands in for a successful pipeline run, so the PGO
            // tier still observes the unit (same content — the key
            // equality guarantees the identical path profile).
            if let Some(sink) = sink {
                sink.observe_unit(bench.name, scale, &scheme_name, &path);
            }
            return (*reply).clone();
        }
    }

    let mut program = bench.program.clone();
    // Interprocedural phase (`Px4`): guarded inlining of the hottest call
    // sites, then a retrain on the inlined program — same two-phase flow
    // as the runner, so Compile and RunCell agree on what `Px4` means.
    let (edge, path) = if matches!(scheme, Scheme::Inter { .. }) {
        let inline_config = pps_core::InlineConfig {
            oracle_inputs: vec![bench.train_args.clone()],
            ..pps_core::InlineConfig::default()
        };
        let outcome = pps_core::inline_hot_calls(&mut program, &edge, &inline_config);
        if outcome.inlined.is_empty() {
            (edge, path)
        } else {
            match train_profiles_on(&program, &bench.train_args, bench.name, DEFAULT_PATH_DEPTH)
            {
                Ok(pair) => pair,
                Err(r) => return r,
            }
        }
    } else {
        (edge, path)
    };
    let guard = GuardConfig {
        oracle_inputs: vec![bench.train_args.clone()],
        ..GuardConfig::default()
    };
    let guarded = match guarded_form_and_compact_obs(
        &mut program,
        &edge,
        Some(&path),
        scheme,
        &FormConfig::default(),
        &CompactConfig::default(),
        &guard,
        obs,
    ) {
        Ok(g) => g,
        Err(e) => return error(ErrorKind::Pipeline, e.to_string()),
    };
    if let Some(sink) = sink {
        sink.observe_unit(bench.name, scale, &scheme_name, &path);
    }

    let stats = &guarded.stats;
    let report = format!(
        "pps-compile-report v1\n\
         bench {bench} scheme {scheme}\n\
         procs {procs}\n\
         degraded {degraded}\n\
         incidents {incidents}\n\
         superblocks {superblocks}\n\
         tail_dup_blocks {tail_dup}\n\
         enlarged_blocks {enlarged}\n\
         skipped_low_completion {skipped}\n\
         splits {splits}\n\
         static_before {before}\n\
         static_after {after}\n\
         sched_items {items}\n",
        bench = bench.name,
        scheme = scheme.name(),
        procs = guarded.report.total_procs,
        degraded = guarded.report.degraded_procs,
        incidents = guarded.report.incidents.len(),
        superblocks = stats.superblocks,
        tail_dup = stats.tail_dup_blocks,
        enlarged = stats.enlarged_blocks,
        skipped = stats.skipped_low_completion,
        splits = stats.splits,
        before = stats.static_before,
        after = stats.static_after,
        items = guarded.compacted.total_items(),
    );
    let response = Response::Compile { report };
    if let (Some(cache), Some(key)) = (cache, key) {
        cache.insert(key, response.clone());
    }
    response
}

fn run_cell(
    bench: &str,
    scale: u32,
    scheme_name: &str,
    strict: bool,
    _obs: &Obs,
    sink: Option<&dyn ProfileSink>,
    cache: Option<&CompileCache>,
) -> Response {
    let Some(scheme) = parse_scheme(scheme_name) else {
        return error(ErrorKind::UnknownScheme, format!("no scheme `{scheme_name}`"));
    };
    let scheme_name = scheme.name();
    let bench = match lookup_bench(bench, scale) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let mut config = RunConfig::paper();
    config.guard.mode = if strict { GuardMode::Strict } else { GuardMode::Degrade };
    // Train up front when anyone needs the pair — the sink to aggregate
    // it, the cache to key on it — then hand the same objects to the
    // runner. `Pk*` schemes train their k-iteration kind here (the runner
    // would otherwise train the same thing itself), so the preloaded pair
    // always matches what the scheme's own training run would produce and
    // the reply stays byte-for-byte equal to plain execution.
    let mut trained: Option<(EdgeProfile, PathProfile)> = None;
    let mut kpath: Option<KPathProfile> = None;
    if sink.is_some() || cache.is_some() {
        match scheme.kpath_k() {
            Some(k) => match train_kprofiles(&bench, k as usize, DEFAULT_PATH_DEPTH) {
                Ok((edge, kprof, path)) => {
                    kpath = Some(kprof);
                    trained = Some((edge, path));
                }
                Err(r) => return r,
            },
            None => match train_profiles(&bench, DEFAULT_PATH_DEPTH) {
                Ok(pair) => trained = Some(pair),
                Err(r) => return r,
            },
        }
    }
    if let (Some(sink), Some((edge, path))) = (sink, &trained) {
        sink.publish(bench.name, scale, edge, path);
        sink.observe_unit(bench.name, scale, &scheme_name, path);
    }
    let key = match (&trained, cache) {
        (Some((edge, path)), Some(_)) => Some(CacheKey {
            artifact: artifact_key(&bench, edge, path, kpath.as_ref(), scheme, &config.machine),
            class: CacheClass::RunCell { strict },
            bench: bench.name.to_string(),
            scale,
        }),
        _ => None,
    };
    if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
        if let Some(reply) = cache.get(key) {
            return (*reply).clone();
        }
    }
    if let Some(pair) = trained {
        config.preloaded = Some(Arc::new(pair));
    }
    // The cell records into its own metrics-only registry — exactly what
    // `pps-harness --metrics-out` exports for the same cell, and byte-
    // deterministic, so clients can diff replies against local runs.
    let cell_obs = Obs::recording(ObsConfig { level: Level::Off, trace: false, metrics: true });
    match run_scheme_obs(&bench, scheme, &config, &cell_obs) {
        Ok(_) => {
            let response = Response::RunCell {
                metrics_json: cell_obs
                    .export_metrics_json()
                    .unwrap_or_else(|| "{}".to_string()),
            };
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(key, response.clone());
            }
            response
        }
        Err(e @ RunError::Exec { .. }) => error(ErrorKind::Exec, e.to_string()),
        Err(e @ RunError::Pipeline { .. }) => error(ErrorKind::Pipeline, e.to_string()),
        Err(e) => error(ErrorKind::Internal, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_round_trip() {
        for scheme in Scheme::FAMILY {
            assert_eq!(parse_scheme(&scheme.name()), Some(scheme), "{}", scheme.name());
            // Spelling variants canonicalize instead of splitting cache
            // entries or shard routes.
            assert_eq!(
                parse_scheme(&scheme.name().to_ascii_uppercase()),
                Some(scheme),
                "{}",
                scheme.name()
            );
        }
        assert_eq!(parse_scheme("Q4"), None);
        assert_eq!(parse_scheme("M"), None);
        assert_eq!(parse_scheme("P4x"), None);
    }

    #[test]
    fn kpath_compile_is_deterministic_and_distinct_per_k() {
        let obs = Obs::noop();
        let compile = |scheme: &str| {
            execute(
                &Request::Compile {
                    bench: "wc".into(),
                    scale: 1,
                    scheme: scheme.into(),
                    profile: None,
                },
                &obs,
            )
        };
        let pk2 = compile("Pk2");
        assert_eq!(pk2, compile("pk2"), "spelling variants are one scheme");
        let Response::Compile { report } = &pk2 else { panic!("Pk2 compile failed: {pk2:?}") };
        assert!(report.contains("scheme Pk2"), "{report}");
        let px4 = compile("Px4");
        let Response::Compile { report } = &px4 else { panic!("Px4 compile failed: {px4:?}") };
        assert!(report.contains("scheme Px4"), "{report}");
    }

    #[test]
    fn unknown_bench_and_scale_bounds_are_structured_errors() {
        let r = execute(
            &Request::Profile { bench: "nope".into(), scale: 1, depth: 0 },
            &Obs::noop(),
        );
        assert!(matches!(r, Response::Error { kind: ErrorKind::UnknownBench, .. }));
        let r = execute(
            &Request::Profile { bench: "wc".into(), scale: 0, depth: 0 },
            &Obs::noop(),
        );
        assert!(matches!(r, Response::Error { kind: ErrorKind::BadRequest, .. }));
    }

    #[test]
    fn profile_then_compile_against_it_matches_server_trained_compile() {
        let obs = Obs::noop();
        let Response::Profile { edge, path } = execute(
            &Request::Profile { bench: "wc".into(), scale: 1, depth: 0 },
            &obs,
        ) else {
            panic!("profile failed");
        };
        let with_profile = execute(
            &Request::Compile {
                bench: "wc".into(),
                scale: 1,
                scheme: "P4".into(),
                profile: Some(ProfileText { edge, path }),
            },
            &obs,
        );
        let trained = execute(
            &Request::Compile { bench: "wc".into(), scale: 1, scheme: "P4".into(), profile: None },
            &obs,
        );
        assert_eq!(with_profile, trained, "saved profile must reproduce training");
        let Response::Compile { report } = trained else { panic!("compile failed") };
        assert!(report.starts_with("pps-compile-report v1\n"));
        assert!(report.contains("superblocks "));
    }

    #[test]
    fn run_cell_is_deterministic_and_matches_metrics_schema() {
        let req = Request::RunCell {
            bench: "wc".into(),
            scale: 1,
            scheme: "M4".into(),
            strict: true,
        };
        let a = execute(&req, &Obs::noop());
        let b = execute(&req, &Obs::noop());
        assert_eq!(a, b, "RunCell must be byte-deterministic");
        let Response::RunCell { metrics_json } = a else { panic!("runcell failed") };
        pps_obs::json::parse(&metrics_json).expect("valid metrics JSON");
        assert!(metrics_json.contains("sim."), "simulator metrics present");
    }
}
