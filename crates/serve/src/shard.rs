//! Consistent-hash shard router: one PPSF front door fanning requests out
//! across N `pps-serve` daemons by artifact identity.
//!
//! The router decodes each request only far enough to compute its
//! [`ArtifactKey`] projection (canonical program hash — memoized per
//! `(bench, scale)` — carried-profile hash, canonical scheme name, machine
//! hash), places the key's [`ArtifactKey::route_hash`] on a splitmix64
//! vnode ring, and relays the *original* request payload to the owning
//! shard, returning the shard's reply payload verbatim. Replies are never
//! re-encoded, so byte-identity through the router is structural: the
//! client sees exactly the bytes the daemon produced, including `Busy`
//! and structured errors (pass-through, not retry — backpressure is the
//! daemon's signal to make).
//!
//! Keying placement by content (not by connection or round-robin) is what
//! makes the per-daemon [`crate::cache::CompileCache`] effective in a
//! cluster: every repeat of an artifact lands on the same shard, so the
//! cluster-wide hit rate matches the single-daemon hit rate instead of
//! being diluted by N.
//!
//! `Ping` is answered by fan-in: the router pings every shard, sums the
//! counter fields of their Pongs (taking the max of generation-like
//! fields), and reports its own `routed`/`shards` counters — the fields a
//! single daemon leaves zero. `Shutdown` is forwarded to every shard
//! (best effort) and then drains the router itself, so one in-band
//! shutdown quiesces the whole cluster.

use crate::frame::{self, FrameError};
use crate::proto::{
    decode_request, decode_response, encode_request, encode_response, Envelope, ErrorKind,
    HealthSnapshot, Request, Response, PROTO_MINOR,
};
use crate::service::parse_scheme;
use pps_core::hash::{Fold};
use pps_core::{machine_hash, ArtifactKey};
use pps_machine::MachineConfig;
use pps_obs::{Level, Obs};
use pps_suite::{benchmark_by_name, Scale};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default virtual nodes per shard — enough that removing one shard of a
/// handful moves only its own share of keys.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring: `vnodes` points per shard, placed by folding
/// the shard address with the vnode index through splitmix64. A key owns
/// the first point clockwise from its hash.
#[derive(Debug, Clone)]
pub struct ShardRing {
    addrs: Vec<String>,
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    /// Builds the ring. `vnodes` is clamped to at least 1.
    ///
    /// # Panics
    /// Panics if `addrs` is empty — a router with no shards is a
    /// configuration error, not a runtime state.
    pub fn new(addrs: Vec<String>, vnodes: usize) -> ShardRing {
        assert!(!addrs.is_empty(), "shard ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(addrs.len() * vnodes);
        for (index, addr) in addrs.iter().enumerate() {
            for v in 0..vnodes {
                let mut f = Fold::new();
                f.str(addr).u64(v as u64);
                points.push((f.finish(), index));
            }
        }
        points.sort_unstable();
        ShardRing { addrs, points }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the ring has no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The shard addresses, in configuration order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The shard owning `hash`: the first ring point at or after it,
    /// wrapping to the start.
    pub fn shard_for(&self, hash: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < hash);
        let (_, shard) = self.points[i % self.points.len()];
        shard
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// How often idle loops re-check the shutdown flag.
    pub poll: Duration,
    /// How long a started client frame may take to arrive completely.
    pub frame_timeout: Duration,
    /// Per-reply timeout on shard connections (None = wait forever).
    pub reply_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            poll: Duration::from_millis(20),
            frame_timeout: Duration::from_secs(10),
            reply_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// Counters the router reports when it drains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests relayed to a shard.
    pub routed: u64,
    /// Relay failures answered with a structured error.
    pub errors: u64,
    /// Connections dropped for malformed frames.
    pub frame_errors: u64,
}

/// Shared router state: the ring, the routing memo, and the counters the
/// fan-in health path reports.
pub struct Router {
    ring: ShardRing,
    config: RouterConfig,
    routed: AtomicU64,
    per_shard: Vec<AtomicU64>,
    errors: AtomicU64,
    /// Canonical program hashes, memoized per `(bench, scale)` — the
    /// program is a pure function of both, so the memo never invalidates.
    memo: Mutex<HashMap<(String, u32), u64>>,
    machine: u64,
}

impl Router {
    /// Builds the router over `ring`.
    pub fn new(ring: ShardRing, config: RouterConfig) -> Router {
        let shards = ring.len();
        Router {
            ring,
            config,
            routed: AtomicU64::new(0),
            per_shard: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            errors: AtomicU64::new(0),
            memo: Mutex::new(HashMap::new()),
            machine: machine_hash(&MachineConfig::paper()),
        }
    }

    /// The ring.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// Requests relayed so far.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Requests relayed per shard, in configuration order.
    pub fn per_shard_routed(&self) -> Vec<u64> {
        self.per_shard.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    fn program_hash_for(&self, bench: &str, scale: u32) -> u64 {
        let key = (bench.to_string(), scale);
        let mut memo = self.memo.lock().unwrap();
        if let Some(&h) = memo.get(&key) {
            return h;
        }
        // Unknown benches still need a stable placement — any shard will
        // produce the identical structured error.
        let h = match benchmark_by_name(bench, Scale(scale)) {
            Some(b) => pps_ir::hash::program_hash(&b.program),
            None => pps_core::hash::fnv1a64(bench.as_bytes()),
        };
        memo.insert(key, h);
        h
    }

    /// The request's routing identity: `Some(route_hash)` for work
    /// requests, `None` for `Ping`/`Shutdown` (answered by fan-in /
    /// fan-out, not placement).
    ///
    /// The identity is the [`ArtifactKey`] projection computable without
    /// running anything: server-trained profiles hash as 0 (the daemon
    /// trains deterministically, so bench x scale already pins them), and
    /// carried profile texts hash by content.
    pub fn route_identity(&self, request: &Request) -> Option<u64> {
        let key = match request {
            Request::Ping | Request::Shutdown => return None,
            Request::Profile { bench, scale, depth } => {
                let mut f = Fold::new();
                f.u64(u64::from(*depth));
                ArtifactKey::new(
                    self.program_hash_for(bench, *scale),
                    f.finish(),
                    "profile",
                    self.machine,
                )
            }
            Request::Compile { bench, scale, scheme, profile } => ArtifactKey::new(
                self.program_hash_for(bench, *scale),
                profile.as_ref().map_or(0, |p| {
                    let mut f = Fold::new();
                    f.str(&p.edge).str(&p.path);
                    f.finish()
                }),
                canonical_scheme(scheme),
                self.machine,
            ),
            Request::RunCell { bench, scale, scheme, .. } => ArtifactKey::new(
                self.program_hash_for(bench, *scale),
                0,
                canonical_scheme(scheme),
                self.machine,
            ),
        };
        Some(key.route_hash())
    }

    fn connect(&self, shard: usize) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.ring.addrs[shard])?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.config.reply_timeout)?;
        Ok(stream)
    }

    /// Relays the raw request payload to `shard` and returns the raw reply
    /// payload. The cached upstream connection is retried once with a
    /// fresh one — it may have idled out since the last request.
    fn relay(
        &self,
        shard: usize,
        payload: &[u8],
        upstream: &mut HashMap<usize, TcpStream>,
    ) -> Result<Vec<u8>, String> {
        for fresh in [false, true] {
            if fresh {
                upstream.remove(&shard);
            }
            let stream = match upstream.entry(shard) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => match self.connect(shard) {
                    Ok(s) => e.insert(s),
                    Err(err) => {
                        if fresh {
                            return Err(format!("connect: {err}"));
                        }
                        continue;
                    }
                },
            };
            let attempt = frame::write_frame(stream, payload)
                .map_err(FrameError::from)
                .and_then(|()| frame::read_frame(stream));
            match attempt {
                Ok(reply) => {
                    self.routed.fetch_add(1, Ordering::Relaxed);
                    self.per_shard[shard].fetch_add(1, Ordering::Relaxed);
                    return Ok(reply);
                }
                Err(e) => {
                    upstream.remove(&shard);
                    if fresh {
                        return Err(e.to_string());
                    }
                }
            }
        }
        unreachable!("second relay attempt always returns")
    }

    /// Fan-in health: pings every shard, sums counters (max for
    /// generation-like fields), and stamps the router's own
    /// `routed`/`shards` numbers. Unreachable shards contribute nothing —
    /// `shards` always reports the configured ring size.
    pub fn aggregate_health(&self) -> HealthSnapshot {
        let mut agg = HealthSnapshot {
            proto_minor: PROTO_MINOR,
            routed: self.routed(),
            shards: self.ring.len() as u32,
            ..HealthSnapshot::default()
        };
        for shard in 0..self.ring.len() {
            let Ok(mut stream) = self.connect(shard) else { continue };
            let sent = frame::write_frame(&mut stream, &encode_request(&Envelope::new(Request::Ping)));
            let Ok(()) = sent else { continue };
            let Ok(payload) = frame::read_frame(&mut stream) else { continue };
            let Ok(Response::Pong { health }) = decode_response(&payload) else { continue };
            agg.queue_depth += health.queue_depth;
            agg.queue_capacity += health.queue_capacity;
            agg.workers += health.workers;
            agg.connections += health.connections;
            agg.requests += health.requests;
            agg.pgo_enabled |= health.pgo_enabled;
            agg.profiles_merged += health.profiles_merged;
            agg.units += health.units;
            agg.max_generation = agg.max_generation.max(health.max_generation);
            agg.drifted_units += health.drifted_units;
            agg.recompiles += health.recompiles;
            agg.swaps += health.swaps;
            agg.rollbacks += health.rollbacks;
            agg.in_flight_recompiles += health.in_flight_recompiles;
            agg.telemetry_enabled |= health.telemetry_enabled;
            agg.access_log_lines += health.access_log_lines;
            agg.traces_sampled += health.traces_sampled;
            agg.cache_hits += health.cache_hits;
            agg.cache_misses += health.cache_misses;
            agg.cache_evictions += health.cache_evictions;
            agg.cache_invalidations += health.cache_invalidations;
            agg.cache_entries += health.cache_entries;
        }
        agg
    }

    /// Forwards `Shutdown` to every shard, best effort.
    fn fan_out_shutdown(&self) {
        let payload = encode_request(&Envelope::new(Request::Shutdown));
        for shard in 0..self.ring.len() {
            if let Ok(mut stream) = self.connect(shard) {
                let _ = frame::write_frame(&mut stream, &payload)
                    .map_err(FrameError::from)
                    .and_then(|()| frame::read_frame(&mut stream));
            }
        }
    }
}

/// Scheme names canonicalize through [`parse_scheme`] so spelled-out
/// variants of one scheme place identically.
fn canonical_scheme(scheme: &str) -> String {
    parse_scheme(scheme).map_or_else(|| scheme.to_string(), |s| s.name())
}

enum First {
    Byte(u8),
    Eof,
    TimedOut,
    Err(io::Error),
}

fn read_first(stream: &mut TcpStream) -> First {
    let mut b = [0u8; 1];
    match stream.read(&mut b) {
        Ok(0) => First::Eof,
        Ok(_) => First::Byte(b[0]),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            First::TimedOut
        }
        Err(e) => First::Err(e),
    }
}

struct AtomicStats {
    connections: AtomicU64,
    frame_errors: AtomicU64,
}

/// Runs the router on the calling thread until `shutdown` becomes true,
/// then returns the final stats. One thread per client connection; shard
/// connections are cached per client connection, so a client's stream of
/// same-artifact requests rides one upstream socket.
///
/// # Errors
/// Only listener setup errors; per-connection failures are absorbed.
pub fn route(
    listener: TcpListener,
    router: &Router,
    obs: &Obs,
    shutdown: &AtomicBool,
) -> io::Result<RouterStats> {
    listener.set_nonblocking(true)?;
    let stats = AtomicStats { connections: AtomicU64::new(0), frame_errors: AtomicU64::new(0) };

    std::thread::scope(|scope| {
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let stats = &stats;
                    let obs = obs.clone();
                    scope.spawn(move || {
                        if let Err(e) = conn_loop(stream, router, shutdown, stats, &obs) {
                            obs.log(Level::Debug, || format!("router connection {peer}: {e}"));
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(router.config.poll);
                }
                Err(_) => std::thread::sleep(router.config.poll),
            }
        }
    });

    Ok(RouterStats {
        connections: stats.connections.load(Ordering::Relaxed),
        routed: router.routed(),
        errors: router.errors.load(Ordering::Relaxed),
        frame_errors: stats.frame_errors.load(Ordering::Relaxed),
    })
}

fn conn_loop(
    mut stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
    stats: &AtomicStats,
    obs: &Obs,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_nonblocking(false)?;
    let mut upstream: HashMap<usize, TcpStream> = HashMap::new();
    loop {
        stream.set_read_timeout(Some(router.config.poll))?;
        let first = match read_first(&mut stream) {
            First::Eof => return Ok(()),
            First::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            First::Err(e) => return Err(e),
            First::Byte(b) => b,
        };

        stream.set_read_timeout(Some(router.config.frame_timeout))?;
        let started = Instant::now();
        let payload = match frame::read_frame_after(first, &mut stream) {
            Ok(p) => p,
            Err(e) => {
                stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                let resp =
                    Response::Error { kind: ErrorKind::BadFrame, message: e.to_string() };
                let _ = frame::write_frame(&mut stream, &encode_response(&resp));
                return Ok(());
            }
        };

        let env = match decode_request(&payload) {
            Ok(env) => env,
            Err(e) => {
                let resp =
                    Response::Error { kind: ErrorKind::BadRequest, message: e.to_string() };
                frame::write_frame(&mut stream, &encode_response(&resp))?;
                continue;
            }
        };

        let reply: Vec<u8> = match router.route_identity(&env.request) {
            None => match env.request {
                Request::Ping => {
                    encode_response(&Response::Pong { health: router.aggregate_health() })
                }
                _ => {
                    // Shutdown: quiesce the shards, then the router.
                    router.fan_out_shutdown();
                    shutdown.store(true, Ordering::SeqCst);
                    encode_response(&Response::ShuttingDown)
                }
            },
            Some(hash) => {
                let shard = router.ring.shard_for(hash);
                match router.relay(shard, &payload, &mut upstream) {
                    Ok(reply) => reply,
                    Err(e) => {
                        router.errors.fetch_add(1, Ordering::Relaxed);
                        obs.log(Level::Warn, || {
                            format!(
                                "router: shard {shard} ({}) failed after {:.1}ms: {e}",
                                router.ring.addrs[shard],
                                started.elapsed().as_secs_f64() * 1e3,
                            )
                        });
                        encode_response(&Response::Error {
                            kind: ErrorKind::Internal,
                            message: format!(
                                "shard {shard} ({}) unavailable: {e}",
                                router.ring.addrs[shard]
                            ),
                        })
                    }
                }
            }
        };
        frame::write_frame(&mut stream, &reply)?;
    }
}

/// A router running on a background thread (tests and embedding).
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    router: Arc<Router>,
    thread: std::thread::JoinHandle<io::Result<RouterStats>>,
}

impl RouterHandle {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and routes on a background
    /// thread.
    ///
    /// # Errors
    /// Bind/local-addr failures.
    pub fn spawn(addr: &str, router: Router, obs: Obs) -> io::Result<RouterHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let router = Arc::new(router);
        let worker = Arc::clone(&router);
        let thread =
            std::thread::spawn(move || route(listener, worker.as_ref(), &Obs::noop(), &flag));
        let _ = obs;
        Ok(RouterHandle { addr: local, shutdown, router, thread })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router state.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Requests a drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the router to finish.
    ///
    /// # Errors
    /// The route loop's setup error, if any.
    ///
    /// # Panics
    /// Propagates a panic of the routing thread.
    pub fn join(self) -> io::Result<RouterStats> {
        self.thread.join().expect("router thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ProfileText;

    fn ring2() -> ShardRing {
        ShardRing::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()], DEFAULT_VNODES)
    }

    #[test]
    fn ring_placement_is_deterministic_and_covers_all_shards() {
        let ring = ShardRing::new(
            (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect(),
            DEFAULT_VNODES,
        );
        let mut seen = [0u64; 4];
        for k in 0..10_000u64 {
            let h = pps_core::hash::splitmix64(k);
            let s = ring.shard_for(h);
            assert_eq!(s, ring.shard_for(h), "placement must be deterministic");
            seen[s] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(
                count > 1000,
                "shard {i} owns {count}/10000 keys — vnode spread is badly skewed: {seen:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let addrs: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let full = ShardRing::new(addrs.clone(), DEFAULT_VNODES);
        let reduced = ShardRing::new(addrs[..3].to_vec(), DEFAULT_VNODES);
        let mut moved = 0u64;
        let total = 10_000u64;
        for k in 0..total {
            let h = pps_core::hash::splitmix64(k);
            let before = full.shard_for(h);
            let after = reduced.shard_for(h);
            if before < 3 && before != after {
                moved += 1;
            }
        }
        // Consistent hashing: keys on surviving shards overwhelmingly stay
        // put (round-robin or modulo would move ~2/3 of them).
        assert!(
            moved < total / 10,
            "{moved}/{total} keys moved off surviving shards"
        );
    }

    #[test]
    fn route_identity_separates_artifacts_and_sticks_per_artifact() {
        let router = Router::new(ring2(), RouterConfig::default());
        let compile = |scheme: &str, scale: u32| Request::Compile {
            bench: "wc".into(),
            scale,
            scheme: scheme.into(),
            profile: None,
        };
        let a = router.route_identity(&compile("P4", 1)).unwrap();
        assert_eq!(a, router.route_identity(&compile("P4", 1)).unwrap(), "identity is stable");
        assert_ne!(a, router.route_identity(&compile("M4", 1)).unwrap(), "scheme separates");
        assert_ne!(a, router.route_identity(&compile("P4", 2)).unwrap(), "scale separates");
        let with_profile = Request::Compile {
            bench: "wc".into(),
            scale: 1,
            scheme: "P4".into(),
            profile: Some(ProfileText { edge: "e".into(), path: "p".into() }),
        };
        assert_ne!(
            a,
            router.route_identity(&with_profile).unwrap(),
            "carried profiles separate from server-trained"
        );
        assert!(router.route_identity(&Request::Ping).is_none());
        assert!(router.route_identity(&Request::Shutdown).is_none());
    }

    #[test]
    fn runcell_and_compile_for_one_artifact_place_on_the_same_shard() {
        let router = Router::new(ring2(), RouterConfig::default());
        let compile = Request::Compile {
            bench: "wc".into(),
            scale: 1,
            scheme: "P4".into(),
            profile: None,
        };
        let run = Request::RunCell {
            bench: "wc".into(),
            scale: 1,
            scheme: "P4".into(),
            strict: true,
        };
        let ring = router.ring();
        assert_eq!(
            ring.shard_for(router.route_identity(&compile).unwrap()),
            ring.shard_for(router.route_identity(&run).unwrap()),
            "one artifact's compile and run traffic must share a shard cache"
        );
    }

    #[test]
    fn scheme_spelling_canonicalizes_for_placement() {
        let router = Router::new(ring2(), RouterConfig::default());
        let req = |scheme: &str| Request::RunCell {
            bench: "wc".into(),
            scale: 1,
            scheme: scheme.into(),
            strict: false,
        };
        // "P04" parses to the same scheme as "P4".
        assert_eq!(
            router.route_identity(&req("P4")).unwrap(),
            router.route_identity(&req("P04")).unwrap()
        );
    }
}
