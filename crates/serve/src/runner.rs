//! One benchmark × scheme measurement, end to end.

use pps_compact::CompactConfig;
use pps_core::{
    guarded_form_and_compact_hooked_obs, guarded_form_and_compact_obs, FormConfig, FormStats,
    GuardConfig, GuardReport, PipelineError, Scheme,
};
use pps_ir::interp::{DynCounts, ExecConfig, ExecError, Interp};
use pps_ir::trace::TeeSink;
use pps_ir::{Exec, FaultInjector};
use pps_machine::MachineConfig;
use pps_obs::Obs;
use pps_profile::serialize::{edge_from_text, edge_to_text, path_from_text, path_to_text};
use pps_profile::{
    EdgeProfile, EdgeProfiler, KPathProfile, KPathProfiler, PathProfile, PathProfiler,
    DEFAULT_PATH_DEPTH,
};
use pps_sim::{simulate_obs, Layout, SbDynStats};
use pps_suite::Benchmark;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Any failure of one benchmark × scheme run, with the benchmark name
/// attached so sweep-level reports can say *which* run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// An interpreter/simulator run failed (`stage` is `train run`,
    /// `layout run` or `test run`).
    Exec {
        /// Benchmark being measured.
        bench: String,
        /// Which of the three executions failed.
        stage: &'static str,
        /// The underlying interpreter error.
        error: ExecError,
    },
    /// The scheduling pipeline failed (strict mode) or could not recover.
    Pipeline {
        /// Benchmark being measured.
        bench: String,
        /// The underlying pipeline error.
        error: PipelineError,
    },
    /// Loading or saving a serialized profile failed
    /// ([`RunConfig::profile_in`] / [`RunConfig::profile_out`]).
    Profile {
        /// Benchmark being measured.
        bench: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Exec { bench, stage, error } => write!(f, "{bench} {stage}: {error}"),
            RunError::Pipeline { bench, error } => write!(f, "{bench} pipeline: {error}"),
            RunError::Profile { bench, message } => write!(f, "{bench} profile: {message}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Exec { error, .. } => Some(error),
            RunError::Pipeline { error, .. } => Some(error),
            RunError::Profile { .. } => None,
        }
    }
}

/// Shared configuration across a sweep.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Machine model (latencies, width, cache).
    pub machine: MachineConfig,
    /// Formation parameters.
    pub form: FormConfig,
    /// Compaction parameters.
    pub compact: CompactConfig,
    /// Path-profile depth override (`None` = the paper's 15).
    pub path_depth: Option<usize>,
    /// Recovery-boundary configuration. With empty `oracle_inputs` the
    /// runner substitutes the benchmark's training input, so every run gets
    /// a real differential check against the untransformed program.
    pub guard: GuardConfig,
    /// When set, a deterministic fault injector corrupts each procedure
    /// after its formation + compaction (the guard's post-pass seam),
    /// exercising the recovery boundary under load. The injector is seeded
    /// from this value and the benchmark name only, so the same faults hit
    /// the same procedures no matter how runs are scheduled across workers.
    pub fault_seed: Option<u64>,
    /// Directory of saved profiles (`<bench>.edgeprof` / `<bench>.pathprof`,
    /// the `pps_profile::serialize` text formats). When set, the training
    /// run is skipped and profiles are loaded instead; a missing pair is an
    /// error unless [`RunConfig::profile_out`] also points somewhere (then
    /// the run falls back to training and saves — cache semantics).
    pub profile_in: Option<String>,
    /// Directory to save freshly collected profiles into (atomic
    /// write-then-rename, so concurrent cells of the same benchmark never
    /// tear a file).
    pub profile_out: Option<String>,
    /// An already-collected profile pair to compile against, skipping both
    /// the training run and any [`RunConfig::profile_in`] lookup. The serve
    /// daemon uses this to train once, fold the pair into its live
    /// aggregate, and still hand the *same object* to the pipeline — so
    /// metrics stay byte-identical to the train-inline path.
    pub preloaded: Option<std::sync::Arc<(EdgeProfile, PathProfile)>>,
}

impl RunConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        RunConfig::default()
    }
}

/// File paths of a benchmark's saved profile pair under `dir`. `suffix`
/// distinguishes profile kinds that must never collide on disk: empty for
/// the standard pair, `.pk{k}` for pairs whose path profile was derived
/// from a k-iteration training run.
fn profile_paths(dir: &str, bench: &str, suffix: &str) -> (String, String) {
    (
        format!("{dir}/{bench}{suffix}.edgeprof"),
        format!("{dir}/{bench}{suffix}.pathprof"),
    )
}

/// Loads a saved profile pair; `Ok(None)` when either file is absent.
fn load_profiles(
    dir: &str,
    bench: &str,
    suffix: &str,
    depth: usize,
) -> Result<Option<(EdgeProfile, PathProfile)>, String> {
    let (ep, pp) = profile_paths(dir, bench, suffix);
    if !Path::new(&ep).exists() || !Path::new(&pp).exists() {
        return Ok(None);
    }
    let edge_text = std::fs::read_to_string(&ep).map_err(|e| format!("{ep}: {e}"))?;
    let edge = edge_from_text(&edge_text).map_err(|e| format!("{ep}: {e}"))?;
    let path_text = std::fs::read_to_string(&pp).map_err(|e| format!("{pp}: {e}"))?;
    let path = path_from_text(&path_text).map_err(|e| format!("{pp}: {e}"))?;
    if path.depth() != depth {
        return Err(format!(
            "{pp}: saved at depth {}, this run wants depth {depth}",
            path.depth()
        ));
    }
    Ok(Some((edge, path)))
}

/// Saves a profile pair atomically (unique temp name, then rename), so
/// parallel cells of the same benchmark can save concurrently without
/// tearing each other's files.
fn save_profiles(
    dir: &str,
    bench: &str,
    suffix: &str,
    edge: &EdgeProfile,
    path: &PathProfile,
) -> Result<(), String> {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let (ep, pp) = profile_paths(dir, bench, suffix);
    for (dest, text) in [(ep, edge_to_text(edge)), (pp, path_to_text(path))] {
        let tmp = format!(
            "{dest}.tmp.{}.{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        );
        std::fs::write(&tmp, text).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, &dest).map_err(|e| format!("{dest}: {e}"))?;
    }
    Ok(())
}

/// One training run of `bench` feeding both profilers.
fn train_pair(bench: &Benchmark, depth: usize) -> Result<(EdgeProfile, PathProfile), RunError> {
    let program = &bench.program;
    let mut tee = TeeSink::new(EdgeProfiler::new(program), PathProfiler::new(program, depth));
    Exec::new(program, ExecConfig::default())
        .run_traced(&bench.train_args, &mut tee)
        .map_err(|error| RunError::Exec {
            bench: bench.name.to_string(),
            stage: "train run",
            error,
        })?;
    Ok((tee.a.finish(), tee.b.finish()))
}

/// One k-iteration training run of `bench`, feeding the edge profiler and
/// the k-iteration Ball–Larus profiler. The `Pk*` schemes derive their
/// path profile from the returned [`KPathProfile`] (every prefix of every
/// chopped k-path loaded as a suffix-trie window), so formation sees
/// cross-iteration context exactly where a recorded span witnessed it.
pub fn train_kpair(
    bench: &Benchmark,
    k: usize,
) -> Result<(EdgeProfile, KPathProfile), RunError> {
    let program = &bench.program;
    let mut tee = TeeSink::new(EdgeProfiler::new(program), KPathProfiler::new(program, k));
    Exec::new(program, ExecConfig::default())
        .run_traced(&bench.train_args, &mut tee)
        .map_err(|error| RunError::Exec {
            bench: bench.name.to_string(),
            stage: "train run",
            error,
        })?;
    Ok((tee.a.finish(), tee.b.finish()))
}

/// Cross-run training cache: one trained `(edge, path)` profile pair per
/// `(benchmark, depth, profile kind)`, where the kind is the standard
/// forward profiler or a k-iteration derivation (`Pk*` schemes).
///
/// A profile pair depends only on the benchmark's program, its training
/// input, the path depth, and — for k-iteration pairs — k; not on machine
/// model, guard mode, or fault seed (faults are injected after profiling).
/// Sweeps that fan one benchmark out across many schemes can therefore
/// train once per kind and compile many times against the *same* profile
/// objects; the profilers are deterministic, so results are byte-identical
/// to retraining per cell.
///
/// Clones share the cache. The cache is thread-safe; when parallel workers
/// race on an untrained benchmark, both train (outside the lock) and the
/// first insert wins — either pair is the same value.
#[derive(Debug, Clone, Default)]
pub struct ProfileCache {
    inner: Arc<Mutex<HashMap<ProfileKey, ProfilePair>>>,
}

/// Cache key: `(benchmark name, path depth, k-iteration bound)` — `None`
/// for the standard forward pair.
type ProfileKey = (String, usize, Option<u32>);
/// Shared, immutable trained profile pair.
type ProfilePair = Arc<(EdgeProfile, PathProfile)>;

impl ProfileCache {
    /// Returns `config` with [`RunConfig::preloaded`] filled from the
    /// cache, training `bench` now on a miss. `scheme` selects the profile
    /// kind: `Pk*` schemes get a pair whose path profile is derived from a
    /// k-iteration training run (cached under a distinct key so standard
    /// and k-iteration pairs never alias). Configs that already carry a
    /// profile source (`preloaded`, `profile_in`) or want profiles saved
    /// (`profile_out`) pass through untouched.
    ///
    /// # Errors
    /// [`RunError::Exec`] when the training run fails.
    pub fn fill(
        &self,
        bench: &Benchmark,
        scheme: Scheme,
        config: &RunConfig,
    ) -> Result<RunConfig, RunError> {
        if config.preloaded.is_some() || config.profile_in.is_some() || config.profile_out.is_some()
        {
            return Ok(config.clone());
        }
        let depth = config.path_depth.unwrap_or(DEFAULT_PATH_DEPTH);
        let key = (bench.name.to_string(), depth, scheme.kpath_k());
        let cached = self.inner.lock().expect("profile cache lock").get(&key).cloned();
        let pair = match cached {
            Some(pair) => pair,
            None => {
                let trained = Arc::new(match scheme.kpath_k() {
                    Some(k) => {
                        let (edge, kprof) = train_kpair(bench, k as usize)?;
                        let path = kprof.to_path_profile(depth);
                        (edge, path)
                    }
                    None => train_pair(bench, depth)?,
                });
                self.inner
                    .lock()
                    .expect("profile cache lock")
                    .entry(key)
                    .or_insert_with(|| trained.clone())
                    .clone()
            }
        };
        Ok(RunConfig { preloaded: Some(pair), ..config.clone() })
    }
}

/// FNV-1a over `bytes` — stable benchmark-name hashing for fault seeds
/// (`std`'s hasher is randomized per process). Shared arithmetic from
/// [`pps_core::hash`].
fn fnv1a(bytes: &[u8]) -> u64 {
    pps_core::hash::fnv1a64(bytes)
}

/// The measured result of one benchmark × scheme run.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme that produced the code.
    pub scheme: Scheme,
    /// Cycle count on the testing input, perfect I-cache.
    pub cycles: u64,
    /// Cycle count including I-cache miss penalties.
    pub cycles_icache: u64,
    /// I-cache miss rate per instruction fetch.
    pub miss_rate: f64,
    /// I-cache fetch accesses.
    pub accesses: u64,
    /// I-cache misses.
    pub misses: u64,
    /// Figure 7 statistics (testing input).
    pub sb_stats: SbDynStats,
    /// Laid-out code size in instructions.
    pub static_instrs: u64,
    /// Formation statistics.
    pub form_stats: FormStats,
    /// Dynamic counts of the testing run.
    pub counts: DynCounts,
    /// Guardrail outcome: incidents recorded and procedures degraded while
    /// producing this run (empty/zero on a clean run).
    pub guard: GuardReport,
}

/// Runs the complete methodology for `bench` under `scheme`:
/// train-profile → form → compact → train-layout → measure on test input.
///
/// The formation + compaction step runs inside the pipeline's recovery
/// boundary ([`guarded_form_and_compact`]): in
/// [`GuardMode::Degrade`](pps_core::GuardMode) a procedure that fails its
/// post-pass checks falls back to basic-block scheduling and the run
/// continues (see [`SchemeRun::guard`]); in strict mode the first incident
/// surfaces here as [`RunError::Pipeline`].
pub fn run_scheme(
    bench: &Benchmark,
    scheme: Scheme,
    config: &RunConfig,
) -> Result<SchemeRun, RunError> {
    run_scheme_obs(bench, scheme, config, &Obs::noop())
}

/// [`run_scheme`] with observability: the whole run executes under a
/// `run-scheme` span (children: `profile`, the guarded pipeline's
/// per-procedure spans, `layout`, and the two `simulate` runs), with
/// metrics and decision events labeled `bench` and `scheme`.
///
/// # Errors
/// As [`run_scheme`].
pub fn run_scheme_obs(
    bench: &Benchmark,
    scheme: Scheme,
    config: &RunConfig,
    obs: &Obs,
) -> Result<SchemeRun, RunError> {
    let obs = obs.with_label("bench", bench.name).with_label("scheme", scheme.name());
    let _run_span = obs
        .span("run-scheme")
        .arg("bench", bench.name)
        .arg("scheme", scheme.name());
    let mut program = bench.program.clone();
    let exec_config = ExecConfig::default();
    let exec_err = |stage: &'static str| {
        move |error: ExecError| RunError::Exec { bench: bench.name.to_string(), stage, error }
    };

    // 1. Profiles: load a saved pair when configured, otherwise one
    // training run feeds both profilers (optionally saving the pair so
    // later runs — or a serve daemon's Compile requests — can reuse it).
    let depth = config.path_depth.unwrap_or(DEFAULT_PATH_DEPTH);
    let profile_span = obs.span("profile").arg("depth", depth);
    let profile_err =
        |message: String| RunError::Profile { bench: bench.name.to_string(), message };
    // k-iteration schemes train a different profile kind (the path
    // profile is derived from chopped k-paths); their saved pairs live
    // under `.pk{k}` names so the two kinds never alias on disk. The
    // preloaded seam is the caller's responsibility — the ProfileCache
    // and the serve daemon both key on the scheme.
    let suffix = scheme.kpath_k().map(|k| format!(".pk{k}")).unwrap_or_default();
    let mut loaded: Option<Arc<(EdgeProfile, PathProfile)>> = config.preloaded.clone();
    if let (None, Some(dir)) = (&loaded, &config.profile_in) {
        match load_profiles(dir, bench.name, &suffix, depth).map_err(&profile_err)? {
            Some(pair) => loaded = Some(Arc::new(pair)),
            // With an output directory the missing pair is a cache miss:
            // train below and save. Without one it is a user error.
            None if config.profile_out.is_some() => {}
            None => {
                return Err(profile_err(format!(
                    "no saved profile in {dir} (expected {name}{suffix}.edgeprof and \
                     {name}{suffix}.pathprof); run with --profile-out first",
                    name = bench.name
                )))
            }
        }
    }
    let mut pair: Arc<(EdgeProfile, PathProfile)> = match loaded {
        Some(pair) => pair,
        None => {
            let pair = match scheme.kpath_k() {
                Some(k) => {
                    let (edge, kprof) = train_kpair(bench, k as usize)?;
                    let path = kprof.to_path_profile(depth);
                    (edge, path)
                }
                None => train_pair(bench, depth)?,
            };
            if let Some(dir) = &config.profile_out {
                save_profiles(dir, bench.name, &suffix, &pair.0, &pair.1)
                    .map_err(&profile_err)?;
            }
            Arc::new(pair)
        }
    };
    drop(profile_span);

    // Interprocedural phase (`Px4`): inline the hottest call sites behind
    // the guard's recovery discipline, then retrain both profilers on the
    // inlined program — the profiles the pipeline consumes must describe
    // the blocks formation will actually see.
    if matches!(scheme, Scheme::Inter { .. }) {
        let inline_span = obs.span("inline");
        let inline_config = pps_core::InlineConfig {
            oracle_inputs: vec![bench.train_args.clone()],
            step_budget: config.guard.step_budget,
            ..pps_core::InlineConfig::default()
        };
        let outcome = pps_core::inline_hot_calls(&mut program, &pair.0, &inline_config);
        if obs.is_recording() {
            obs.counter("inline.sites", outcome.inlined.len() as u64);
            obs.counter("inline.rolled_back", outcome.rolled_back as u64);
            obs.counter("inline.skipped", outcome.skipped as u64);
        }
        drop(inline_span);
        if !outcome.inlined.is_empty() {
            let retrain_span = obs.span("profile").arg("stage", "retrain");
            let mut tee =
                TeeSink::new(EdgeProfiler::new(&program), PathProfiler::new(&program, depth));
            Exec::new(&program, exec_config)
                .run_traced(&bench.train_args, &mut tee)
                .map_err(exec_err("inline retrain run"))?;
            pair = Arc::new((tee.a.finish(), tee.b.finish()));
            drop(retrain_span);
        }
    }
    let (edge, path) = (&pair.0, &pair.1);
    edge.record_metrics(&obs);
    path.record_metrics(&obs);

    // 2. Form + compact under the recovery boundary. The runner's machine
    // description is the single source of truth: it overrides the
    // compactor's copy so latency-model sweeps affect the schedules, not
    // just the cache simulation.
    let mut compact_config = config.compact;
    compact_config.machine = config.machine;
    let mut guard = config.guard.clone();
    if guard.oracle_inputs.is_empty() {
        guard.oracle_inputs = vec![bench.train_args.clone()];
    }
    let guarded = match config.fault_seed {
        None => guarded_form_and_compact_obs(
            &mut program,
            edge,
            Some(path),
            scheme,
            &config.form,
            &compact_config,
            &guard,
            &obs,
        ),
        Some(seed) => {
            // Seeded per (seed, benchmark) only — never per worker or run
            // order — so fault routing is identical at any job count.
            let mut injector = FaultInjector::new(seed ^ fnv1a(bench.name.as_bytes()));
            let inputs = vec![bench.train_args.clone()];
            let budget = guard.step_budget;
            guarded_form_and_compact_hooked_obs(
                &mut program,
                edge,
                Some(path),
                scheme,
                &config.form,
                &compact_config,
                &guard,
                &obs,
                &mut |prog, pid| {
                    let _ = injector.inject_effective(prog, pid, &inputs, budget, 32);
                },
            )
        }
    }
    .map_err(|error| RunError::Pipeline { bench: bench.name.to_string(), error })?;
    let compacted = guarded.compacted;
    let form_stats = guarded.stats;

    // 3. Training-input run over the transformed code for layout weights.
    let train_out = simulate_obs(
        &program,
        &compacted,
        &config.machine,
        None,
        &bench.train_args,
        &obs.with_label("stage", "layout"),
    )
    .map_err(exec_err("layout run"))?;
    let layout = {
        let _span = obs.span("layout");
        Layout::build(&program, &compacted, &train_out.transitions, &config.machine)
    };

    // 4. Measured run on the testing input.
    let out = simulate_obs(
        &program,
        &compacted,
        &config.machine,
        Some(&layout),
        &bench.test_args,
        &obs.with_label("stage", "test"),
    )
    .map_err(exec_err("test run"))?;

    // Sanity: the transformed program must behave like the original.
    debug_assert_eq!(
        out.exec.output,
        Interp::new(&bench.program, exec_config)
            .run(&bench.test_args)
            .expect("original runs")
            .output,
        "{}: transformation changed observable behavior",
        bench.name
    );

    let icache = out.icache.expect("layout supplied");
    if obs.is_recording() {
        obs.counter("form.static_before", form_stats.static_before);
        obs.counter("form.static_after", form_stats.static_after);
        obs.counter("compact.static_instrs", compacted.total_items());
    }
    Ok(SchemeRun {
        scheme,
        cycles: out.cycles,
        cycles_icache: out.cycles_with_icache(),
        miss_rate: icache.miss_rate(),
        accesses: icache.accesses,
        misses: icache.misses,
        sb_stats: out.sb_stats,
        static_instrs: compacted.total_items(),
        form_stats,
        counts: out.exec.counts,
        guard: guarded.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_suite::{benchmark_by_name, Scale};

    #[test]
    fn full_methodology_on_wc() {
        let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let bb = run_scheme(&bench, Scheme::BasicBlock, &config).unwrap();
        let m4 = run_scheme(&bench, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&bench, Scheme::P4, &config).unwrap();
        assert!(m4.cycles < bb.cycles, "M4 {} !< BB {}", m4.cycles, bb.cycles);
        assert!(p4.cycles < bb.cycles, "P4 {} !< BB {}", p4.cycles, bb.cycles);
        assert!(p4.sb_stats.avg_blocks_executed() > bb.sb_stats.avg_blocks_executed());
        assert!(p4.static_instrs >= bb.static_instrs);
        assert!(p4.miss_rate >= 0.0 && p4.miss_rate < 1.0);
        // The runs went through the guarded pipeline and were clean.
        assert!(bb.guard.clean() && m4.guard.clean() && p4.guard.clean());
    }

    #[test]
    fn saved_profiles_reproduce_the_training_run() {
        let bench = benchmark_by_name("wc", Scale::quick()).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("pps-profile-io-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();

        // Pass 1: train and save.
        let mut save_cfg = RunConfig::paper();
        save_cfg.profile_out = Some(dir.clone());
        let trained = run_scheme(&bench, Scheme::P4, &save_cfg).unwrap();
        assert!(Path::new(&format!("{dir}/wc.edgeprof")).exists());
        assert!(Path::new(&format!("{dir}/wc.pathprof")).exists());

        // Pass 2: load; measurements must be identical.
        let mut load_cfg = RunConfig::paper();
        load_cfg.profile_in = Some(dir.clone());
        let loaded = run_scheme(&bench, Scheme::P4, &load_cfg).unwrap();
        assert_eq!(loaded.cycles, trained.cycles);
        assert_eq!(loaded.cycles_icache, trained.cycles_icache);
        assert_eq!(loaded.static_instrs, trained.static_instrs);
        assert_eq!(loaded.sb_stats, trained.sb_stats);

        // A missing pair without an output fallback is a structured error.
        let mut missing_cfg = RunConfig::paper();
        missing_cfg.profile_in = Some(format!("{dir}/nowhere"));
        let err = run_scheme(&bench, Scheme::P4, &missing_cfg).unwrap_err();
        assert!(matches!(err, RunError::Profile { .. }), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kpath_and_inter_schemes_run_end_to_end() {
        let config = RunConfig::paper();
        // A loopy benchmark exercises the k-iteration chopper; `calls`-style
        // benchmarks exercise the inline phase. Both must run the full
        // methodology cleanly and produce sane measurements.
        let bench = benchmark_by_name("alt", Scale::quick()).unwrap();
        let bb = run_scheme(&bench, Scheme::BasicBlock, &config).unwrap();
        for scheme in [Scheme::PK2, Scheme::PK3, Scheme::PX4] {
            let r = run_scheme(&bench, scheme, &config).unwrap();
            assert!(r.guard.clean(), "{}: {:?}", scheme.name(), r.guard);
            assert!(r.cycles > 0 && r.cycles <= bb.cycles, "{}", scheme.name());
        }
        // Runs are deterministic per scheme.
        let a = run_scheme(&bench, Scheme::PK2, &config).unwrap();
        let b = run_scheme(&bench, Scheme::PK2, &config).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.static_instrs, b.static_instrs);
    }

    #[test]
    fn micro_benchmarks_strongly_favor_paths() {
        let bench = benchmark_by_name("alt", Scale::quick()).unwrap();
        let config = RunConfig::paper();
        let m4 = run_scheme(&bench, Scheme::M4, &config).unwrap();
        let p4 = run_scheme(&bench, Scheme::P4, &config).unwrap();
        assert!(
            p4.cycles < m4.cycles,
            "alt: P4 {} !< M4 {} (path profiles must exploit the TTTF pattern)",
            p4.cycles,
            m4.cycles
        );
    }
}
