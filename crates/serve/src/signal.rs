//! SIGTERM/SIGINT → shutdown-flag bridge, via a direct `signal(2)` FFI
//! binding (stdlib only; no external crates).
//!
//! The handler does one async-signal-safe thing: store `true` into an
//! `AtomicBool` registered beforehand. The daemon's accept loop polls that
//! flag, so a `kill -TERM` produces the same graceful drain as an in-band
//! `Shutdown` request.

#![cfg(unix)]

use std::os::raw::c_int;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_signal(_sig: c_int) {
    // Only an atomic store: async-signal-safe.
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

extern "C" {
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
}

/// Registers `flag` to be set on SIGTERM or SIGINT. Only the first
/// registration in a process takes effect.
pub fn install_shutdown_flag(flag: Arc<AtomicBool>) {
    let _ = SHUTDOWN.set(flag);
    // SAFETY: `on_signal` is an async-signal-safe extern "C" fn and stays
    // alive for the process lifetime; replacing the default disposition of
    // SIGTERM/SIGINT is the entire point.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}
