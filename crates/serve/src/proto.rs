//! Request/response messages and their binary payload encoding.
//!
//! Payloads are built from three primitives only — `u8`, big-endian `u32`
//! / `u64`, and length-prefixed UTF-8 strings — decoded by a
//! bounds-checked cursor, so a corrupted payload always surfaces as a
//! [`ProtoError`] with a byte offset, never a panic or over-read. The
//! profile texts carried by [`Request::Compile`] are exactly the
//! `pps_profile::serialize` formats the harness writes with
//! `--profile-out`.

use std::fmt;

/// Protocol minor version, reported in the [`HealthSnapshot`] so clients
/// can detect feature level in-band. Minor 1 added the health snapshot
/// itself (the `Pong` reply was previously empty); minor 2 appended the
/// telemetry fields (`telemetry_enabled`, `access_log_lines`,
/// `traces_sampled`); minor 3 appended the compile-cache counters
/// (`cache_hits`, `cache_misses`, `cache_evictions`,
/// `cache_invalidations`, `cache_entries`) and the shard-router fields
/// (`routed`, `shards`). The `Pong` payload is versioned by its own
/// leading `proto_minor` field: encoders emit exactly the fields their
/// declared minor defines, and decoders read fields up to
/// `min(declared, ours)`, defaulting the rest and skipping unknown
/// trailing bytes from newer servers. The frame-layer major version
/// (`frame::VERSION`) is unchanged — old clients still frame and route
/// replies correctly, they just carry more payload.
pub const PROTO_MINOR: u32 = 3;

/// A payload-decoding failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Byte offset in the payload.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Profile texts a `Compile` request ships along, in the
/// `pps_profile::serialize` formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileText {
    /// `pps-edge-profile v1` text.
    pub edge: String,
    /// `pps-path-profile v1` text.
    pub path: String,
}

/// One service request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Run a benchmark's training input under the edge *and* general-path
    /// profilers and return both serialized profiles.
    Profile {
        /// Benchmark name (see `pps_suite`).
        bench: String,
        /// Suite scale factor.
        scale: u32,
        /// Path-profile window depth (0 = the paper's default, 15).
        depth: u32,
    },
    /// Form + compact the benchmark's program under a named scheme,
    /// against a client-supplied profile when present (otherwise the
    /// server trains one), returning a deterministic compile report.
    Compile {
        /// Benchmark name.
        bench: String,
        /// Suite scale factor.
        scale: u32,
        /// Scheme name (`BB`, `M4`, `M16`, `P4`, `P4e`, …).
        scheme: String,
        /// Saved profiles to compile against instead of training.
        profile: Option<ProfileText>,
    },
    /// One full benchmark × scheme experiment cell (train → form →
    /// compact → layout → measure), returning the same metrics JSON the
    /// harness emits with `--metrics-out`.
    RunCell {
        /// Benchmark name.
        bench: String,
        /// Suite scale factor.
        scale: u32,
        /// Scheme name.
        scheme: String,
        /// Guard mode: fail-fast instead of degrade-and-continue.
        strict: bool,
    },
    /// Ask the daemon to drain and exit (the in-band equivalent of
    /// SIGTERM).
    Shutdown,
}

impl Request {
    /// Stable lowercase tag for metrics labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Profile { .. } => "profile",
            Request::Compile { .. } => "compile",
            Request::RunCell { .. } => "runcell",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its per-request deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Milliseconds the request may wait in the server's queue before the
    /// worker rejects it with [`ErrorKind::DeadlineExceeded`]; 0 = none.
    pub deadline_ms: u32,
    /// The request proper.
    pub request: Request,
}

impl Envelope {
    /// Wraps a request with no deadline.
    pub fn new(request: Request) -> Self {
        Envelope { deadline_ms: 0, request }
    }
}

/// Category of a structured error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame itself was malformed (the connection closes after this).
    BadFrame,
    /// The payload did not decode as a request.
    BadRequest,
    /// No benchmark by that name.
    UnknownBench,
    /// Unparseable scheme name.
    UnknownScheme,
    /// A client-supplied profile failed to parse.
    BadProfile,
    /// The scheduling pipeline failed (strict mode).
    Pipeline,
    /// An interpreter/simulator run failed.
    Exec,
    /// The request out-waited its deadline in the queue.
    DeadlineExceeded,
    /// Server-side invariant failure (e.g. a panicking handler).
    Internal,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::BadFrame => 0,
            ErrorKind::BadRequest => 1,
            ErrorKind::UnknownBench => 2,
            ErrorKind::UnknownScheme => 3,
            ErrorKind::BadProfile => 4,
            ErrorKind::Pipeline => 5,
            ErrorKind::Exec => 6,
            ErrorKind::DeadlineExceeded => 7,
            ErrorKind::Internal => 8,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorKind> {
        Some(match v {
            0 => ErrorKind::BadFrame,
            1 => ErrorKind::BadRequest,
            2 => ErrorKind::UnknownBench,
            3 => ErrorKind::UnknownScheme,
            4 => ErrorKind::BadProfile,
            5 => ErrorKind::Pipeline,
            6 => ErrorKind::Exec,
            7 => ErrorKind::DeadlineExceeded,
            8 => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// Stable numeric code (also the wire byte). Access-log `retcode`s
    /// for errors are `10 + code()`.
    pub fn code(self) -> u8 {
        self.to_u8()
    }

    /// Stable lowercase tag for metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::BadFrame => "bad-frame",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::UnknownBench => "unknown-bench",
            ErrorKind::UnknownScheme => "unknown-scheme",
            ErrorKind::BadProfile => "bad-profile",
            ErrorKind::Pipeline => "pipeline",
            ErrorKind::Exec => "exec",
            ErrorKind::DeadlineExceeded => "deadline",
            ErrorKind::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// In-band server health, carried by every `Pong` reply (protocol
/// minor 1). Lets loadgen and ops observe the continuous-PGO loop state
/// without a side channel: drift detection, swaps, and rollbacks are all
/// visible through the same socket the work flows over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Server's [`PROTO_MINOR`].
    pub proto_minor: u32,
    /// Requests currently waiting in the bounded queue.
    pub queue_depth: u32,
    /// The queue's capacity.
    pub queue_capacity: u32,
    /// Worker threads serving the queue.
    pub workers: u32,
    /// Connections accepted so far.
    pub connections: u64,
    /// Requests decoded so far.
    pub requests: u64,
    /// Whether the continuous-PGO loop is running.
    pub pgo_enabled: bool,
    /// Profiles folded into the live aggregate so far.
    pub profiles_merged: u64,
    /// Serving units tracked by the PGO tier.
    pub units: u32,
    /// Highest unit generation currently serving (1 = never re-swapped).
    pub max_generation: u64,
    /// Units whose drift score is currently above the enter threshold.
    pub drifted_units: u32,
    /// Background recompiles attempted.
    pub recompiles: u64,
    /// Recompiles that landed via atomic swap.
    pub swaps: u64,
    /// Recompiles rejected (fault, verifier/oracle reject, or stale CAS)
    /// and rolled back — the old unit kept serving.
    pub rollbacks: u64,
    /// Recompiles running right now (must be 0 after a clean drain).
    pub in_flight_recompiles: u32,
    /// Whether the live-telemetry layer (scrape endpoint / access log /
    /// tail sampler) is active. Protocol minor 2.
    pub telemetry_enabled: bool,
    /// Access-log lines written so far. Protocol minor 2.
    pub access_log_lines: u64,
    /// Span trees retained by the tail sampler so far. Protocol minor 2.
    pub traces_sampled: u64,
    /// Compile-cache hits (requests answered without running the
    /// pipeline). Protocol minor 3.
    pub cache_hits: u64,
    /// Compile-cache misses. Protocol minor 3.
    pub cache_misses: u64,
    /// Compile-cache entries evicted by the LRU bound. Protocol minor 3.
    pub cache_evictions: u64,
    /// Compile-cache entries invalidated by a PGO hot-swap epoch bump.
    /// Protocol minor 3.
    pub cache_invalidations: u64,
    /// Compile-cache entries currently resident. Protocol minor 3.
    pub cache_entries: u32,
    /// Requests this process routed to downstream shards (nonzero only on
    /// a `pps-shard` router). Protocol minor 3.
    pub routed: u64,
    /// Downstream shards behind this process (nonzero only on a
    /// `pps-shard` router). Protocol minor 3.
    pub shards: u32,
}

/// One service reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong {
        /// Server health at reply time.
        health: HealthSnapshot,
    },
    /// Serialized edge + path profiles.
    Profile {
        /// `pps-edge-profile v1` text.
        edge: String,
        /// `pps-path-profile v1` text.
        path: String,
    },
    /// Deterministic `pps-compile-report v1` text.
    Compile {
        /// The report.
        report: String,
    },
    /// Metrics-registry JSON, byte-identical to the harness's
    /// `--metrics-out` for the same cell.
    RunCell {
        /// The metrics JSON.
        metrics_json: String,
    },
    /// The bounded queue was full — retry later (backpressure, not an
    /// error).
    Busy,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
    /// A structured failure.
    Error {
        /// Category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Stable lowercase outcome tag for metrics labels.
    pub fn outcome_name(&self) -> &'static str {
        match self {
            Response::Pong { .. } | Response::Profile { .. } | Response::Compile { .. } | Response::RunCell { .. } => "ok",
            Response::Busy => "busy",
            Response::ShuttingDown => "shutting-down",
            Response::Error { kind, .. } => kind.name(),
        }
    }

    /// Numeric outcome for access logs: 0 ok, 1 busy, 2 shutting-down,
    /// `10 + ErrorKind::code()` for structured errors.
    pub fn retcode(&self) -> u32 {
        match self {
            Response::Pong { .. }
            | Response::Profile { .. }
            | Response::Compile { .. }
            | Response::RunCell { .. } => 0,
            Response::Busy => 1,
            Response::ShuttingDown => 2,
            Response::Error { kind, .. } => 10 + u32::from(kind.code()),
        }
    }
}

// --- encoding primitives ----------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ProtoError> {
        Err(ProtoError { offset: self.pos, message: message.into() })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return self.err(format!(
                "need {n} bytes, {} left",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => {
                self.pos -= 1;
                self.err(format!("bad bool {other}"))
            }
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(ProtoError { offset: start, message: "invalid UTF-8".into() }),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes whatever is left (fields from a newer protocol minor).
    fn skip_rest(&mut self) {
        self.pos = self.buf.len();
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError {
                offset: self.pos,
                message: format!("{} trailing bytes", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

const REQ_PING: u8 = 0;
const REQ_PROFILE: u8 = 1;
const REQ_COMPILE: u8 = 2;
const REQ_RUNCELL: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

const RESP_PONG: u8 = 0;
const RESP_PROFILE: u8 = 1;
const RESP_COMPILE: u8 = 2;
const RESP_RUNCELL: u8 = 3;
const RESP_BUSY: u8 = 4;
const RESP_SHUTTING_DOWN: u8 = 5;
const RESP_ERROR: u8 = 6;

/// Encodes a request envelope into a frame payload.
pub fn encode_request(env: &Envelope) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, env.deadline_ms);
    match &env.request {
        Request::Ping => buf.push(REQ_PING),
        Request::Profile { bench, scale, depth } => {
            buf.push(REQ_PROFILE);
            put_str(&mut buf, bench);
            put_u32(&mut buf, *scale);
            put_u32(&mut buf, *depth);
        }
        Request::Compile { bench, scale, scheme, profile } => {
            buf.push(REQ_COMPILE);
            put_str(&mut buf, bench);
            put_u32(&mut buf, *scale);
            put_str(&mut buf, scheme);
            match profile {
                None => buf.push(0),
                Some(p) => {
                    buf.push(1);
                    put_str(&mut buf, &p.edge);
                    put_str(&mut buf, &p.path);
                }
            }
        }
        Request::RunCell { bench, scale, scheme, strict } => {
            buf.push(REQ_RUNCELL);
            put_str(&mut buf, bench);
            put_u32(&mut buf, *scale);
            put_str(&mut buf, scheme);
            buf.push(u8::from(*strict));
        }
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
    }
    buf
}

/// Decodes a frame payload into a request envelope.
///
/// # Errors
/// [`ProtoError`] on any malformed payload.
pub fn decode_request(payload: &[u8]) -> Result<Envelope, ProtoError> {
    let mut c = Cursor::new(payload);
    let deadline_ms = c.u32()?;
    let tag = c.u8()?;
    let request = match tag {
        REQ_PING => Request::Ping,
        REQ_PROFILE => Request::Profile {
            bench: c.string()?,
            scale: c.u32()?,
            depth: c.u32()?,
        },
        REQ_COMPILE => {
            let bench = c.string()?;
            let scale = c.u32()?;
            let scheme = c.string()?;
            let profile = match c.u8()? {
                0 => None,
                1 => Some(ProfileText { edge: c.string()?, path: c.string()? }),
                other => return c.err(format!("bad profile flag {other}")),
            };
            Request::Compile { bench, scale, scheme, profile }
        }
        REQ_RUNCELL => Request::RunCell {
            bench: c.string()?,
            scale: c.u32()?,
            scheme: c.string()?,
            strict: match c.u8()? {
                0 => false,
                1 => true,
                other => return c.err(format!("bad strict flag {other}")),
            },
        },
        REQ_SHUTDOWN => Request::Shutdown,
        other => return c.err(format!("unknown request tag {other}")),
    };
    c.done()?;
    Ok(Envelope { deadline_ms, request })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Pong { health } => {
            buf.push(RESP_PONG);
            // The Pong payload is versioned by its declared minor: a
            // minor-0 Pong is the bare tag, minor 1 added the snapshot,
            // minor 2 appended the telemetry fields.
            if health.proto_minor >= 1 {
                put_u32(&mut buf, health.proto_minor);
                put_u32(&mut buf, health.queue_depth);
                put_u32(&mut buf, health.queue_capacity);
                put_u32(&mut buf, health.workers);
                put_u64(&mut buf, health.connections);
                put_u64(&mut buf, health.requests);
                buf.push(u8::from(health.pgo_enabled));
                put_u64(&mut buf, health.profiles_merged);
                put_u32(&mut buf, health.units);
                put_u64(&mut buf, health.max_generation);
                put_u32(&mut buf, health.drifted_units);
                put_u64(&mut buf, health.recompiles);
                put_u64(&mut buf, health.swaps);
                put_u64(&mut buf, health.rollbacks);
                put_u32(&mut buf, health.in_flight_recompiles);
            }
            if health.proto_minor >= 2 {
                buf.push(u8::from(health.telemetry_enabled));
                put_u64(&mut buf, health.access_log_lines);
                put_u64(&mut buf, health.traces_sampled);
            }
            if health.proto_minor >= 3 {
                put_u64(&mut buf, health.cache_hits);
                put_u64(&mut buf, health.cache_misses);
                put_u64(&mut buf, health.cache_evictions);
                put_u64(&mut buf, health.cache_invalidations);
                put_u32(&mut buf, health.cache_entries);
                put_u64(&mut buf, health.routed);
                put_u32(&mut buf, health.shards);
            }
        }
        Response::Profile { edge, path } => {
            buf.push(RESP_PROFILE);
            put_str(&mut buf, edge);
            put_str(&mut buf, path);
        }
        Response::Compile { report } => {
            buf.push(RESP_COMPILE);
            put_str(&mut buf, report);
        }
        Response::RunCell { metrics_json } => {
            buf.push(RESP_RUNCELL);
            put_str(&mut buf, metrics_json);
        }
        Response::Busy => buf.push(RESP_BUSY),
        Response::ShuttingDown => buf.push(RESP_SHUTTING_DOWN),
        Response::Error { kind, message } => {
            buf.push(RESP_ERROR);
            buf.push(kind.to_u8());
            put_str(&mut buf, message);
        }
    }
    buf
}

/// Decodes a frame payload into a response.
///
/// # Errors
/// [`ProtoError`] on any malformed payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let resp = match tag {
        RESP_PONG => {
            // Tolerant by minor: a bare tag is a minor-0 Pong; fields a
            // newer server appended past our minor are skipped; fields our
            // minor defines but an older server omitted stay defaulted.
            let mut health = HealthSnapshot::default();
            if c.remaining() > 0 {
                health.proto_minor = c.u32()?;
                health.queue_depth = c.u32()?;
                health.queue_capacity = c.u32()?;
                health.workers = c.u32()?;
                health.connections = c.u64()?;
                health.requests = c.u64()?;
                health.pgo_enabled = c.bool()?;
                health.profiles_merged = c.u64()?;
                health.units = c.u32()?;
                health.max_generation = c.u64()?;
                health.drifted_units = c.u32()?;
                health.recompiles = c.u64()?;
                health.swaps = c.u64()?;
                health.rollbacks = c.u64()?;
                health.in_flight_recompiles = c.u32()?;
            }
            if health.proto_minor >= 2 {
                health.telemetry_enabled = c.bool()?;
                health.access_log_lines = c.u64()?;
                health.traces_sampled = c.u64()?;
            }
            if health.proto_minor >= 3 {
                health.cache_hits = c.u64()?;
                health.cache_misses = c.u64()?;
                health.cache_evictions = c.u64()?;
                health.cache_invalidations = c.u64()?;
                health.cache_entries = c.u32()?;
                health.routed = c.u64()?;
                health.shards = c.u32()?;
            }
            if health.proto_minor > PROTO_MINOR {
                c.skip_rest();
            }
            Response::Pong { health }
        }
        RESP_PROFILE => Response::Profile { edge: c.string()?, path: c.string()? },
        RESP_COMPILE => Response::Compile { report: c.string()? },
        RESP_RUNCELL => Response::RunCell { metrics_json: c.string()? },
        RESP_BUSY => Response::Busy,
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_ERROR => {
            let kind_byte = c.u8()?;
            let Some(kind) = ErrorKind::from_u8(kind_byte) else {
                return c.err(format!("unknown error kind {kind_byte}"));
            };
            Response::Error { kind, message: c.string()? }
        }
        other => return c.err(format!("unknown response tag {other}")),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Envelope> {
        vec![
            Envelope::new(Request::Ping),
            Envelope {
                deadline_ms: 250,
                request: Request::Profile { bench: "wc".into(), scale: 1, depth: 15 },
            },
            Envelope::new(Request::Compile {
                bench: "gcc".into(),
                scale: 2,
                scheme: "P4".into(),
                profile: None,
            }),
            Envelope::new(Request::Compile {
                bench: "alt".into(),
                scale: 1,
                scheme: "P4e".into(),
                profile: Some(ProfileText {
                    edge: "pps-edge-profile v1\n".into(),
                    path: "pps-path-profile v1 depth 15\n".into(),
                }),
            }),
            Envelope {
                deadline_ms: 1000,
                request: Request::RunCell {
                    bench: "wc".into(),
                    scale: 1,
                    scheme: "M4".into(),
                    strict: true,
                },
            },
            Envelope::new(Request::Shutdown),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for env in sample_requests() {
            let payload = encode_request(&env);
            assert_eq!(decode_request(&payload).unwrap(), env);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Pong { health: HealthSnapshot::default() },
            Response::Pong {
                health: HealthSnapshot {
                    proto_minor: PROTO_MINOR,
                    queue_depth: 3,
                    queue_capacity: 64,
                    workers: 4,
                    connections: 17,
                    requests: 123_456,
                    pgo_enabled: true,
                    profiles_merged: 99,
                    units: 6,
                    max_generation: 4,
                    drifted_units: 2,
                    recompiles: 11,
                    swaps: 9,
                    rollbacks: 2,
                    in_flight_recompiles: 1,
                    telemetry_enabled: true,
                    access_log_lines: 4321,
                    traces_sampled: 12,
                    cache_hits: 42,
                    cache_misses: 7,
                    cache_evictions: 3,
                    cache_invalidations: 2,
                    cache_entries: 5,
                    routed: 1000,
                    shards: 2,
                },
            },
            Response::Profile { edge: "e".into(), path: "p".into() },
            Response::Compile { report: "pps-compile-report v1\n".into() },
            Response::RunCell { metrics_json: "{}".into() },
            Response::Busy,
            Response::ShuttingDown,
            Response::Error { kind: ErrorKind::DeadlineExceeded, message: "late".into() },
        ];
        for resp in responses {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_payloads_error_at_an_offset() {
        for env in sample_requests() {
            let payload = encode_request(&env);
            for cut in 0..payload.len() {
                let e = decode_request(&payload[..cut]);
                assert!(e.is_err(), "{env:?} cut at {cut} decoded");
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_request(&Envelope::new(Request::Ping));
        payload.push(7);
        let e = decode_request(&payload).unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn error_kinds_round_trip() {
        for v in 0..=8u8 {
            let k = ErrorKind::from_u8(v).unwrap();
            assert_eq!(k.to_u8(), v);
            assert_eq!(k.code(), v);
        }
        assert!(ErrorKind::from_u8(9).is_none());
    }

    #[test]
    fn retcodes_are_stable() {
        assert_eq!(Response::Pong { health: HealthSnapshot::default() }.retcode(), 0);
        assert_eq!(Response::Compile { report: String::new() }.retcode(), 0);
        assert_eq!(Response::Busy.retcode(), 1);
        assert_eq!(Response::ShuttingDown.retcode(), 2);
        let err = Response::Error { kind: ErrorKind::DeadlineExceeded, message: String::new() };
        assert_eq!(err.retcode(), 10 + u32::from(ErrorKind::DeadlineExceeded.code()));
    }

    fn minor2_snapshot() -> HealthSnapshot {
        HealthSnapshot {
            proto_minor: 2,
            queue_depth: 1,
            queue_capacity: 64,
            workers: 4,
            connections: 10,
            requests: 100,
            pgo_enabled: true,
            profiles_merged: 7,
            units: 3,
            max_generation: 2,
            drifted_units: 1,
            recompiles: 5,
            swaps: 4,
            rollbacks: 1,
            in_flight_recompiles: 0,
            telemetry_enabled: true,
            access_log_lines: 99,
            traces_sampled: 3,
            ..HealthSnapshot::default()
        }
    }

    fn minor3_snapshot() -> HealthSnapshot {
        HealthSnapshot {
            proto_minor: 3,
            cache_hits: 12,
            cache_misses: 8,
            cache_evictions: 2,
            cache_invalidations: 1,
            cache_entries: 6,
            routed: 555,
            shards: 2,
            ..minor2_snapshot()
        }
    }

    #[test]
    fn minor0_pong_is_the_bare_tag_and_round_trips() {
        // A minor-0 writer sent an empty Pong payload; we must still
        // produce and accept exactly that shape.
        let payload = encode_response(&Response::Pong { health: HealthSnapshot::default() });
        assert_eq!(payload, vec![RESP_PONG]);
        let decoded = decode_response(&payload).unwrap();
        assert_eq!(decoded, Response::Pong { health: HealthSnapshot::default() });
    }

    #[test]
    fn minor1_payload_decodes_with_telemetry_fields_defaulted() {
        // A minor-1 server omits the minor-2 fields entirely; a minor-2
        // client reads the rest and leaves them at their defaults.
        let health = HealthSnapshot { proto_minor: 1, ..minor2_snapshot() };
        let payload = encode_response(&Response::Pong { health });
        let Response::Pong { health: decoded } = decode_response(&payload).unwrap() else {
            panic!("not a Pong");
        };
        assert_eq!(decoded.requests, 100);
        assert_eq!(decoded.swaps, 4);
        assert!(!decoded.telemetry_enabled);
        assert_eq!(decoded.access_log_lines, 0);
        assert_eq!(decoded.traces_sampled, 0);
    }

    #[test]
    fn minor2_telemetry_fields_round_trip() {
        let resp = Response::Pong { health: minor2_snapshot() };
        let Response::Pong { health } = decode_response(&encode_response(&resp)).unwrap() else {
            panic!("not a Pong");
        };
        assert!(health.telemetry_enabled);
        assert_eq!(health.access_log_lines, 99);
        // A minor-2 writer never emitted the cache fields; they default.
        assert_eq!(health.cache_hits, 0);
        assert_eq!(health.shards, 0);
    }

    #[test]
    fn minor2_payload_decodes_with_cache_fields_defaulted() {
        // A minor-2 server omits the minor-3 fields entirely; a minor-3
        // client reads the rest and leaves them at their defaults.
        let health = HealthSnapshot { proto_minor: 2, ..minor3_snapshot() };
        let payload = encode_response(&Response::Pong { health });
        let Response::Pong { health: decoded } = decode_response(&payload).unwrap() else {
            panic!("not a Pong");
        };
        assert_eq!(decoded.traces_sampled, 3);
        assert_eq!(decoded.cache_hits, 0);
        assert_eq!(decoded.cache_entries, 0);
        assert_eq!(decoded.routed, 0);
    }

    #[test]
    fn minor3_cache_and_shard_fields_round_trip() {
        let resp = Response::Pong { health: minor3_snapshot() };
        let decoded = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn future_minor_pong_skips_unknown_trailing_fields() {
        // Simulate a minor-4 server: declare minor 4 and append bytes a
        // minor-3 client has never heard of. Decode must read what it
        // knows and ignore the rest rather than erroring on trailing data.
        let mut payload =
            encode_response(&Response::Pong { health: minor3_snapshot() });
        payload[1..5].copy_from_slice(&4u32.to_be_bytes());
        payload.extend_from_slice(&[0xAB; 13]);
        let Response::Pong { health } = decode_response(&payload).unwrap() else {
            panic!("not a Pong");
        };
        assert_eq!(health.proto_minor, 4);
        assert_eq!(health.access_log_lines, 99);
        assert_eq!(health.cache_hits, 12);
        assert_eq!(health.routed, 555);
    }

    #[test]
    fn declared_minor2_without_its_fields_is_malformed() {
        let health = HealthSnapshot { proto_minor: 1, ..minor2_snapshot() };
        let mut payload = encode_response(&Response::Pong { health });
        // Claim minor 2 but ship a minor-1 body: truncated at the
        // telemetry fields, and the decoder must say so.
        payload[1..5].copy_from_slice(&2u32.to_be_bytes());
        assert!(decode_response(&payload).is_err());
    }

    #[test]
    fn declared_minor3_without_its_fields_is_malformed() {
        let health = HealthSnapshot { proto_minor: 2, ..minor3_snapshot() };
        let mut payload = encode_response(&Response::Pong { health });
        // Claim minor 3 but ship a minor-2 body: truncated at the cache
        // fields, and the decoder must say so.
        payload[1..5].copy_from_slice(&3u32.to_be_bytes());
        assert!(decode_response(&payload).is_err());
    }
}
