//! Live telemetry for the daemon: windowed metrics, a Prometheus scrape
//! endpoint, a JSON-lines access log, and tail-sampled request traces.
//!
//! Everything here is a **pure side effect** of the request path — reply
//! bytes never depend on whether telemetry is on (the loadgen's
//! byte-identity checks run with it enabled). One [`Telemetry`] instance
//! is shared by the connection threads (which call [`Telemetry::observe`]
//! once per reply) and the HTTP listener thread (spawned by
//! `serve_with_telemetry`), which serves:
//!
//! - `GET /metrics` — the daemon's cumulative counters and bucketed
//!   latency histograms in Prometheus text exposition
//!   ([`pps_obs::expo`]), plus point-in-time queue/worker/PGO gauges from
//!   the same health path `Ping` uses;
//! - `GET /health` — the [`HealthSnapshot`] as JSON, extended with rates
//!   and latency quantiles over the rolling window ring (recent past, not
//!   process lifetime);
//! - `GET /trace` — the tail sampler's retained span trees: full
//!   `pps-obs` traces kept only for error replies and slow-percentile
//!   requests, correlated to access-log lines by trace id.
//!
//! The access log (`--access-log`) writes one JSON object per reply:
//! `{"ts_ms","trace_id","type","outcome","retcode","queue_wait_ms",
//! "service_ms","total_ms","bytes"}` — `retcode` is 0 for ok, 1 busy,
//! 2 shutting-down, 10+kind for structured errors.

use crate::proto::HealthSnapshot;
use pps_obs::expo::{self, Gauge};
use pps_obs::window::SystemClock;
use pps_obs::{json, MetricKey, MetricsRegistry, Obs, WindowedRegistry};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Tuning for the telemetry layer.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// JSON-lines access log path (`None` = no log).
    pub access_log: Option<String>,
    /// Rolling window ring size.
    pub windows: usize,
    /// Width of each window, milliseconds.
    pub window_ms: u64,
    /// Sampled traces retained (newest win).
    pub trace_ring: usize,
    /// Requests at or above this windowed latency quantile are
    /// tail-sampled.
    pub slow_quantile: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            access_log: None,
            windows: 8,
            window_ms: 1000,
            trace_ring: 64,
            slow_quantile: 0.95,
        }
    }
}

/// Everything [`Telemetry::observe`] needs to know about one finished
/// request/reply exchange.
#[derive(Debug)]
pub struct RequestRecord<'a> {
    /// Server-assigned id correlating the access-log line with any
    /// sampled trace.
    pub trace_id: u64,
    /// Request kind tag (`ping`, `compile`, …).
    pub kind: &'a str,
    /// Reply outcome tag (`ok`, `busy`, error kind names).
    pub outcome: &'a str,
    /// Numeric outcome: 0 ok, 1 busy, 2 shutting-down, 10+kind errors.
    pub retcode: u32,
    /// Time spent waiting in the bounded queue (0 for inline replies).
    pub queue_wait_ms: f64,
    /// Handler execution time (0 for inline replies).
    pub service_ms: f64,
    /// First request byte to reply written.
    pub total_ms: f64,
    /// Encoded reply payload size.
    pub bytes: u64,
    /// The request's recorded span tree (Chrome trace JSON), if the
    /// worker captured one.
    pub trace_json: Option<String>,
}

/// Shared telemetry state; see the module docs.
pub struct Telemetry {
    config: TelemetryConfig,
    windows: WindowedRegistry<SystemClock>,
    http: Mutex<Option<TcpListener>>,
    http_addr: Option<SocketAddr>,
    access: Option<Mutex<BufWriter<File>>>,
    access_lines: AtomicU64,
    traces_sampled: AtomicU64,
    trace_seq: AtomicU64,
    /// Cached slow-sampling threshold (f64 bits); refreshed every
    /// [`THRESHOLD_REFRESH`] observes, `INFINITY` until warmed up.
    slow_threshold_bits: AtomicU64,
    observed: AtomicU64,
    sampled: Mutex<VecDeque<String>>,
    started: Instant,
}

/// Observe calls between threshold recomputations.
const THRESHOLD_REFRESH: u64 = 64;
/// Minimum windowed samples before slow-sampling arms.
const THRESHOLD_WARMUP: u64 = 64;

impl Telemetry {
    /// Builds the telemetry state, binding the HTTP listener (when
    /// `http_addr` is given) and opening/truncating the access log.
    ///
    /// # Errors
    /// Bind or log-open failures.
    pub fn new(http_addr: Option<&str>, config: TelemetryConfig) -> io::Result<Telemetry> {
        let (http, bound) = match http_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                let a = l.local_addr()?;
                (Some(l), Some(a))
            }
            None => (None, None),
        };
        let access = match &config.access_log {
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        Ok(Telemetry {
            windows: WindowedRegistry::new(config.windows, config.window_ms, SystemClock::new()),
            http: Mutex::new(http),
            http_addr: bound,
            access,
            access_lines: AtomicU64::new(0),
            traces_sampled: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            slow_threshold_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            observed: AtomicU64::new(0),
            sampled: Mutex::new(VecDeque::new()),
            started: Instant::now(),
            config,
        })
    }

    /// The bound scrape address, when an HTTP listener was requested.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Hands the HTTP listener to the serving loop (once).
    pub(crate) fn take_http_listener(&self) -> Option<TcpListener> {
        self.http.lock().unwrap().take()
    }

    /// A fresh request trace id (unique per daemon lifetime).
    pub fn next_trace_id(&self) -> u64 {
        self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Access-log lines written so far.
    pub fn access_log_lines(&self) -> u64 {
        self.access_lines.load(Ordering::Relaxed)
    }

    /// Span trees retained by the tail sampler so far.
    pub fn traces_sampled(&self) -> u64 {
        self.traces_sampled.load(Ordering::Relaxed)
    }

    /// The rolling window ring (for rates/quantiles over the recent past).
    pub fn windows(&self) -> &WindowedRegistry<SystemClock> {
        &self.windows
    }

    /// True when the worker should capture a span tree for possible tail
    /// sampling (cheap enough to do always while telemetry is on).
    pub fn wants_traces(&self) -> bool {
        true
    }

    /// Records one finished exchange: windows, access log, tail sampler.
    pub fn observe(&self, rec: &RequestRecord) {
        self.windows.add(
            MetricKey::new("serve.requests", &[("type", rec.kind), ("outcome", rec.outcome)]),
            1,
        );
        self.windows.record(MetricKey::new("serve.latency_ms", &[]), rec.total_ms);

        if let Some(log) = &self.access {
            let ts_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            let mut line = String::with_capacity(160);
            line.push_str("{\"ts_ms\":");
            line.push_str(&ts_ms.to_string());
            line.push_str(",\"trace_id\":");
            line.push_str(&rec.trace_id.to_string());
            line.push_str(",\"type\":");
            json::escape_into(&mut line, rec.kind);
            line.push_str(",\"outcome\":");
            json::escape_into(&mut line, rec.outcome);
            line.push_str(&format!(
                ",\"retcode\":{},\"queue_wait_ms\":{},\"service_ms\":{},\"total_ms\":{},\
                 \"bytes\":{}}}",
                rec.retcode,
                json::number(rec.queue_wait_ms),
                json::number(rec.service_ms),
                json::number(rec.total_ms),
                rec.bytes,
            ));
            let mut w = log.lock().unwrap();
            if writeln!(w, "{line}").and_then(|()| w.flush()).is_ok() {
                self.access_lines.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Tail sampling: keep the span tree for errors and for requests at
        // or above the windowed slow quantile (threshold cached and
        // refreshed periodically; Infinity until enough samples exist, so
        // warm-up noise is not "slow").
        let n = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(THRESHOLD_REFRESH) {
            if let Some(h) = self.windows.histogram_total("serve.latency_ms") {
                if h.count >= THRESHOLD_WARMUP {
                    let t = h.quantile(self.config.slow_quantile);
                    self.slow_threshold_bits.store(t.to_bits(), Ordering::Relaxed);
                }
            }
        }
        let is_error = rec.retcode >= 10;
        let threshold = f64::from_bits(self.slow_threshold_bits.load(Ordering::Relaxed));
        let is_slow = rec.total_ms >= threshold;
        if is_error || is_slow {
            self.retain_trace(rec, if is_error { "error" } else { "slow" });
        }
    }

    fn retain_trace(&self, rec: &RequestRecord, reason: &str) {
        let mut entry = String::with_capacity(192);
        entry.push_str("{\"trace_id\":");
        entry.push_str(&rec.trace_id.to_string());
        entry.push_str(",\"reason\":");
        json::escape_into(&mut entry, reason);
        entry.push_str(",\"type\":");
        json::escape_into(&mut entry, rec.kind);
        entry.push_str(",\"outcome\":");
        json::escape_into(&mut entry, rec.outcome);
        entry.push_str(&format!(
            ",\"queue_wait_ms\":{},\"service_ms\":{},\"total_ms\":{},\"spans\":",
            json::number(rec.queue_wait_ms),
            json::number(rec.service_ms),
            json::number(rec.total_ms),
        ));
        match &rec.trace_json {
            // Already a JSON document (Chrome trace export) — embed as-is.
            Some(spans) => entry.push_str(spans.trim_end()),
            None => entry.push_str("null"),
        }
        entry.push('}');
        let mut ring = self.sampled.lock().unwrap();
        while ring.len() >= self.config.trace_ring.max(1) {
            ring.pop_front();
        }
        ring.push_back(entry);
        self.traces_sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained traces as one JSON document (newest last).
    pub fn traces_json(&self) -> String {
        let ring = self.sampled.lock().unwrap();
        let mut out = String::with_capacity(64 + ring.iter().map(String::len).sum::<usize>());
        out.push_str("{\"schema\":\"pps-traces\",\"sampled_total\":");
        out.push_str(&self.traces_sampled().to_string());
        out.push_str(",\"traces\":[");
        for (i, t) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(t);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Flushes the access log (also done per line; kept for tests and
    /// explicit drains).
    pub fn flush(&self) {
        if let Some(log) = &self.access {
            let _ = log.lock().unwrap().flush();
        }
    }

    /// Renders `/health`: the snapshot plus windowed rates and latency
    /// quantiles.
    pub fn health_json(&self, h: &HealthSnapshot) -> String {
        let (reg, seconds) = self.windows.snapshot();
        let (mut total, mut errors, mut busy) = (0u64, 0u64, 0u64);
        for (key, value) in reg.counters() {
            if key.name != "serve.requests" {
                continue;
            }
            total += value;
            match key.labels.iter().find(|(k, _)| k == "outcome").map(|(_, v)| v.as_str()) {
                Some("ok") | None => {}
                Some("busy") => busy += value,
                Some(_) => errors += value,
            }
        }
        let lat = {
            let mut acc: Option<pps_obs::Histogram> = None;
            for (key, hist) in reg.histograms() {
                if key.name == "serve.latency_ms" {
                    acc.get_or_insert_with(Default::default).merge(hist);
                }
            }
            acc.unwrap_or_default()
        };
        let secs = seconds.max(1e-9);
        format!(
            "{{\"schema\":\"pps-health\",\"proto_minor\":{},\"uptime_s\":{},\
             \"queue_depth\":{},\"queue_capacity\":{},\"workers\":{},\
             \"connections\":{},\"requests\":{},\
             \"pgo\":{{\"enabled\":{},\"profiles_merged\":{},\"units\":{},\"max_generation\":{},\
             \"drifted_units\":{},\"recompiles\":{},\"swaps\":{},\"rollbacks\":{},\
             \"in_flight_recompiles\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\
             \"entries\":{}}},\
             \"shard\":{{\"routed\":{},\"shards\":{}}},\
             \"telemetry\":{{\"enabled\":{},\"access_log_lines\":{},\"traces_sampled\":{}}},\
             \"window\":{{\"seconds\":{},\"requests\":{},\"rps\":{},\"error_rps\":{},\"busy_rps\":{},\
             \"latency_ms\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\
             \"p99\":{},\"max\":{}}}}}}}\n",
            h.proto_minor,
            json::number(self.started.elapsed().as_secs_f64()),
            h.queue_depth,
            h.queue_capacity,
            h.workers,
            h.connections,
            h.requests,
            h.pgo_enabled,
            h.profiles_merged,
            h.units,
            h.max_generation,
            h.drifted_units,
            h.recompiles,
            h.swaps,
            h.rollbacks,
            h.in_flight_recompiles,
            h.cache_hits,
            h.cache_misses,
            h.cache_evictions,
            h.cache_invalidations,
            h.cache_entries,
            h.routed,
            h.shards,
            h.telemetry_enabled,
            h.access_log_lines,
            h.traces_sampled,
            json::number(seconds),
            total,
            json::number(total as f64 / secs),
            json::number(errors as f64 / secs),
            json::number(busy as f64 / secs),
            lat.count,
            json::number(lat.mean()),
            json::number(lat.quantile(0.50)),
            json::number(lat.quantile(0.90)),
            json::number(lat.quantile(0.95)),
            json::number(lat.quantile(0.99)),
            json::number(lat.max_or_zero()),
        )
    }

    /// Renders `/metrics`: the cumulative registry plus gauges from the
    /// health snapshot.
    pub fn metrics_exposition(&self, registry: &MetricsRegistry, h: &HealthSnapshot) -> String {
        let gauges = [
            Gauge::new("serve_queue_depth", f64::from(h.queue_depth)),
            Gauge::new("serve_queue_capacity", f64::from(h.queue_capacity)),
            Gauge::new("serve_workers", f64::from(h.workers)),
            Gauge::new("serve_connections", h.connections as f64),
            Gauge::new("pgo_enabled", f64::from(u8::from(h.pgo_enabled))),
            Gauge::new("pgo_profiles_merged", h.profiles_merged as f64),
            Gauge::new("pgo_units", f64::from(h.units)),
            Gauge::new("pgo_max_generation", h.max_generation as f64),
            Gauge::new("pgo_drifted_units", f64::from(h.drifted_units)),
            Gauge::new("pgo_recompiles", h.recompiles as f64),
            Gauge::new("pgo_swaps", h.swaps as f64),
            Gauge::new("pgo_rollbacks", h.rollbacks as f64),
            Gauge::new("pgo_in_flight_recompiles", f64::from(h.in_flight_recompiles)),
            Gauge::new("cache_hits", h.cache_hits as f64),
            Gauge::new("cache_misses", h.cache_misses as f64),
            Gauge::new("cache_evictions", h.cache_evictions as f64),
            Gauge::new("cache_invalidations", h.cache_invalidations as f64),
            Gauge::new("cache_entries", f64::from(h.cache_entries)),
            Gauge::new("shard_routed", h.routed as f64),
            Gauge::new("shard_count", f64::from(h.shards)),
            Gauge::new("telemetry_access_log_lines", h.access_log_lines as f64),
            Gauge::new("telemetry_traces_sampled", h.traces_sampled as f64),
        ];
        expo::render(registry, &gauges)
    }
}

// ----------------------------------------------------------------------
// Minimal HTTP/1.1 listener
// ----------------------------------------------------------------------

/// Serves `/metrics`, `/health`, and `/trace` until `shutdown` flips.
/// Requests are handled one at a time on this thread — scrapers poll at
/// human timescales, so there is nothing to parallelize.
pub(crate) fn http_loop(
    listener: TcpListener,
    telemetry: &Telemetry,
    obs: &Obs,
    health: &dyn Fn() -> HealthSnapshot,
    shutdown: &AtomicBool,
    poll: Duration,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_http(stream, telemetry, obs, health);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
}

fn handle_http(
    mut stream: TcpStream,
    telemetry: &Telemetry,
    obs: &Obs,
    health: &dyn Fn() -> HealthSnapshot,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true).ok();
    let path = match read_request_path(&mut stream) {
        Ok(p) => p,
        Err(_) => return write_http(&mut stream, 400, "text/plain", "bad request\n"),
    };
    match path.as_str() {
        "/metrics" => {
            let registry = obs.metrics_snapshot().unwrap_or_default();
            let body = telemetry.metrics_exposition(&registry, &health());
            write_http(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/health" => {
            let body = telemetry.health_json(&health());
            write_http(&mut stream, 200, "application/json", &body)
        }
        "/trace" => write_http(&mut stream, 200, "application/json", &telemetry.traces_json()),
        _ => write_http(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Reads one request head (through the blank line) and returns the path.
/// Anything that is not a well-formed `GET <path> HTTP/1.x` head errors.
fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 256];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(path), Some(version)) if version.starts_with("HTTP/1") => {
            // Strip any query string; the endpoints take no parameters.
            Ok(path.split('?').next().unwrap_or(path).to_string())
        }
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "not a GET request")),
    }
}

fn write_http(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: &'static str, retcode: u32, total_ms: f64) -> RequestRecord<'static> {
        RequestRecord {
            trace_id: 1,
            kind: "compile",
            outcome,
            retcode,
            queue_wait_ms: 0.1,
            service_ms: total_ms - 0.1,
            total_ms,
            bytes: 42,
            trace_json: Some("{\"traceEvents\":[]}".to_string()),
        }
    }

    #[test]
    fn errors_are_always_tail_sampled_and_ring_is_bounded() {
        let t = Telemetry::new(
            None,
            TelemetryConfig { trace_ring: 3, ..TelemetryConfig::default() },
        )
        .unwrap();
        for i in 0..10 {
            let mut r = record("internal", 18, 1.0);
            r.trace_id = i;
            t.observe(&r);
        }
        // Fast, ok requests before warm-up are not "slow".
        t.observe(&record("ok", 0, 0.5));
        assert_eq!(t.traces_sampled(), 10);
        let doc = json::parse(&t.traces_json()).expect("traces JSON parses");
        let traces = doc.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(traces.len(), 3, "ring keeps only the newest trace_ring entries");
        assert_eq!(traces[2].get("trace_id").unwrap().as_num(), Some(9.0));
        assert_eq!(traces[2].get("reason").unwrap().as_str(), Some("error"));
        assert!(traces[2].get("spans").unwrap().get("traceEvents").is_some());
    }

    #[test]
    fn slow_requests_sample_after_warmup() {
        let t = Telemetry::new(None, TelemetryConfig::default()).unwrap();
        // Warm the window and the threshold cache with fast requests.
        for _ in 0..THRESHOLD_WARMUP + THRESHOLD_REFRESH {
            t.observe(&record("ok", 0, 1.0));
        }
        let before = t.traces_sampled();
        t.observe(&record("ok", 0, 500.0));
        assert_eq!(t.traces_sampled(), before + 1, "an outlier must be tail-sampled");
        let json_doc = t.traces_json();
        assert!(json_doc.contains("\"reason\":\"slow\""), "{json_doc}");
    }

    #[test]
    fn access_log_lines_are_json_and_counted() {
        let dir = std::env::temp_dir().join(format!("pps-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let t = Telemetry::new(
            None,
            TelemetryConfig {
                access_log: Some(path.to_string_lossy().to_string()),
                ..TelemetryConfig::default()
            },
        )
        .unwrap();
        t.observe(&record("ok", 0, 2.0));
        t.observe(&record("deadline", 17, 9.0));
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(t.access_log_lines(), 2);
        for line in lines {
            let doc = json::parse(line).expect("access line parses as JSON");
            for field in ["ts_ms", "trace_id", "retcode", "queue_wait_ms", "service_ms", "bytes"] {
                assert!(doc.get(field).is_some(), "missing {field}: {line}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_json_reflects_window_rates() {
        let t = Telemetry::new(None, TelemetryConfig::default()).unwrap();
        for _ in 0..20 {
            t.observe(&record("ok", 0, 2.0));
        }
        t.observe(&record("busy", 1, 0.1));
        t.observe(&record("exec", 16, 3.0));
        let health = HealthSnapshot {
            proto_minor: 3,
            workers: 4,
            cache_hits: 7,
            cache_entries: 3,
            routed: 99,
            shards: 2,
            ..HealthSnapshot::default()
        };
        let doc = json::parse(&t.health_json(&health)).expect("health JSON parses");
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_num(), Some(7.0));
        assert_eq!(cache.get("entries").unwrap().as_num(), Some(3.0));
        let shard = doc.get("shard").unwrap();
        assert_eq!(shard.get("routed").unwrap().as_num(), Some(99.0));
        assert_eq!(shard.get("shards").unwrap().as_num(), Some(2.0));
        let window = doc.get("window").unwrap();
        assert_eq!(window.get("requests").unwrap().as_num(), Some(22.0));
        assert!(window.get("rps").unwrap().as_num().unwrap() > 0.0);
        assert!(window.get("error_rps").unwrap().as_num().unwrap() > 0.0);
        assert!(window.get("busy_rps").unwrap().as_num().unwrap() > 0.0);
        let lat = window.get("latency_ms").unwrap();
        assert_eq!(lat.get("count").unwrap().as_num(), Some(22.0));
        assert!(lat.get("p99").unwrap().as_num().unwrap() >= 1.0);
    }

    #[test]
    fn metrics_exposition_includes_gauges_and_validates() {
        let t = Telemetry::new(None, TelemetryConfig::default()).unwrap();
        let mut reg = MetricsRegistry::default();
        reg.add(MetricKey::new("serve.requests", &[("type", "ping"), ("outcome", "ok")]), 3);
        reg.record(MetricKey::new("serve.latency_ms", &[("type", "ping")]), 1.25);
        let health = HealthSnapshot {
            proto_minor: 2,
            queue_depth: 2,
            queue_capacity: 64,
            workers: 4,
            pgo_enabled: true,
            swaps: 5,
            cache_hits: 11,
            cache_entries: 4,
            ..HealthSnapshot::default()
        };
        let text = t.metrics_exposition(&reg, &health);
        let doc = expo::parse(&text).expect("exposition parses");
        expo::validate(&doc).expect("exposition validates");
        assert_eq!(doc.single("serve_queue_depth"), Some(2.0));
        assert_eq!(doc.single("pgo_swaps"), Some(5.0));
        assert_eq!(doc.single("cache_hits"), Some(11.0));
        assert_eq!(doc.single("cache_entries"), Some(4.0));
        assert_eq!(doc.single("serve_latency_ms_count"), Some(1.0));
        assert_eq!(doc.total("serve_requests_total"), 3.0);
    }
}
