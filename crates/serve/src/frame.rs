//! Length-prefixed, versioned, checksummed binary framing.
//!
//! Every message on a `pps-serve` connection travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PPSF"
//! 4       1     version (currently 1)
//! 5       1     reserved (must be 0)
//! 6       4     payload length, big-endian
//! 10      4     FNV-1a-32 checksum of the payload, big-endian
//! 14      len   payload bytes
//! ```
//!
//! The reader validates in order — magic, version, reserved byte, length
//! bound, then checksum after the payload arrives — so every malformed
//! input maps to one precise [`FrameError`] and the connection can reply
//! with a structured error before closing. A frame is the retransmission
//! unit: nothing inside a payload can desynchronize the stream, and any
//! header-level corruption poisons the whole connection (the stream offset
//! can no longer be trusted).

use std::fmt;
use std::io::{self, Read, Write};

/// Frame preamble, `b"PPSF"`.
pub const MAGIC: [u8; 4] = *b"PPSF";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Bytes before the payload.
pub const HEADER_LEN: usize = 14;
/// Largest accepted payload (16 MiB) — bounds memory per connection.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// The reserved header byte was nonzero.
    BadReserved(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum did not match the header.
    Checksum {
        /// Checksum the header claimed.
        expected: u32,
        /// Checksum of the bytes actually received.
        found: u32,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// Transport failure (including read timeouts).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want {MAGIC:02x?})"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v} (want {VERSION})"),
            FrameError::BadReserved(b) => write!(f, "nonzero reserved header byte {b:#04x}"),
            FrameError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds max payload {MAX_PAYLOAD}")
            }
            FrameError::Checksum { expected, found } => {
                write!(f, "checksum mismatch: header {expected:#010x}, payload {found:#010x}")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

impl FrameError {
    /// True when the stream's byte offset can no longer be trusted and the
    /// connection must be closed (everything except a transient i/o
    /// timeout is poisoning in practice; we close on those too).
    pub fn poisons_stream(&self) -> bool {
        true
    }
}

/// FNV-1a over `payload`, 32-bit — an error-detection checksum (not
/// cryptographic). The arithmetic lives in the shared
/// [`pps_core::hash`] module; the wire format pins this exact function.
pub fn checksum(payload: &[u8]) -> u32 {
    pps_core::hash::fnv1a32(payload)
}

/// Encodes a complete frame (header + payload) into one buffer.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — callers build payloads
/// and must respect the bound.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(0);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&checksum(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame and flushes.
///
/// # Errors
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u32, u32), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    if header[5] != 0 {
        return Err(FrameError::BadReserved(header[5]));
    }
    let len = u32::from_be_bytes(header[6..10].try_into().expect("4 bytes"));
    if len as usize > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let want = u32::from_be_bytes(header[10..14].try_into().expect("4 bytes"));
    Ok((len, want))
}

fn read_body(r: &mut impl Read, len: u32, want: u32) -> Result<Vec<u8>, FrameError> {
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = checksum(&payload);
    if found != want {
        return Err(FrameError::Checksum { expected: want, found });
    }
    Ok(payload)
}

/// Reads one frame, blocking. Use on the client side or wherever a frame
/// is known to be coming.
///
/// # Errors
/// Any [`FrameError`]; EOF before the first byte reports [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (len, want) = parse_header(&header)?;
    read_body(r, len, want)
}

/// Reads the rest of a frame whose first byte was already consumed (the
/// server polls for that byte with a short timeout so it can notice
/// shutdown between requests).
///
/// # Errors
/// As [`read_frame`].
pub fn read_frame_after(first: u8, r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    let (len, want) = parse_header(&header)?;
    read_body(r, len, want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips() {
        for payload in [&b""[..], b"x", b"hello frames", &[0u8; 5000]] {
            let buf = encode_frame(payload);
            assert_eq!(buf.len(), HEADER_LEN + payload.len());
            let back = read_frame(&mut Cursor::new(&buf)).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn rejects_bad_magic_version_reserved() {
        let mut buf = encode_frame(b"ok");
        buf[0] = b'X';
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::BadMagic(_))));
        let mut buf = encode_frame(b"ok");
        buf[4] = 9;
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::BadVersion(9))));
        let mut buf = encode_frame(b"ok");
        buf[5] = 1;
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::BadReserved(1))));
    }

    #[test]
    fn rejects_oversized_and_checksum_mismatch() {
        let mut buf = encode_frame(b"ok");
        buf[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::Oversized(_))));
        let mut buf = encode_frame(b"payload");
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(read_frame(&mut Cursor::new(&buf)), Err(FrameError::Checksum { .. })));
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let buf = encode_frame(b"truncate me");
        for cut in 0..buf.len() {
            let r = read_frame(&mut Cursor::new(&buf[..cut]));
            assert!(
                matches!(r, Err(FrameError::Truncated)),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn resumed_read_matches_fresh_read() {
        let buf = encode_frame(b"resume");
        let back = read_frame_after(buf[0], &mut Cursor::new(&buf[1..])).unwrap();
        assert_eq!(back, b"resume");
    }
}
