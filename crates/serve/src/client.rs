//! Blocking client for the compile service.

use crate::frame::{self, FrameError};
use crate::proto::{decode_response, encode_request, Envelope, ProtoError, Request, Response};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The reply frame was malformed.
    Frame(FrameError),
    /// The reply payload did not decode.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Proto(e) => write!(f, "reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Proto(e) => Some(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One connection to a `pps-serve` daemon, sending requests one at a time.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with the given overall per-reply timeout (None = wait
    /// forever; pipeline requests can take a while, so loadgen uses
    /// minutes, not seconds).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str, reply_timeout: Option<Duration>) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(reply_timeout)?;
        Ok(Client { stream })
    }

    /// Sends one envelope and waits for its response.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn call(&mut self, env: &Envelope) -> Result<Response, ClientError> {
        frame::write_frame(&mut self.stream, &encode_request(env))?;
        let payload = frame::read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// [`Client::call`] with a bare request and no deadline.
    ///
    /// # Errors
    /// As [`Client::call`].
    pub fn request(&mut self, request: Request) -> Result<Response, ClientError> {
        self.call(&Envelope::new(request))
    }
}
