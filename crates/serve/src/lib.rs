#![warn(missing_docs)]

//! `pps-serve`: the compile service.
//!
//! The CLI harness runs one-shot sweeps; real PGO deployments are
//! services — profiles are collected in one place and consumed by many
//! compile requests. This crate turns the reproduction into that shape
//! without any external dependencies:
//!
//! - [`frame`] — length-prefixed, versioned, checksummed binary frames;
//! - [`proto`] — the `Profile` / `Compile` / `RunCell` request set and
//!   structured error replies, with a bounds-checked binary codec;
//! - [`server`] — a `TcpListener` daemon: bounded queue with `Busy`
//!   backpressure ([`pps_core::pool::BoundedQueue`]), a scoped worker
//!   team, per-request queue-wait deadlines, and graceful drain on
//!   SIGTERM / in-band `Shutdown`;
//! - [`cache`] — a bounded content-addressed reply cache keyed by
//!   [`pps_core::ArtifactKey`], consulted before the pipeline and
//!   invalidated by PGO hot-swaps;
//! - [`client`] — the blocking client used by `pps-harness loadgen`;
//! - [`service`] — the production handler, a pure function of the request
//!   so replies are byte-comparable against in-process runs;
//! - [`runner`] — one benchmark × scheme measurement end to end, shared
//!   with (and re-exported by) `pps-harness`;
//! - [`shard`] — the consistent-hash shard router (`pps-shard`): one
//!   PPSF front door placing requests on N daemons by artifact identity,
//!   with health fan-in on `Ping`;
//! - [`signal`] — SIGTERM/SIGINT → shutdown flag (Unix);
//! - [`telemetry`] — the live-observability layer: rolling-window
//!   metrics, a `/metrics` / `/health` / `/trace` scrape listener, a
//!   JSON-lines access log, and tail-sampled request traces.
//!
//! The `pps-serve` binary wires these together; see README §Serving.

pub mod cache;
pub mod client;
pub mod frame;
pub mod pgo;
pub mod proto;
pub mod runner;
pub mod server;
pub mod service;
pub mod shard;
pub mod signal;
pub mod telemetry;

pub use cache::{CacheClass, CacheKey, CompileCache};
pub use client::{Client, ClientError};
pub use pgo::{PgoConfig, PgoFault, PgoHandler, PgoRuntime, PgoState};
pub use proto::{Envelope, ErrorKind, HealthSnapshot, ProfileText, Request, Response};
pub use runner::{run_scheme, run_scheme_obs, RunConfig, RunError, SchemeRun};
pub use server::{serve, serve_with_telemetry, Handler, ServeConfig, ServerHandle, ServerStats};
pub use service::{
    execute, execute_cached, execute_with, parse_scheme, CachedPipelineHandler, PipelineHandler,
    ProfileSink,
};
pub use shard::{Router, RouterConfig, RouterHandle, RouterStats, ShardRing};
pub use telemetry::{RequestRecord, Telemetry, TelemetryConfig};
