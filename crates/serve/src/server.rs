//! The compile-service daemon: accept loop, bounded queue, worker team,
//! and graceful drain.
//!
//! Threading model (all scoped, no detached threads):
//!
//! - the **accept loop** runs on the caller's thread with a nonblocking
//!   listener, polling the shutdown flag between accepts;
//! - each connection gets a **connection thread** that reads frames,
//!   answers `Ping`/`Shutdown` inline, and pushes real work onto the
//!   bounded queue ([`pps_core::pool::BoundedQueue`]) — a full queue is an
//!   immediate [`Response::Busy`], never a blocked producer;
//! - a fixed team of **worker threads** pops jobs, enforces each request's
//!   queue-wait deadline, runs the [`Handler`], and hands the response back
//!   to the connection thread over a per-request channel.
//!
//! Shutdown (SIGTERM via [`crate::signal`], an in-band
//! [`Request::Shutdown`], or [`ServerHandle::shutdown`]) flips one atomic
//! flag: the accept loop stops accepting, connection threads finish their
//! in-flight request and close, then the queue is closed and the workers
//! drain everything already accepted before exiting — accepted work is
//! never dropped.

use crate::frame::{self, FrameError};
use crate::proto::{
    decode_request, encode_response, Envelope, ErrorKind, HealthSnapshot, Request, Response,
    PROTO_MINOR,
};
use crate::telemetry::{self, RequestRecord, Telemetry};
use pps_core::pool::{BoundedQueue, PushError};
use pps_obs::{Level, Obs, ObsConfig};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Executes decoded requests. `Ping` and `Shutdown` never reach the
/// handler; everything else does.
pub trait Handler: Send + Sync {
    /// Produces the response for one request. Panics are caught and
    /// reported as [`ErrorKind::Internal`].
    fn handle(&self, request: &Request, obs: &Obs) -> Response;

    /// Enriches the server-built health snapshot with handler-level state
    /// (the continuous-PGO tier fills in aggregate/drift/swap counters
    /// here). The default handler has nothing to add.
    fn health(&self, base: HealthSnapshot) -> HealthSnapshot {
        base
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests (default: available parallelism).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue rejects with `Busy`.
    pub queue_capacity: usize,
    /// How often idle loops re-check the shutdown flag.
    pub poll: Duration,
    /// How long a started frame may take to arrive completely.
    pub frame_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = pps_core::pool::default_jobs();
        ServeConfig {
            workers,
            queue_capacity: (workers * 8).max(16),
            poll: Duration::from_millis(20),
            frame_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters the server reports when it exits (also exported through the
/// `serve.*` metrics while running).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests that produced a reply (including errors and `Busy`).
    pub requests: u64,
    /// `Busy` rejections among those.
    pub busy: u64,
    /// Connections dropped for malformed frames.
    pub frame_errors: u64,
}

#[derive(Default)]
struct AtomicStats {
    connections: AtomicU64,
    requests: AtomicU64,
    busy: AtomicU64,
    frame_errors: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// One queued request: the decoded envelope, when it was accepted, and the
/// channel its response travels back on.
struct Job {
    env: Envelope,
    enqueued: Instant,
    /// Capture a per-request span tree for the tail sampler.
    want_trace: bool,
    reply: mpsc::Sender<Finished>,
}

/// What a worker hands back to the connection thread: the reply plus the
/// timing split and any captured span tree, so the access log can report
/// queue-wait vs service time without re-deriving them.
struct Finished {
    resp: Response,
    queue_wait_ms: f64,
    service_ms: f64,
    trace_json: Option<String>,
}

impl Finished {
    fn inline(resp: Response) -> Finished {
        Finished { resp, queue_wait_ms: 0.0, service_ms: 0.0, trace_json: None }
    }
}

/// Runs the server on the calling thread until `shutdown` becomes true,
/// then drains and returns the final stats.
///
/// # Errors
/// Only listener setup errors; per-connection failures are absorbed into
/// the stats.
pub fn serve(
    listener: TcpListener,
    config: &ServeConfig,
    handler: &dyn Handler,
    obs: &Obs,
    shutdown: &AtomicBool,
) -> io::Result<ServerStats> {
    serve_with_telemetry(listener, config, handler, obs, shutdown, None)
}

/// [`serve`], optionally with the live-telemetry layer attached: every
/// reply is observed (windows, access log, tail sampler) and, when the
/// [`Telemetry`] owns an HTTP listener, a scrape thread serves
/// `/metrics`, `/health`, and `/trace` inside the same drain scope.
///
/// Reply bytes are identical with and without telemetry — the layer is
/// strictly observational.
///
/// # Errors
/// Only listener setup errors; per-connection failures are absorbed into
/// the stats.
pub fn serve_with_telemetry(
    listener: TcpListener,
    config: &ServeConfig,
    handler: &dyn Handler,
    obs: &Obs,
    shutdown: &AtomicBool,
    telemetry: Option<&Telemetry>,
) -> io::Result<ServerStats> {
    listener.set_nonblocking(true)?;
    let queue: BoundedQueue<Job> = BoundedQueue::new(config.queue_capacity);
    let stats = AtomicStats::default();
    let active_conns = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        if let Some(t) = telemetry {
            if let Some(http) = t.take_http_listener() {
                let queue = &queue;
                let stats = &stats;
                let obs = obs.clone();
                scope.spawn(move || {
                    let health = || build_health(queue, config, stats, handler, Some(t));
                    telemetry::http_loop(http, t, &obs, &health, shutdown, config.poll);
                });
            }
        }

        for w in 0..config.workers.max(1) {
            let queue = &queue;
            let obs = obs.clone();
            scope.spawn(move || worker_loop(w, queue, handler, &obs));
        }

        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    active_conns.fetch_add(1, Ordering::SeqCst);
                    let queue = &queue;
                    let stats = &stats;
                    let active_conns = &active_conns;
                    let config = config.clone();
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let r = conn_loop(
                            stream, &config, queue, handler, shutdown, stats, &obs, telemetry,
                        );
                        if let Err(e) = r {
                            obs.log(pps_obs::Level::Debug, || {
                                format!("connection {peer}: {e}")
                            });
                        }
                        active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.poll);
                }
                Err(_) => std::thread::sleep(config.poll),
            }
        }

        // Drain: stop accepting (done), wait for connection threads to
        // finish their in-flight request, then let workers empty the
        // queue.
        while active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(config.poll);
        }
        queue.close();
    });

    if let Some(t) = telemetry {
        t.flush();
    }
    Ok(stats.snapshot())
}

/// A server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<ServerStats>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
    /// on a background thread.
    ///
    /// # Errors
    /// Bind/local-addr failures.
    pub fn spawn(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn Handler>,
        obs: Obs,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            serve(listener, &config, handler.as_ref(), &obs, &flag)
        });
        Ok(ServerHandle { addr: local, shutdown, thread })
    }

    /// [`ServerHandle::spawn`] with the live-telemetry layer attached.
    ///
    /// # Errors
    /// Bind/local-addr failures.
    pub fn spawn_with_telemetry(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn Handler>,
        obs: Obs,
        telemetry: Arc<Telemetry>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            serve_with_telemetry(
                listener,
                &config,
                handler.as_ref(),
                &obs,
                &flag,
                Some(&telemetry),
            )
        });
        Ok(ServerHandle { addr: local, shutdown, thread })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag (shared with the serving thread).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests a graceful drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to finish draining.
    ///
    /// # Errors
    /// The serve loop's setup error, if any.
    ///
    /// # Panics
    /// Propagates a panic of the serving thread.
    pub fn join(self) -> io::Result<ServerStats> {
        self.thread.join().expect("serve thread panicked")
    }
}

enum First {
    Byte(u8),
    Eof,
    TimedOut,
    Err(io::Error),
}

fn read_first(stream: &mut TcpStream) -> First {
    let mut b = [0u8; 1];
    match stream.read(&mut b) {
        Ok(0) => First::Eof,
        Ok(_) => First::Byte(b[0]),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            First::TimedOut
        }
        Err(e) => First::Err(e),
    }
}

/// Server-built part of the health snapshot, enriched by the handler
/// (the PGO tier fills in its counters). Shared by the inline `Ping`
/// path and the telemetry HTTP thread, so `/health` and `Pong` agree.
fn build_health(
    queue: &BoundedQueue<Job>,
    config: &ServeConfig,
    stats: &AtomicStats,
    handler: &dyn Handler,
    telemetry: Option<&Telemetry>,
) -> HealthSnapshot {
    let base = HealthSnapshot {
        proto_minor: PROTO_MINOR,
        queue_depth: queue.len() as u32,
        queue_capacity: config.queue_capacity as u32,
        workers: config.workers as u32,
        connections: stats.connections.load(Ordering::Relaxed),
        requests: stats.requests.load(Ordering::Relaxed),
        telemetry_enabled: telemetry.is_some(),
        access_log_lines: telemetry.map_or(0, Telemetry::access_log_lines),
        traces_sampled: telemetry.map_or(0, Telemetry::traces_sampled),
        ..HealthSnapshot::default()
    };
    handler.health(base)
}

/// Encodes and writes one reply, recording it into the cumulative
/// metrics and (when attached) the telemetry layer. The reply bytes are
/// computed before any observation, so telemetry can never perturb them.
#[allow(clippy::too_many_arguments)]
fn emit_reply(
    stream: &mut TcpStream,
    obs: &Obs,
    stats: &AtomicStats,
    telemetry: Option<&Telemetry>,
    trace_id: u64,
    kind: &str,
    started: Instant,
    fin: Finished,
) -> io::Result<()> {
    let payload = encode_response(&fin.resp);
    record(obs, stats, kind, fin.resp.outcome_name(), started);
    if let Some(t) = telemetry {
        t.observe(&RequestRecord {
            trace_id,
            kind,
            outcome: fin.resp.outcome_name(),
            retcode: fin.resp.retcode(),
            queue_wait_ms: fin.queue_wait_ms,
            service_ms: fin.service_ms,
            total_ms: started.elapsed().as_secs_f64() * 1e3,
            bytes: payload.len() as u64,
            trace_json: fin.trace_json,
        });
    }
    frame::write_frame(stream, &payload)
}

/// Serves one connection until EOF, shutdown, or a poisoned stream.
#[allow(clippy::too_many_arguments)]
fn conn_loop(
    mut stream: TcpStream,
    config: &ServeConfig,
    queue: &BoundedQueue<Job>,
    handler: &dyn Handler,
    shutdown: &AtomicBool,
    stats: &AtomicStats,
    obs: &Obs,
    telemetry: Option<&Telemetry>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_nonblocking(false)?;
    loop {
        stream.set_read_timeout(Some(config.poll))?;
        let first = match read_first(&mut stream) {
            First::Eof => return Ok(()),
            First::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            First::Err(e) => return Err(e),
            First::Byte(b) => b,
        };

        // A frame has started: give it a generous (but bounded) window to
        // arrive in full, so a stalled peer cannot pin the thread forever.
        stream.set_read_timeout(Some(config.frame_timeout))?;
        let started = Instant::now();
        let trace_id = telemetry.map_or(0, Telemetry::next_trace_id);
        let payload = match frame::read_frame_after(first, &mut stream) {
            Ok(p) => p,
            Err(e) => {
                // The stream offset can no longer be trusted: send one
                // structured error, then close.
                stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    kind: ErrorKind::BadFrame,
                    message: frame_error_message(&e),
                };
                let _ = emit_reply(
                    &mut stream, obs, stats, telemetry, trace_id, "frame", started,
                    Finished::inline(resp),
                );
                return Ok(());
            }
        };

        let env = match decode_request(&payload) {
            Ok(env) => env,
            Err(e) => {
                // Frame boundaries held, so the connection survives a
                // malformed payload.
                let resp =
                    Response::Error { kind: ErrorKind::BadRequest, message: e.to_string() };
                emit_reply(
                    &mut stream, obs, stats, telemetry, trace_id, "payload", started,
                    Finished::inline(resp),
                )?;
                continue;
            }
        };

        let kind = env.request.kind_name();
        let fin = match env.request {
            Request::Ping => Finished::inline(Response::Pong {
                health: build_health(queue, config, stats, handler, telemetry),
            }),
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                Finished::inline(Response::ShuttingDown)
            }
            _ => {
                let (tx, rx) = mpsc::channel();
                let depth = queue.len();
                let job = Job {
                    env,
                    enqueued: started,
                    want_trace: telemetry.is_some(),
                    reply: tx,
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        obs.histogram("serve.queue_depth", depth as f64);
                        rx.recv().unwrap_or_else(|_| {
                            Finished::inline(Response::Error {
                                kind: ErrorKind::Internal,
                                message: "worker dropped the request".into(),
                            })
                        })
                    }
                    Err(PushError::Full(_)) => {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        Finished::inline(Response::Busy)
                    }
                    Err(PushError::Closed(_)) => Finished::inline(Response::ShuttingDown),
                }
            }
        };

        emit_reply(&mut stream, obs, stats, telemetry, trace_id, kind, started, fin)?;
    }
}

fn frame_error_message(e: &FrameError) -> String {
    format!("{e}")
}

/// Request-level instrumentation: one labeled counter tick and the
/// end-to-end latency histogram.
fn record(obs: &Obs, stats: &AtomicStats, kind: &str, outcome: &str, started: Instant) {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    if obs.is_recording() {
        obs.counter_labeled("serve.requests", &[("type", kind), ("outcome", outcome)], 1);
        obs.with_label("type", kind)
            .histogram("serve.latency_ms", started.elapsed().as_secs_f64() * 1e3);
    }
}

/// Pops jobs until the queue closes and drains; enforces deadlines, shields
/// the server from handler panics.
fn worker_loop(index: usize, queue: &BoundedQueue<Job>, handler: &dyn Handler, obs: &Obs) {
    while let Some(job) = queue.pop() {
        let waited = job.enqueued.elapsed();
        let queue_wait_ms = waited.as_secs_f64() * 1e3;
        let deadline = job.env.deadline_ms;
        let request = &job.env.request;
        let fin = if deadline > 0 && waited > Duration::from_millis(u64::from(deadline)) {
            let resp = Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                message: format!(
                    "request waited {:.1}ms in queue, deadline {deadline}ms",
                    waited.as_secs_f64() * 1e3
                ),
            };
            Finished { resp, queue_wait_ms, service_ms: 0.0, trace_json: None }
        } else {
            let service_started = Instant::now();
            let (resp, trace_json) = if job.want_trace {
                // Record this request's spans into a fork so the tail
                // sampler can keep the tree; metrics recorded there are
                // absorbed back, so cumulative series are unchanged and
                // the reply bytes never depend on telemetry.
                let req_obs =
                    Obs::recording(ObsConfig { level: Level::Off, trace: true, metrics: true });
                let span = req_obs
                    .span("serve.request")
                    .arg("type", request.kind_name())
                    .arg("worker", index as u64);
                let r = catch_unwind(AssertUnwindSafe(|| handler.handle(request, &req_obs)))
                    .unwrap_or_else(|_| Response::Error {
                        kind: ErrorKind::Internal,
                        message: "handler panicked".into(),
                    });
                drop(span);
                let trace_json = req_obs.export_trace_json();
                obs.absorb(&req_obs);
                (r, trace_json)
            } else {
                let span = obs
                    .span("serve.request")
                    .arg("type", request.kind_name())
                    .arg("worker", index as u64);
                let r = catch_unwind(AssertUnwindSafe(|| handler.handle(request, obs)))
                    .unwrap_or_else(|_| Response::Error {
                        kind: ErrorKind::Internal,
                        message: "handler panicked".into(),
                    });
                drop(span);
                (r, None)
            };
            Finished {
                resp,
                queue_wait_ms,
                service_ms: service_started.elapsed().as_secs_f64() * 1e3,
                trace_json,
            }
        };
        // The connection thread may have died; its channel being gone is
        // not the worker's problem.
        let _ = job.reply.send(fin);
    }
}
