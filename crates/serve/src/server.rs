//! The compile-service daemon: accept loop, bounded queue, worker team,
//! and graceful drain.
//!
//! Threading model (all scoped, no detached threads):
//!
//! - the **accept loop** runs on the caller's thread with a nonblocking
//!   listener, polling the shutdown flag between accepts;
//! - each connection gets a **connection thread** that reads frames,
//!   answers `Ping`/`Shutdown` inline, and pushes real work onto the
//!   bounded queue ([`pps_core::pool::BoundedQueue`]) — a full queue is an
//!   immediate [`Response::Busy`], never a blocked producer;
//! - a fixed team of **worker threads** pops jobs, enforces each request's
//!   queue-wait deadline, runs the [`Handler`], and hands the response back
//!   to the connection thread over a per-request channel.
//!
//! Shutdown (SIGTERM via [`crate::signal`], an in-band
//! [`Request::Shutdown`], or [`ServerHandle::shutdown`]) flips one atomic
//! flag: the accept loop stops accepting, connection threads finish their
//! in-flight request and close, then the queue is closed and the workers
//! drain everything already accepted before exiting — accepted work is
//! never dropped.

use crate::frame::{self, FrameError};
use crate::proto::{
    decode_request, encode_response, Envelope, ErrorKind, HealthSnapshot, Request, Response,
    PROTO_MINOR,
};
use pps_core::pool::{BoundedQueue, PushError};
use pps_obs::Obs;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Executes decoded requests. `Ping` and `Shutdown` never reach the
/// handler; everything else does.
pub trait Handler: Send + Sync {
    /// Produces the response for one request. Panics are caught and
    /// reported as [`ErrorKind::Internal`].
    fn handle(&self, request: &Request, obs: &Obs) -> Response;

    /// Enriches the server-built health snapshot with handler-level state
    /// (the continuous-PGO tier fills in aggregate/drift/swap counters
    /// here). The default handler has nothing to add.
    fn health(&self, base: HealthSnapshot) -> HealthSnapshot {
        base
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests (default: available parallelism).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue rejects with `Busy`.
    pub queue_capacity: usize,
    /// How often idle loops re-check the shutdown flag.
    pub poll: Duration,
    /// How long a started frame may take to arrive completely.
    pub frame_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = pps_core::pool::default_jobs();
        ServeConfig {
            workers,
            queue_capacity: (workers * 8).max(16),
            poll: Duration::from_millis(20),
            frame_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters the server reports when it exits (also exported through the
/// `serve.*` metrics while running).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests that produced a reply (including errors and `Busy`).
    pub requests: u64,
    /// `Busy` rejections among those.
    pub busy: u64,
    /// Connections dropped for malformed frames.
    pub frame_errors: u64,
}

#[derive(Default)]
struct AtomicStats {
    connections: AtomicU64,
    requests: AtomicU64,
    busy: AtomicU64,
    frame_errors: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// One queued request: the decoded envelope, when it was accepted, and the
/// channel its response travels back on.
struct Job {
    env: Envelope,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

/// Runs the server on the calling thread until `shutdown` becomes true,
/// then drains and returns the final stats.
///
/// # Errors
/// Only listener setup errors; per-connection failures are absorbed into
/// the stats.
pub fn serve(
    listener: TcpListener,
    config: &ServeConfig,
    handler: &dyn Handler,
    obs: &Obs,
    shutdown: &AtomicBool,
) -> io::Result<ServerStats> {
    listener.set_nonblocking(true)?;
    let queue: BoundedQueue<Job> = BoundedQueue::new(config.queue_capacity);
    let stats = AtomicStats::default();
    let active_conns = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..config.workers.max(1) {
            let queue = &queue;
            let obs = obs.clone();
            scope.spawn(move || worker_loop(w, queue, handler, &obs));
        }

        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    active_conns.fetch_add(1, Ordering::SeqCst);
                    let queue = &queue;
                    let stats = &stats;
                    let active_conns = &active_conns;
                    let config = config.clone();
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let r = conn_loop(stream, &config, queue, handler, shutdown, stats, &obs);
                        if let Err(e) = r {
                            obs.log(pps_obs::Level::Debug, || {
                                format!("connection {peer}: {e}")
                            });
                        }
                        active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.poll);
                }
                Err(_) => std::thread::sleep(config.poll),
            }
        }

        // Drain: stop accepting (done), wait for connection threads to
        // finish their in-flight request, then let workers empty the
        // queue.
        while active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(config.poll);
        }
        queue.close();
    });

    Ok(stats.snapshot())
}

/// A server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<ServerStats>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
    /// on a background thread.
    ///
    /// # Errors
    /// Bind/local-addr failures.
    pub fn spawn(
        addr: &str,
        config: ServeConfig,
        handler: Arc<dyn Handler>,
        obs: Obs,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            serve(listener, &config, handler.as_ref(), &obs, &flag)
        });
        Ok(ServerHandle { addr: local, shutdown, thread })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown flag (shared with the serving thread).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests a graceful drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to finish draining.
    ///
    /// # Errors
    /// The serve loop's setup error, if any.
    ///
    /// # Panics
    /// Propagates a panic of the serving thread.
    pub fn join(self) -> io::Result<ServerStats> {
        self.thread.join().expect("serve thread panicked")
    }
}

enum First {
    Byte(u8),
    Eof,
    TimedOut,
    Err(io::Error),
}

fn read_first(stream: &mut TcpStream) -> First {
    let mut b = [0u8; 1];
    match stream.read(&mut b) {
        Ok(0) => First::Eof,
        Ok(_) => First::Byte(b[0]),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            First::TimedOut
        }
        Err(e) => First::Err(e),
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    frame::write_frame(stream, &encode_response(resp))
}

/// Serves one connection until EOF, shutdown, or a poisoned stream.
fn conn_loop(
    mut stream: TcpStream,
    config: &ServeConfig,
    queue: &BoundedQueue<Job>,
    handler: &dyn Handler,
    shutdown: &AtomicBool,
    stats: &AtomicStats,
    obs: &Obs,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_nonblocking(false)?;
    loop {
        stream.set_read_timeout(Some(config.poll))?;
        let first = match read_first(&mut stream) {
            First::Eof => return Ok(()),
            First::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            First::Err(e) => return Err(e),
            First::Byte(b) => b,
        };

        // A frame has started: give it a generous (but bounded) window to
        // arrive in full, so a stalled peer cannot pin the thread forever.
        stream.set_read_timeout(Some(config.frame_timeout))?;
        let started = Instant::now();
        let payload = match frame::read_frame_after(first, &mut stream) {
            Ok(p) => p,
            Err(e) => {
                // The stream offset can no longer be trusted: send one
                // structured error, then close.
                stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                record(obs, stats, "frame", "bad-frame", started);
                let resp = Response::Error {
                    kind: ErrorKind::BadFrame,
                    message: frame_error_message(&e),
                };
                let _ = write_response(&mut stream, &resp);
                return Ok(());
            }
        };

        let env = match decode_request(&payload) {
            Ok(env) => env,
            Err(e) => {
                // Frame boundaries held, so the connection survives a
                // malformed payload.
                record(obs, stats, "payload", "bad-request", started);
                write_response(
                    &mut stream,
                    &Response::Error { kind: ErrorKind::BadRequest, message: e.to_string() },
                )?;
                continue;
            }
        };

        let kind = env.request.kind_name();
        let resp = match env.request {
            Request::Ping => {
                let base = HealthSnapshot {
                    proto_minor: PROTO_MINOR,
                    queue_depth: queue.len() as u32,
                    queue_capacity: config.queue_capacity as u32,
                    workers: config.workers as u32,
                    connections: stats.connections.load(Ordering::Relaxed),
                    requests: stats.requests.load(Ordering::Relaxed),
                    ..HealthSnapshot::default()
                };
                Response::Pong { health: handler.health(base) }
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
            _ => {
                let (tx, rx) = mpsc::channel();
                let depth = queue.len();
                match queue.try_push(Job { env, enqueued: started, reply: tx }) {
                    Ok(()) => {
                        obs.histogram("serve.queue_depth", depth as f64);
                        rx.recv().unwrap_or(Response::Error {
                            kind: ErrorKind::Internal,
                            message: "worker dropped the request".into(),
                        })
                    }
                    Err(PushError::Full(_)) => {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        Response::Busy
                    }
                    Err(PushError::Closed(_)) => Response::ShuttingDown,
                }
            }
        };

        record(obs, stats, kind, resp.outcome_name(), started);
        write_response(&mut stream, &resp)?;
    }
}

fn frame_error_message(e: &FrameError) -> String {
    format!("{e}")
}

/// Request-level instrumentation: one labeled counter tick and the
/// end-to-end latency histogram.
fn record(obs: &Obs, stats: &AtomicStats, kind: &str, outcome: &str, started: Instant) {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    if obs.is_recording() {
        obs.counter_labeled("serve.requests", &[("type", kind), ("outcome", outcome)], 1);
        obs.with_label("type", kind)
            .histogram("serve.latency_ms", started.elapsed().as_secs_f64() * 1e3);
    }
}

/// Pops jobs until the queue closes and drains; enforces deadlines, shields
/// the server from handler panics.
fn worker_loop(index: usize, queue: &BoundedQueue<Job>, handler: &dyn Handler, obs: &Obs) {
    while let Some(job) = queue.pop() {
        let waited = job.enqueued.elapsed();
        let deadline = job.env.deadline_ms;
        let request = &job.env.request;
        let resp = if deadline > 0 && waited > Duration::from_millis(u64::from(deadline)) {
            Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                message: format!(
                    "request waited {:.1}ms in queue, deadline {deadline}ms",
                    waited.as_secs_f64() * 1e3
                ),
            }
        } else {
            let span = obs
                .span("serve.request")
                .arg("type", request.kind_name())
                .arg("worker", index as u64);
            let r = catch_unwind(AssertUnwindSafe(|| handler.handle(request, obs)))
                .unwrap_or_else(|_| Response::Error {
                    kind: ErrorKind::Internal,
                    message: "handler panicked".into(),
                });
            drop(span);
            r
        };
        // The connection thread may have died; its channel being gone is
        // not the worker's problem.
        let _ = job.reply.send(resp);
    }
}
