//! The continuous-PGO loop: aggregate live profiles, detect drift, and
//! recompile drifted units off the request path with atomic hot-swap.
//!
//! Three pieces close the loop the paper leaves open (profiles from a
//! training run steering *future* runs):
//!
//! - **Aggregation** — [`PgoState`] implements
//!   [`crate::service::ProfileSink`], so every profile a request trains or
//!   carries (`Profile`, `Compile`, `RunCell`) is folded into a per-bench
//!   live aggregate by counter addition ([`pps_profile::merge`]).
//!   Publishing is a pure side effect: replies stay byte-identical to
//!   sink-less execution.
//! - **Drift detection** — each serving unit remembers the path profile it
//!   was compiled against; [`PgoState::sweep`] scores the live aggregate
//!   against it ([`pps_profile::path_drift`]: top-k overlap + weight
//!   divergence) with hysteresis (enter above `enter_threshold`, exit
//!   below `exit_threshold`) so a unit oscillating near the line doesn't
//!   flap.
//! - **Fault-isolated recompile + swap** — drifted units are rebuilt
//!   against an aggregate snapshot inside `catch_unwind`, behind the
//!   strict PR 1 guard (structural verifier + differential oracle). Only a
//!   fully verified unit is published, through a generation-stamped CAS
//!   ([`pps_core::SwapSlot::swap_if`]): a stale recompile (another swap
//!   landed first) or any fault rolls back — the old unit keeps serving,
//!   untouched. A per-sweep recompile budget plus a per-unit cooldown
//!   bound churn under oscillating workloads.
//!
//! [`PgoRuntime`] runs [`PgoState::sweep`] on a background thread;
//! [`PgoRuntime::shutdown`] drains it — the swap is a single slot
//! operation, so shutdown can never observe a half-swapped unit.

use crate::cache::CompileCache;
use crate::proto::HealthSnapshot;
use crate::server::Handler;
use crate::service::{execute_cached, ProfileSink};
use pps_compact::CompactConfig;
use pps_core::{
    guarded_form_and_compact_hooked_obs, FormConfig, GuardConfig, GuardMode, Scheme, SwapOutcome,
    SwapSlot,
};
use pps_ir::FaultInjector;
use pps_obs::{Level, Obs};
use pps_profile::{merge_edges, merge_paths, path_drift, EdgeProfile, PathProfile};
use pps_suite::{benchmark_by_name, Scale};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::service::parse_scheme;

/// Injected recompile fault, for exercising the containment paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PgoFault {
    /// No injection — recompiles run for real.
    #[default]
    None,
    /// The recompile attempt panics before reaching the pipeline; the
    /// tier's `catch_unwind` must contain it.
    Panic,
    /// A deterministic effective fault corrupts each procedure after
    /// formation (the guard's post-pass seam); the strict verifier /
    /// differential oracle must reject the unit.
    Corrupt,
}

impl PgoFault {
    /// Parses a `--pgo-fault` CLI value.
    pub fn parse(s: &str) -> Option<PgoFault> {
        match s {
            "none" => Some(PgoFault::None),
            "panic" => Some(PgoFault::Panic),
            "corrupt" => Some(PgoFault::Corrupt),
            _ => None,
        }
    }
}

/// Tuning knobs of the continuous-PGO loop.
#[derive(Debug, Clone)]
pub struct PgoConfig {
    /// Profiles that must be folded into a bench's aggregate before its
    /// units are drift-checked (a one-sample aggregate is noise).
    pub min_samples: u64,
    /// Background sweep period.
    pub interval: Duration,
    /// Hot windows compared by the drift metric.
    pub top_k: usize,
    /// Hysteresis: a unit enters the drifted set at or above this score.
    pub enter_threshold: f64,
    /// Hysteresis: a drifted unit exits below this score.
    pub exit_threshold: f64,
    /// Minimum wall time between recompiles of the same unit.
    pub cooldown: Duration,
    /// Recompiles allowed per sweep, across all units (churn budget).
    pub recompiles_per_sweep: usize,
    /// Injected fault mode (tests and the drift-smoke stage).
    pub fault: PgoFault,
}

impl Default for PgoConfig {
    fn default() -> Self {
        PgoConfig {
            min_samples: 2,
            interval: Duration::from_millis(500),
            top_k: 16,
            enter_threshold: 0.5,
            exit_threshold: 0.25,
            cooldown: Duration::from_secs(5),
            recompiles_per_sweep: 2,
            fault: PgoFault::None,
        }
    }
}

/// A compiled unit as the PGO tier tracks it: the profiles it was built
/// against (the drift reference), its verified compile report, and the
/// aggregate epoch it snapshotted.
#[derive(Debug, Clone)]
pub struct ServingUnit {
    /// Edge profile the unit was compiled against.
    pub edge: EdgeProfile,
    /// Path profile the unit was compiled against — drift is measured
    /// from this.
    pub path: PathProfile,
    /// Deterministic compile report (`pps-compile-report v1`), empty for
    /// the initial request-path unit (its report went to the client).
    pub report: String,
    /// Aggregate epoch the profiles were snapshotted at.
    pub epoch: u64,
}

/// Live merged profiles for one benchmark.
struct Aggregate {
    edge: EdgeProfile,
    path: PathProfile,
    samples: u64,
    /// Bumped on every merge, so sweeps can skip unchanged aggregates.
    epoch: u64,
}

/// Sweep-owned drift bookkeeping for one unit.
struct UnitMeta {
    drifted: bool,
    last_score: f64,
    last_recompile: Option<Instant>,
}

struct UnitEntry {
    slot: SwapSlot<ServingUnit>,
    meta: Mutex<UnitMeta>,
}

/// What one [`PgoState::sweep`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Units whose drift score was (re)evaluated.
    pub evaluated: usize,
    /// Units in the drifted set when the sweep finished.
    pub drifted: usize,
    /// Recompiles attempted this sweep.
    pub recompiles: usize,
    /// Recompiles that swapped in.
    pub swaps: usize,
    /// Recompiles rolled back (fault, verifier reject, or stale CAS).
    pub rollbacks: usize,
    /// Drifted units skipped for cooldown or budget.
    pub deferred: usize,
}

/// Shared state of the continuous-PGO loop. One instance is shared by the
/// request path (as a [`ProfileSink`]), the background sweeper, and the
/// health snapshot.
pub struct PgoState {
    config: PgoConfig,
    aggregates: Mutex<HashMap<String, Aggregate>>,
    units: Mutex<HashMap<(String, u32, String), Arc<UnitEntry>>>,
    profiles_merged: AtomicU64,
    merges_skipped: AtomicU64,
    recompiles: AtomicU64,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
    in_flight: AtomicU32,
    obs: Obs,
    /// Reply cache to invalidate when a hot-swap lands (the cached reply
    /// for the group is not wrong — replies are pure functions of their
    /// key — but dropping it keeps the cache from pinning entries for a
    /// generation the tier has moved past).
    cache: OnceLock<Arc<CompileCache>>,
}

impl PgoState {
    /// Creates the loop state; `obs` receives the `pgo.*` counters and
    /// histograms.
    pub fn new(config: PgoConfig, obs: Obs) -> Self {
        PgoState {
            config,
            aggregates: Mutex::new(HashMap::new()),
            units: Mutex::new(HashMap::new()),
            profiles_merged: AtomicU64::new(0),
            merges_skipped: AtomicU64::new(0),
            recompiles: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            in_flight: AtomicU32::new(0),
            obs,
            cache: OnceLock::new(),
        }
    }

    /// Attaches the daemon's reply cache so hot-swaps invalidate the
    /// swapped unit's cache group. Call once at startup; later calls are
    /// ignored.
    pub fn attach_cache(&self, cache: Arc<CompileCache>) {
        let _ = self.cache.set(cache);
    }

    /// The attached reply cache, if any.
    pub fn cache(&self) -> Option<&Arc<CompileCache>> {
        self.cache.get()
    }

    /// The configuration the loop runs with.
    pub fn config(&self) -> &PgoConfig {
        &self.config
    }

    /// `(samples, epoch)` of a bench's aggregate, if any — test/ops
    /// introspection.
    pub fn aggregate_stats(&self, bench: &str) -> Option<(u64, u64)> {
        let aggs = self.aggregates.lock().unwrap();
        aggs.get(bench).map(|a| (a.samples, a.epoch))
    }

    /// Current generation of a unit's swap slot, if the unit is tracked.
    pub fn unit_generation(&self, bench: &str, scale: u32, scheme: &str) -> Option<u64> {
        let units = self.units.lock().unwrap();
        units
            .get(&(bench.to_string(), scale, scheme.to_string()))
            .map(|u| u.slot.generation())
    }

    /// The serving copy of a unit, if tracked: `(generation, unit)`.
    pub fn unit(&self, bench: &str, scale: u32, scheme: &str) -> Option<(u64, Arc<ServingUnit>)> {
        let units = self.units.lock().unwrap();
        units
            .get(&(bench.to_string(), scale, scheme.to_string()))
            .map(|u| u.slot.load())
    }

    /// Fills the PGO half of the health snapshot.
    pub fn fill_health(&self, mut base: HealthSnapshot) -> HealthSnapshot {
        base.pgo_enabled = true;
        base.profiles_merged = self.profiles_merged.load(Ordering::Relaxed);
        base.recompiles = self.recompiles.load(Ordering::Relaxed);
        base.swaps = self.swaps.load(Ordering::Relaxed);
        base.rollbacks = self.rollbacks.load(Ordering::Relaxed);
        base.in_flight_recompiles = self.in_flight.load(Ordering::Relaxed);
        let units = self.units.lock().unwrap();
        base.units = units.len() as u32;
        base.max_generation = units.values().map(|u| u.slot.generation()).max().unwrap_or(0);
        base.drifted_units = units
            .values()
            .filter(|u| u.meta.lock().unwrap().drifted)
            .count() as u32;
        drop(units);
        if let Some(cache) = self.cache.get() {
            cache.fill_health(&mut base);
        }
        base
    }

    /// One pass of the drift detector + recompile tier. The background
    /// runtime calls this on its interval; tests call it directly for a
    /// fully synchronous loop.
    pub fn sweep(&self) -> SweepReport {
        let mut report = SweepReport::default();
        let entries: Vec<((String, u32, String), Arc<UnitEntry>)> = {
            let units = self.units.lock().unwrap();
            units.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let mut budget = self.config.recompiles_per_sweep;
        for ((bench, scale, scheme), entry) in entries {
            let snapshot = {
                let aggs = self.aggregates.lock().unwrap();
                match aggs.get(&bench) {
                    Some(a) if a.samples >= self.config.min_samples => {
                        Some((a.edge.clone(), a.path.clone(), a.epoch))
                    }
                    _ => None,
                }
            };
            let Some((agg_edge, agg_path, agg_epoch)) = snapshot else { continue };

            let (generation, unit) = entry.slot.load();
            let drift = path_drift(&unit.path, &agg_path, self.config.top_k);
            report.evaluated += 1;
            self.obs.histogram("pgo.drift_score", drift.score);

            let wants_recompile = {
                let mut meta = entry.meta.lock().unwrap();
                meta.last_score = drift.score;
                if !meta.drifted && drift.score >= self.config.enter_threshold {
                    meta.drifted = true;
                    self.obs.log(Level::Info, || {
                        format!(
                            "pgo: {bench}/{scale}/{scheme} drifted \
                             (score {:.3}, overlap {:.3}, divergence {:.3})",
                            drift.score, drift.top_k_overlap, drift.weight_divergence
                        )
                    });
                } else if meta.drifted && drift.score < self.config.exit_threshold {
                    meta.drifted = false;
                }
                // Already serving this aggregate epoch: a fresh recompile
                // would rebuild the same unit.
                meta.drifted && unit.epoch != agg_epoch
            };

            if wants_recompile {
                let cooled = {
                    let meta = entry.meta.lock().unwrap();
                    meta.last_recompile
                        .is_none_or(|t| t.elapsed() >= self.config.cooldown)
                };
                if budget == 0 || !cooled {
                    report.deferred += 1;
                } else {
                    budget -= 1;
                    report.recompiles += 1;
                    entry.meta.lock().unwrap().last_recompile = Some(Instant::now());
                    let swapped = self.recompile(
                        &bench, scale, &scheme, &entry, generation, agg_edge, agg_path, agg_epoch,
                    );
                    if swapped {
                        report.swaps += 1;
                    } else {
                        report.rollbacks += 1;
                    }
                }
            }
        }
        report.drifted = {
            let units = self.units.lock().unwrap();
            units.values().filter(|u| u.meta.lock().unwrap().drifted).count()
        };
        self.obs.histogram("pgo.sweep_recompiles", report.recompiles as f64);
        report
    }

    /// Rebuilds one unit against the aggregate snapshot and publishes it
    /// via CAS. Returns true when the new unit swapped in; any failure —
    /// panic, pipeline error, verifier/oracle reject, stale generation —
    /// leaves the serving copy untouched and counts a rollback.
    #[allow(clippy::too_many_arguments)]
    fn recompile(
        &self,
        bench_name: &str,
        scale: u32,
        scheme_name: &str,
        entry: &UnitEntry,
        observed_gen: u64,
        edge: EdgeProfile,
        path: PathProfile,
        epoch: u64,
    ) -> bool {
        self.recompiles.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let fault = self.config.fault;
        let obs = self.obs.clone();
        let built = catch_unwind(AssertUnwindSafe(|| {
            build_unit(bench_name, scale, scheme_name, &edge, &path, epoch, fault, &obs)
        }));
        self.in_flight.fetch_sub(1, Ordering::Relaxed);

        let outcome = match built {
            Ok(Ok(unit)) => match entry.slot.swap_if(observed_gen, unit) {
                SwapOutcome::Swapped(generation) => {
                    self.obs.log(Level::Info, || {
                        format!(
                            "pgo: {bench_name}/{scale}/{scheme_name} hot-swapped \
                             (generation {generation}, epoch {epoch})"
                        )
                    });
                    if let Some(cache) = self.cache.get() {
                        // Cache groups key on the canonical scheme name;
                        // the unit key keeps whatever string the client
                        // sent, so canonicalize before invalidating.
                        let canonical = parse_scheme(scheme_name)
                            .map(|s| s.name())
                            .unwrap_or_else(|| scheme_name.to_string());
                        cache.invalidate_group(bench_name, scale, &canonical);
                    }
                    "swapped"
                }
                SwapOutcome::Stale(_) => "stale",
            },
            Ok(Err(message)) => {
                self.obs.log(Level::Warn, || {
                    format!("pgo: {bench_name}/{scale}/{scheme_name} recompile rejected: {message}")
                });
                "rejected"
            }
            Err(_) => {
                self.obs.log(Level::Warn, || {
                    format!("pgo: {bench_name}/{scale}/{scheme_name} recompile panicked (contained)")
                });
                "panicked"
            }
        };
        self.obs
            .counter_labeled("pgo.recompiles", &[("outcome", outcome)], 1);
        if outcome == "swapped" {
            self.swaps.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
            self.obs.counter("pgo.rollbacks", 1);
            false
        }
    }
}

/// Compiles `(bench, scale, scheme)` against the given profiles behind the
/// strict guard (verifier + differential oracle on the training input).
/// Runs inside the caller's `catch_unwind`.
#[allow(clippy::too_many_arguments)]
fn build_unit(
    bench_name: &str,
    scale: u32,
    scheme_name: &str,
    edge: &EdgeProfile,
    path: &PathProfile,
    epoch: u64,
    fault: PgoFault,
    obs: &Obs,
) -> Result<ServingUnit, String> {
    if fault == PgoFault::Panic {
        panic!("pgo: injected recompile panic");
    }
    let scheme: Scheme =
        parse_scheme(scheme_name).ok_or_else(|| format!("no scheme `{scheme_name}`"))?;
    let bench = benchmark_by_name(bench_name, Scale(scale))
        .ok_or_else(|| format!("no benchmark `{bench_name}`"))?;
    let mut program = bench.program.clone();
    let guard = GuardConfig {
        mode: GuardMode::Strict,
        oracle_inputs: vec![bench.train_args.clone()],
        ..GuardConfig::default()
    };
    let step_budget = guard.step_budget;
    let oracle_inputs = guard.oracle_inputs.clone();
    let mut injector = FaultInjector::new(0xD81F);
    let guarded = guarded_form_and_compact_hooked_obs(
        &mut program,
        edge,
        Some(path),
        scheme,
        &FormConfig::default(),
        &CompactConfig::default(),
        &guard,
        obs,
        &mut |prog, pid| {
            if fault == PgoFault::Corrupt {
                let _ = injector.inject_effective(prog, pid, &oracle_inputs, step_budget, 32);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    let stats = &guarded.stats;
    let report = format!(
        "pps-compile-report v1\n\
         bench {bench_name} scheme {scheme}\n\
         superblocks {superblocks}\n\
         static_after {after}\n\
         epoch {epoch}\n",
        scheme = scheme.name(),
        superblocks = stats.superblocks,
        after = stats.static_after,
    );
    Ok(ServingUnit { edge: edge.clone(), path: path.clone(), report, epoch })
}

impl ProfileSink for PgoState {
    fn publish(&self, bench: &str, _scale: u32, edge: &EdgeProfile, path: &PathProfile) {
        let mut aggs = self.aggregates.lock().unwrap();
        match aggs.get_mut(bench) {
            None => {
                aggs.insert(
                    bench.to_string(),
                    Aggregate { edge: edge.clone(), path: path.clone(), samples: 1, epoch: 1 },
                );
            }
            Some(agg) => {
                // Different collection depths (or a shape change) make the
                // pair unmergeable; count and skip rather than poison the
                // aggregate.
                match (merge_edges(&agg.edge, edge), merge_paths(&agg.path, path)) {
                    (Ok(e), Ok(p)) => {
                        agg.edge = e;
                        agg.path = p;
                        agg.samples += 1;
                        agg.epoch += 1;
                    }
                    (_, Err(e)) | (Err(e), _) => {
                        self.merges_skipped.fetch_add(1, Ordering::Relaxed);
                        self.obs.counter("pgo.merges_skipped", 1);
                        self.obs.log(Level::Debug, || {
                            format!("pgo: skipped unmergeable profile for {bench}: {e}")
                        });
                        return;
                    }
                }
            }
        }
        self.profiles_merged.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("pgo.profiles_merged", 1);
    }

    fn observe_unit(&self, bench: &str, scale: u32, scheme: &str, path: &PathProfile) {
        let key = (bench.to_string(), scale, scheme.to_string());
        let mut units = self.units.lock().unwrap();
        if units.contains_key(&key) {
            return;
        }
        // The request path already compiled (and replied with) this unit;
        // the tier only needs its drift reference. The edge half is not
        // used by the drift metric, so an empty placeholder suffices until
        // the first recompile stores the real pair.
        units.insert(
            key,
            Arc::new(UnitEntry {
                slot: SwapSlot::new(ServingUnit {
                    edge: EdgeProfile::default(),
                    path: path.clone(),
                    report: String::new(),
                    epoch: 0,
                }),
                meta: Mutex::new(UnitMeta {
                    drifted: false,
                    last_score: 0.0,
                    last_recompile: None,
                }),
            }),
        );
        self.obs.counter("pgo.units_observed", 1);
    }
}

/// A [`Handler`] that executes requests through the pipeline while feeding
/// the continuous-PGO loop, and enriches health snapshots with loop state.
pub struct PgoHandler {
    state: Arc<PgoState>,
}

impl PgoHandler {
    /// Wraps the loop state as the daemon's handler.
    pub fn new(state: Arc<PgoState>) -> Self {
        PgoHandler { state }
    }

    /// The shared loop state.
    pub fn state(&self) -> &Arc<PgoState> {
        &self.state
    }
}

impl Handler for PgoHandler {
    fn handle(&self, request: &crate::proto::Request, obs: &Obs) -> crate::proto::Response {
        execute_cached(
            request,
            obs,
            Some(self.state.as_ref()),
            self.state.cache().map(Arc::as_ref),
        )
    }

    fn health(&self, base: HealthSnapshot) -> HealthSnapshot {
        self.state.fill_health(base)
    }
}

/// The background sweeper: runs [`PgoState::sweep`] every
/// [`PgoConfig::interval`] until shut down.
pub struct PgoRuntime {
    state: Arc<PgoState>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PgoRuntime {
    /// Starts the sweeper thread.
    pub fn start(state: Arc<PgoState>) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let sweeper = Arc::clone(&state);
        let interval = state.config.interval;
        let thread = std::thread::Builder::new()
            .name("pps-pgo-sweeper".into())
            .spawn(move || {
                let (lock, cvar) = &*flag;
                loop {
                    {
                        let mut stopped = lock.lock().unwrap();
                        while !*stopped {
                            let (guard, timeout) =
                                cvar.wait_timeout(stopped, interval).unwrap();
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                        }
                        if *stopped {
                            return;
                        }
                    }
                    sweeper.sweep();
                }
            })
            .expect("spawn pgo sweeper");
        PgoRuntime { state, stop, thread: Some(thread) }
    }

    /// The shared loop state.
    pub fn state(&self) -> &Arc<PgoState> {
        &self.state
    }

    /// Stops the sweeper and waits for any in-flight sweep to finish.
    /// Because publication is a single CAS, no half-swapped unit can
    /// survive this join.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        if let Some(thread) = self.thread.take() {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
            let _ = thread.join();
        }
    }
}

impl Drop for PgoRuntime {
    fn drop(&mut self) {
        self.halt();
    }
}
