//! The consistent-hash shard router.
//!
//! ```text
//! pps-shard --shard HOST:PORT [--shard HOST:PORT ...]
//!           [--addr HOST:PORT] [--vnodes N] [--port-file FILE]
//!           [--reply-timeout-ms N] [--log-level LEVEL]
//! ```
//!
//! Binds the front-door address (default `127.0.0.1:0`), prints
//! `listening on ADDR`, optionally writes the bound address to
//! `--port-file` (atomically, for scripts to poll), and relays PPSF
//! frames to the configured `pps-serve` shards by artifact identity until
//! SIGTERM/SIGINT or an in-band `Shutdown` (which it also fans out to
//! every shard). `Ping` answers with the summed health of all shards plus
//! the router's `routed`/`shards` counters; `Busy` and structured errors
//! pass through from the owning shard byte-identically.

use pps_obs::{Level, Obs, ObsConfig};
use pps_serve::shard::{route, Router, RouterConfig, ShardRing, DEFAULT_VNODES};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pps-shard --shard HOST:PORT [--shard HOST:PORT ...]\n\
         \x20               [--addr HOST:PORT] [--vnodes N] [--port-file FILE]\n\
         \x20               [--reply-timeout-ms N] [--log-level off|error|warn|info|debug]\n\
         Routes PPSF requests across pps-serve shards by content address\n\
         (consistent hashing over the artifact key), so repeats of one\n\
         artifact always land on the same daemon's reply cache. Ping\n\
         fans in every shard's health; Shutdown drains the whole cluster."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards: Vec<String> = Vec::new();
    let mut vnodes = DEFAULT_VNODES;
    let mut port_file: Option<String> = None;
    let mut config = RouterConfig::default();
    let mut level = Level::Info;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shard" => shards.push(it.next().unwrap_or_else(|| usage()).clone()),
            "--addr" => addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--vnodes" => {
                vnodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--port-file" => port_file = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--reply-timeout-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                config.reply_timeout =
                    if ms == 0 { None } else { Some(Duration::from_millis(ms)) };
            }
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if shards.is_empty() {
        usage();
    }

    let obs = Obs::recording(ObsConfig { level, trace: false, metrics: false });
    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    pps_serve::signal::install_shutdown_flag(Arc::clone(&shutdown));

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[pps-shard error] bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("[pps-shard error] local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pps-shard listening on {local}");
    obs.log(Level::Info, || {
        format!("routing over {} shards, {vnodes} vnodes each: {shards:?}", shards.len())
    });
    if let Some(path) = &port_file {
        // Write-then-rename so pollers never read a half-written address.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        let write = std::fs::write(&tmp, format!("{local}\n"))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("[pps-shard error] port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let router = Router::new(ShardRing::new(shards, vnodes), config);
    let stats = match route(listener, &router, &obs, &shutdown) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("[pps-shard error] route: {e}");
            return ExitCode::FAILURE;
        }
    };
    obs.log(Level::Info, || {
        format!(
            "drained: {} connections, {} routed ({} errors, {} frame errors), per-shard {:?}",
            stats.connections,
            stats.routed,
            stats.errors,
            stats.frame_errors,
            router.per_shard_routed(),
        )
    });
    ExitCode::SUCCESS
}
