//! The compile-service daemon.
//!
//! ```text
//! pps-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--port-file FILE] [--metrics-out FILE] [--log-level LEVEL]
//! ```
//!
//! Binds the address (default `127.0.0.1:0` — an ephemeral port), prints
//! `listening on ADDR`, optionally writes the bound address to
//! `--port-file` (atomically, for scripts to poll), and serves until
//! SIGTERM/SIGINT or an in-band `Shutdown` request, draining accepted work
//! before exiting. `--metrics-out` writes the `serve.*` request counters
//! and latency/queue-depth histograms as JSON on exit.

use pps_obs::{Level, Obs, ObsConfig};
use pps_serve::server::{serve, ServeConfig};
use pps_serve::service::PipelineHandler;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: pps-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20               [--port-file FILE] [--metrics-out FILE] [--log-level off|error|warn|info|debug]\n\
         Serves Profile/Compile/RunCell requests over the PPSF framed protocol.\n\
         Stop with SIGTERM, SIGINT, or an in-band Shutdown request; accepted\n\
         work is drained before exit."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut port_file: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut level = Level::Info;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--queue-cap" => {
                config.queue_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--port-file" => port_file = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let obs = Obs::recording(ObsConfig {
        level,
        trace: false,
        metrics: metrics_out.is_some(),
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    pps_serve::signal::install_shutdown_flag(Arc::clone(&shutdown));

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[pps-serve error] bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("[pps-serve error] local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pps-serve listening on {local}");
    obs.log(Level::Info, || {
        format!(
            "workers {} queue-cap {} (drain on SIGTERM/Shutdown)",
            config.workers, config.queue_capacity
        )
    });
    if let Some(path) = &port_file {
        // Write-then-rename so pollers never read a half-written address.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        let write = std::fs::write(&tmp, format!("{local}\n"))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("[pps-serve error] port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let handler = PipelineHandler;
    let stats = match serve(listener, &config, &handler, &obs, &shutdown) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("[pps-serve error] serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    obs.log(Level::Info, || {
        format!(
            "drained: {} connections, {} requests ({} busy, {} frame errors)",
            stats.connections, stats.requests, stats.busy, stats.frame_errors
        )
    });
    if let Some(path) = &metrics_out {
        match obs.write_metrics(path) {
            Ok(_) => obs.log(Level::Info, || format!("metrics written to {path}")),
            Err(e) => {
                eprintln!("[pps-serve error] writing metrics to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
