//! The compile-service daemon.
//!
//! ```text
//! pps-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--port-file FILE] [--metrics-out FILE] [--log-level LEVEL]
//!           [--telemetry-addr HOST:PORT] [--telemetry-port-file FILE]
//!           [--access-log FILE] [--cache-cap N]
//! ```
//!
//! Binds the address (default `127.0.0.1:0` — an ephemeral port), prints
//! `listening on ADDR`, optionally writes the bound address to
//! `--port-file` (atomically, for scripts to poll), and serves until
//! SIGTERM/SIGINT or an in-band `Shutdown` request, draining accepted work
//! before exiting. `--metrics-out` writes the `serve.*` request counters
//! and latency/queue-depth histograms as JSON on exit.
//!
//! `--telemetry-addr` starts the live-telemetry HTTP listener
//! (`/metrics`, `/health`, `/trace` — see README §Live telemetry);
//! `--access-log` writes one JSON line per reply. Either flag switches the
//! telemetry layer on; replies stay byte-identical either way.

use pps_obs::{Level, Obs, ObsConfig};
use pps_serve::cache::CompileCache;
use pps_serve::pgo::{PgoConfig, PgoFault, PgoHandler, PgoRuntime, PgoState};
use pps_serve::server::{serve_with_telemetry, Handler, ServeConfig};
use pps_serve::service::{CachedPipelineHandler, PipelineHandler};
use pps_serve::telemetry::{Telemetry, TelemetryConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pps-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20               [--port-file FILE] [--metrics-out FILE] [--log-level off|error|warn|info|debug]\n\
         \x20               [--telemetry-addr HOST:PORT] [--telemetry-port-file FILE]\n\
         \x20               [--access-log FILE]\n\
         \x20               [--pgo on|off] [--pgo-interval-ms N] [--pgo-min-samples N]\n\
         \x20               [--pgo-enter X] [--pgo-exit X] [--pgo-cooldown-ms N]\n\
         \x20               [--pgo-budget N] [--pgo-top-k N] [--pgo-fault none|panic|corrupt]\n\
         \x20               [--cache-cap N]\n\
         Serves Profile/Compile/RunCell requests over the PPSF framed protocol.\n\
         Replies are cached by content address (program x profiles x scheme x\n\
         machine); --cache-cap bounds the entry count (default 128, 0 = off).\n\
         PGO hot-swaps invalidate the swapped unit's cache group.\n\
         --telemetry-addr exposes /metrics (Prometheus text), /health (JSON),\n\
         and /trace (tail-sampled spans) over HTTP; --access-log writes one\n\
         JSON line per reply. Replies are byte-identical with telemetry on.\n\
         With --pgo on (default), live profiles are aggregated, drifted units\n\
         are recompiled in the background, and verified rebuilds hot-swap in\n\
         atomically (see README \u{a7}Continuous PGO).\n\
         Stop with SIGTERM, SIGINT, or an in-band Shutdown request; accepted\n\
         work is drained before exit."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut port_file: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut telemetry_addr: Option<String> = None;
    let mut telemetry_port_file: Option<String> = None;
    let mut access_log: Option<String> = None;
    let mut level = Level::Info;
    let mut pgo_enabled = true;
    let mut pgo = PgoConfig::default();
    let mut cache_cap: usize = pps_serve::cache::DEFAULT_CAPACITY;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pgo" => {
                pgo_enabled = match it.next().map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                };
            }
            "--pgo-interval-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                pgo.interval = Duration::from_millis(ms.max(1));
            }
            "--pgo-min-samples" => {
                pgo.min_samples =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--pgo-enter" => {
                pgo.enter_threshold =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--pgo-exit" => {
                pgo.exit_threshold =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--pgo-cooldown-ms" => {
                let ms: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                pgo.cooldown = Duration::from_millis(ms);
            }
            "--pgo-budget" => {
                pgo.recompiles_per_sweep =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--pgo-top-k" => {
                pgo.top_k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--pgo-fault" => {
                pgo.fault = it
                    .next()
                    .and_then(|v| PgoFault::parse(v))
                    .unwrap_or_else(|| usage());
            }
            "--cache-cap" => {
                cache_cap = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--addr" => addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--queue-cap" => {
                config.queue_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--port-file" => port_file = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--telemetry-addr" => {
                telemetry_addr = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--telemetry-port-file" => {
                telemetry_port_file = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--access-log" => access_log = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--log-level" => {
                level = Level::parse(it.next().unwrap_or_else(|| usage())).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let telemetry_on = telemetry_addr.is_some() || access_log.is_some();
    let obs = Obs::recording(ObsConfig {
        level,
        trace: false,
        // /metrics scrapes the cumulative registry, so telemetry needs it
        // recording even without --metrics-out.
        metrics: metrics_out.is_some() || telemetry_on,
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    pps_serve::signal::install_shutdown_flag(Arc::clone(&shutdown));

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[pps-serve error] bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("[pps-serve error] local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pps-serve listening on {local}");
    obs.log(Level::Info, || {
        format!(
            "workers {} queue-cap {} (drain on SIGTERM/Shutdown)",
            config.workers, config.queue_capacity
        )
    });
    if let Some(path) = &port_file {
        // Write-then-rename so pollers never read a half-written address.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        let write = std::fs::write(&tmp, format!("{local}\n"))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("[pps-serve error] port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let telemetry = if telemetry_on {
        let tconfig = TelemetryConfig { access_log: access_log.clone(), ..TelemetryConfig::default() };
        match Telemetry::new(telemetry_addr.as_deref(), tconfig) {
            Ok(t) => Some(Arc::new(t)),
            Err(e) => {
                eprintln!("[pps-serve error] telemetry: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if let Some(t) = &telemetry {
        if let Some(scrape) = t.http_addr() {
            println!("pps-serve telemetry on {scrape}");
            if let Some(path) = &telemetry_port_file {
                let tmp = format!("{path}.tmp.{}", std::process::id());
                let write = std::fs::write(&tmp, format!("{scrape}\n"))
                    .and_then(|()| std::fs::rename(&tmp, path));
                if let Err(e) = write {
                    eprintln!("[pps-serve error] telemetry port file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &access_log {
            obs.log(Level::Info, || format!("access log: {path}"));
        }
    }

    // With PGO on, the handler feeds every request's profiles into the
    // aggregator and a background sweeper recompiles drifted units; with
    // it off the plain pipeline handler serves identically-shaped replies.
    let cache = if cache_cap > 0 {
        let cache = Arc::new(CompileCache::new(cache_cap));
        obs.log(Level::Info, || format!("reply cache: {} entries", cache.capacity()));
        Some(cache)
    } else {
        obs.log(Level::Info, || "reply cache: off".to_string());
        None
    };
    let (handler, runtime): (Box<dyn Handler>, Option<PgoRuntime>) = if pgo_enabled {
        let state = Arc::new(PgoState::new(pgo, obs.clone()));
        if let Some(cache) = &cache {
            state.attach_cache(Arc::clone(cache));
        }
        obs.log(Level::Info, || {
            let c = state.config();
            format!(
                "pgo: on (interval {:?}, enter {:.2}, exit {:.2}, budget {}/sweep, fault {:?})",
                c.interval, c.enter_threshold, c.exit_threshold, c.recompiles_per_sweep, c.fault
            )
        });
        let runtime = PgoRuntime::start(Arc::clone(&state));
        (Box::new(PgoHandler::new(state)), Some(runtime))
    } else {
        match &cache {
            Some(cache) => (Box::new(CachedPipelineHandler::new(Arc::clone(cache))), None),
            None => (Box::new(PipelineHandler), None),
        }
    };

    let stats = match serve_with_telemetry(
        listener,
        &config,
        handler.as_ref(),
        &obs,
        &shutdown,
        telemetry.as_deref(),
    ) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("[pps-serve error] serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The server has drained; stop the sweeper and wait out any in-flight
    // recompile so exit never races a swap.
    if let Some(runtime) = runtime {
        runtime.shutdown();
    }

    obs.log(Level::Info, || {
        format!(
            "drained: {} connections, {} requests ({} busy, {} frame errors)",
            stats.connections, stats.requests, stats.busy, stats.frame_errors
        )
    });
    if let Some(t) = &telemetry {
        obs.log(Level::Info, || {
            format!(
                "telemetry: {} access-log lines, {} traces sampled",
                t.access_log_lines(),
                t.traces_sampled()
            )
        });
    }
    if let Some(path) = &metrics_out {
        match obs.write_metrics(path) {
            Ok(_) => obs.log(Level::Info, || format!("metrics written to {path}")),
            Err(e) => {
                eprintln!("[pps-serve error] writing metrics to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
