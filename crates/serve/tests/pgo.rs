//! The continuous-PGO loop, end to end: aggregation from request traffic,
//! drift detection with hysteresis, fault-isolated background recompiles,
//! and atomic generation-stamped hot-swap — plus the invariant that the
//! profile sink never changes reply bytes.

use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::trace::TeeSink;
use pps_ir::ProcId;
use pps_obs::Obs;
use pps_profile::serialize::{edge_to_text, path_to_text};
use pps_profile::{
    EdgeProfile, EdgeProfiler, PathProfile, PathProfiler, DEFAULT_PATH_DEPTH,
};
use pps_serve::pgo::{PgoConfig, PgoFault, PgoHandler, PgoRuntime, PgoState, SweepReport};
use pps_serve::proto::{encode_response, ProfileText, Request, Response};
use pps_serve::server::{ServeConfig, ServerHandle};
use pps_serve::service::{execute, execute_with, ProfileSink};
use pps_serve::Client;
use pps_suite::{benchmark_by_name, Scale};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn train(bench: &str, scale: u32, depth: usize) -> (EdgeProfile, PathProfile) {
    let b = benchmark_by_name(bench, Scale(scale)).expect("bench");
    let mut tee = TeeSink::new(
        EdgeProfiler::new(&b.program),
        PathProfiler::new(&b.program, depth),
    );
    Interp::new(&b.program, ExecConfig::default())
        .run_traced(&b.train_args, &mut tee)
        .expect("train run");
    (tee.a.finish(), tee.b.finish())
}

/// Weight-inverts and boosts the path profile, the same shape the
/// loadgen's drift mode sends: the hot set becomes the cold set and the
/// inverted mass dominates any merged aggregate.
fn inverted(path: &PathProfile) -> PathProfile {
    let per_proc = (0..path.num_procs())
        .map(|pi| {
            let windows = path.iter_maximal_windows(ProcId::new(pi as u32));
            let max = windows.iter().map(|(_, c)| *c).max().unwrap_or(0);
            windows
                .into_iter()
                .map(|(w, c)| (w, (max + 1 - c).saturating_mul(100)))
                .collect()
        })
        .collect();
    PathProfile::from_windows(path.depth(), per_proc)
}

/// Test-speed knobs: every published sample counts, no cooldown.
fn fast_config() -> PgoConfig {
    PgoConfig {
        min_samples: 1,
        cooldown: Duration::ZERO,
        enter_threshold: 0.3,
        exit_threshold: 0.15,
        ..PgoConfig::default()
    }
}

/// Registers a unit compiled against the true profile, then shifts the
/// aggregate with an inverted publish — the canonical drift setup.
fn drifted_state(config: PgoConfig) -> (PgoState, EdgeProfile, PathProfile) {
    let state = PgoState::new(config, Obs::noop());
    let (edge, path) = train("wc", 1, DEFAULT_PATH_DEPTH);
    state.observe_unit("wc", 1, "P4", &path);
    state.publish("wc", 1, &edge, &path);
    state.publish("wc", 1, &edge, &inverted(&path));
    (state, edge, path)
}

#[test]
fn publish_folds_profiles_and_skips_unmergeable_ones() {
    let state = PgoState::new(fast_config(), Obs::noop());
    let (edge, path) = train("wc", 1, DEFAULT_PATH_DEPTH);
    state.publish("wc", 1, &edge, &path);
    state.publish("wc", 1, &edge, &path);
    assert_eq!(state.aggregate_stats("wc"), Some((2, 2)));

    // A different collection depth is unmergeable: skipped, not poisoned.
    let (_, shallow) = train("wc", 1, 4);
    state.publish("wc", 1, &edge, &shallow);
    assert_eq!(state.aggregate_stats("wc"), Some((2, 2)));
}

#[test]
fn sweep_detects_drift_recompiles_and_hot_swaps() {
    let state = PgoState::new(fast_config(), Obs::noop());
    let (edge, path) = train("wc", 1, DEFAULT_PATH_DEPTH);

    // Nothing registered, nothing aggregated: a sweep is a no-op.
    assert_eq!(state.sweep(), SweepReport::default());

    state.observe_unit("wc", 1, "P4", &path);
    assert_eq!(state.unit_generation("wc", 1, "P4"), Some(1));
    // Duplicate observations don't reset the serving unit.
    state.observe_unit("wc", 1, "P4", &path);
    assert_eq!(state.unit_generation("wc", 1, "P4"), Some(1));

    // Aggregate matches the compiled-against profile: no drift, no churn.
    state.publish("wc", 1, &edge, &path);
    let steady = state.sweep();
    assert_eq!(steady.evaluated, 1);
    assert_eq!(steady.drifted, 0);
    assert_eq!(steady.recompiles, 0);

    // The hot set flips: the sweep must recompile and swap atomically.
    state.publish("wc", 1, &edge, &inverted(&path));
    let drifted = state.sweep();
    assert_eq!(drifted.recompiles, 1, "{drifted:?}");
    assert_eq!(drifted.swaps, 1, "{drifted:?}");
    assert_eq!(drifted.rollbacks, 0, "{drifted:?}");

    let (generation, unit) = state.unit("wc", 1, "P4").expect("unit tracked");
    assert_eq!(generation, 2, "swap bumps the generation");
    assert!(unit.report.starts_with("pps-compile-report v1\n"), "{}", unit.report);
    let (_, epoch) = state.aggregate_stats("wc").unwrap();
    assert_eq!(unit.epoch, epoch, "new unit serves the aggregate epoch");

    // The swapped unit now matches the aggregate: hysteresis exits and the
    // loop goes quiet — no recompile storm.
    let settled = state.sweep();
    assert_eq!(settled.drifted, 0, "{settled:?}");
    assert_eq!(settled.recompiles, 0, "{settled:?}");
    assert_eq!(state.unit_generation("wc", 1, "P4"), Some(2));
}

#[test]
fn injected_panic_is_contained_and_rolls_back() {
    let config = PgoConfig { fault: PgoFault::Panic, ..fast_config() };
    let (state, _, path) = drifted_state(config);
    let report = state.sweep();
    assert_eq!(report.recompiles, 1, "{report:?}");
    assert_eq!(report.swaps, 0, "{report:?}");
    assert_eq!(report.rollbacks, 1, "{report:?}");

    // The serving unit is untouched — same generation, same reference.
    let (generation, unit) = state.unit("wc", 1, "P4").unwrap();
    assert_eq!(generation, 1);
    assert_eq!(unit.epoch, 0);
    assert_eq!(path_to_text(&unit.path), path_to_text(&path));

    let health = state.fill_health(Default::default());
    assert_eq!(health.rollbacks, 1);
    assert_eq!(health.swaps, 0);
    assert_eq!(health.in_flight_recompiles, 0, "containment leaves no zombie recompile");
}

#[test]
fn injected_corruption_is_rejected_by_the_strict_guard() {
    let config = PgoConfig { fault: PgoFault::Corrupt, ..fast_config() };
    let (state, _, _) = drifted_state(config);
    let report = state.sweep();
    assert_eq!(report.recompiles, 1, "{report:?}");
    assert_eq!(report.swaps, 0, "corrupted unit must not swap in: {report:?}");
    assert_eq!(report.rollbacks, 1, "{report:?}");
    assert_eq!(state.unit_generation("wc", 1, "P4"), Some(1));
}

#[test]
fn churn_budget_and_cooldown_defer_recompiles() {
    // Budget zero: the drifted unit is detected but deferred.
    let (state, _, _) =
        drifted_state(PgoConfig { recompiles_per_sweep: 0, ..fast_config() });
    let report = state.sweep();
    assert_eq!(report.drifted, 1, "{report:?}");
    assert_eq!(report.deferred, 1, "{report:?}");
    assert_eq!(report.recompiles, 0, "{report:?}");

    // A failing recompile inside a long cooldown: the second sweep defers
    // instead of hammering the compiler.
    let (state, _, _) = drifted_state(PgoConfig {
        cooldown: Duration::from_secs(3600),
        fault: PgoFault::Panic,
        ..fast_config()
    });
    assert_eq!(state.sweep().rollbacks, 1);
    let second = state.sweep();
    assert_eq!(second.deferred, 1, "{second:?}");
    assert_eq!(second.recompiles, 0, "{second:?}");
}

#[test]
fn profile_sink_never_changes_reply_bytes() {
    let state = PgoState::new(fast_config(), Obs::noop());
    let requests = [
        Request::Profile { bench: "wc".into(), scale: 1, depth: 0 },
        Request::Compile { bench: "wc".into(), scale: 1, scheme: "P4".into(), profile: None },
        Request::RunCell { bench: "wc".into(), scale: 1, scheme: "P4".into(), strict: false },
    ];
    for request in &requests {
        let plain = encode_response(&execute(request, &Obs::noop()));
        let observed =
            encode_response(&execute_with(request, &Obs::noop(), Some(&state)));
        assert_eq!(plain, observed, "sink changed bytes of {request:?}");
    }
    // ... while actually having observed the traffic.
    let health = state.fill_health(Default::default());
    assert!(health.profiles_merged >= 3, "{health:?}");
    assert!(health.units >= 1, "{health:?}");
}

#[test]
fn daemon_serves_health_and_hot_swaps_under_drifting_traffic() {
    let state = Arc::new(PgoState::new(fast_config(), Obs::noop()));
    let config = ServeConfig { poll: Duration::from_millis(5), ..ServeConfig::default() };
    let server = ServerHandle::spawn(
        "127.0.0.1:0",
        config,
        Arc::new(PgoHandler::new(Arc::clone(&state))),
        Obs::noop(),
    )
    .expect("bind");
    let mut client =
        Client::connect(&server.addr().to_string(), Some(Duration::from_secs(120))).unwrap();

    // Health is enriched before any traffic: PGO on, nothing tracked.
    let Response::Pong { health } = client.request(Request::Ping).unwrap() else {
        panic!("expected Pong");
    };
    assert!(health.pgo_enabled);
    assert_eq!(health.units, 0);
    assert!(health.queue_capacity > 0);

    // Steady traffic: a compile against the true profile registers the
    // unit; replies stay byte-identical to the in-process pipeline.
    let (edge, path) = train("wc", 1, DEFAULT_PATH_DEPTH);
    let steady = Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        profile: Some(ProfileText { edge: edge_to_text(&edge), path: path_to_text(&path) }),
    };
    let reply = client.request(steady.clone()).unwrap();
    assert_eq!(
        encode_response(&reply),
        encode_response(&execute(&steady, &Obs::noop())),
        "daemon reply differs from in-process pipeline"
    );

    // Drifted traffic shifts the aggregate the same way loadgen --drift
    // does; the sweep then recompiles and swaps.
    let drifted = Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        profile: Some(ProfileText {
            edge: edge_to_text(&edge),
            path: path_to_text(&inverted(&path)),
        }),
    };
    let reply = client.request(drifted.clone()).unwrap();
    assert_eq!(
        encode_response(&reply),
        encode_response(&execute(&drifted, &Obs::noop()))
    );
    let report = state.sweep();
    assert_eq!(report.swaps, 1, "{report:?}");

    let Response::Pong { health } = client.request(Request::Ping).unwrap() else {
        panic!("expected Pong");
    };
    assert_eq!(health.units, 1);
    assert_eq!(health.swaps, 1);
    assert_eq!(health.rollbacks, 0);
    assert!(health.max_generation >= 2, "{health:?}");
    assert_eq!(health.in_flight_recompiles, 0);
    assert!(health.profiles_merged >= 2, "{health:?}");

    drop(client);
    server.shutdown();
    server.join().expect("clean drain");
}

#[test]
fn background_runtime_swaps_on_its_own_and_drains_cleanly() {
    let config = PgoConfig { interval: Duration::from_millis(10), ..fast_config() };
    let (state, _, _) = drifted_state(config);
    let state = Arc::new(state);
    let runtime = PgoRuntime::start(Arc::clone(&state));

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let health = state.fill_health(Default::default());
        if health.swaps >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "sweeper never swapped: {health:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    runtime.shutdown();

    let health = state.fill_health(Default::default());
    assert_eq!(health.in_flight_recompiles, 0, "drain left a recompile in flight");
    assert_eq!(health.rollbacks, 0, "{health:?}");
    assert!(health.max_generation >= 2, "{health:?}");
}
