//! Adversarial-input tests: whatever bytes arrive, the daemon must answer
//! with a structured error or close the connection cleanly — never panic,
//! never hang — and keep serving well-formed peers afterwards.

use pps_obs::Obs;
use pps_serve::frame::{self, HEADER_LEN, MAX_PAYLOAD, VERSION};
use pps_serve::proto::{
    decode_response, encode_request, Envelope, ErrorKind, Request, Response,
};
use pps_serve::server::{Handler, ServeConfig, ServerHandle};
use pps_serve::Client;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Replies instantly without touching the pipeline; optionally blocks
/// until released (for backpressure/deadline tests) and counts calls.
#[derive(Default)]
struct MockHandler {
    calls: AtomicUsize,
    gate: Option<(Mutex<bool>, Condvar)>,
}

impl MockHandler {
    fn gated() -> Self {
        MockHandler { calls: AtomicUsize::new(0), gate: Some((Mutex::new(false), Condvar::new())) }
    }

    fn release(&self) {
        if let Some((lock, cv)) = &self.gate {
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
    }
}

impl Handler for MockHandler {
    fn handle(&self, request: &Request, _obs: &Obs) -> Response {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if let Some((lock, cv)) = &self.gate {
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        Response::Compile { report: format!("mock reply to {}", request.kind_name()) }
    }
}

/// Small timeouts so a regression fails fast instead of pinning CI.
fn test_config() -> ServeConfig {
    ServeConfig {
        poll: Duration::from_millis(5),
        frame_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

fn spawn(handler: Arc<dyn Handler>, config: ServeConfig) -> ServerHandle {
    ServerHandle::spawn("127.0.0.1:0", config, handler, Obs::noop()).expect("bind")
}

/// Sends raw bytes, half-closes, and drains whatever comes back. Panics on
/// a read timeout — that is the "daemon hung on garbage" failure mode.
fn send_raw(addr: &std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).expect("send");
    stream.shutdown(Shutdown::Write).ok();
    let mut reply = Vec::new();
    match stream.read_to_end(&mut reply) {
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
            ) => {}
        Err(e) => panic!("daemon hung or errored on garbage: {e}"),
    }
    reply
}

/// A reply, if present, must be exactly one structured-error frame.
fn assert_clean_rejection(reply: &[u8], what: &str) {
    if reply.is_empty() {
        return; // clean close without a reply is acceptable
    }
    let payload = frame::read_frame(&mut &reply[..])
        .unwrap_or_else(|e| panic!("{what}: reply not a valid frame: {e}"));
    match decode_response(&payload) {
        Ok(Response::Error { .. }) => {}
        Ok(other) => panic!("{what}: expected an error reply, got {}", other.outcome_name()),
        Err(e) => panic!("{what}: reply payload did not decode: {e}"),
    }
}

fn good_ping_frame() -> Vec<u8> {
    frame::encode_frame(&encode_request(&Envelope::new(Request::Ping)))
}

#[test]
fn malformed_headers_get_one_bad_frame_reply_then_close() {
    let server = spawn(Arc::new(MockHandler::default()), test_config());
    let addr = server.addr();
    let good = good_ping_frame();

    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"JUNK");
    let mut bad_version = good.clone();
    bad_version[4] = VERSION + 1;
    let mut bad_reserved = good.clone();
    bad_reserved[5] = 0xff;
    let mut oversized = good.clone();
    oversized[6..10].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_be_bytes());
    let mut bad_checksum = good.clone();
    let last = bad_checksum.len() - 1;
    bad_checksum[last] ^= 0x5a;

    for (name, bytes) in [
        ("bad magic", bad_magic),
        ("bad version", bad_version),
        ("bad reserved", bad_reserved),
        ("oversized length", oversized),
        ("checksum mismatch", bad_checksum),
    ] {
        let reply = send_raw(&addr, &bytes);
        assert!(!reply.is_empty(), "{name}: want a structured BadFrame reply");
        let payload = frame::read_frame(&mut &reply[..]).expect(name);
        let resp = decode_response(&payload).expect(name);
        assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadFrame, .. }),
            "{name}: got {resp:?}"
        );
    }

    // The daemon is still healthy.
    let mut client = Client::connect(&addr.to_string(), Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(client.request(Request::Ping), Ok(Response::Pong { .. })));
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn truncated_frames_and_mid_request_disconnects_never_hang() {
    let server = spawn(Arc::new(MockHandler::default()), test_config());
    let addr = server.addr();
    let good = good_ping_frame();

    // Cut the stream at every prefix of a valid frame: header fragments,
    // full header with missing payload, and the degenerate empty send.
    for cut in 0..good.len() {
        let reply = send_raw(&addr, &good[..cut]);
        assert_clean_rejection(&reply, &format!("truncated at {cut}"));
    }

    // Disconnect right after a complete request, before reading the reply:
    // the worker's reply channel dies mid-request and the server must shrug.
    let compile = frame::encode_frame(&encode_request(&Envelope::new(Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        profile: None,
    })));
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&compile).unwrap();
        drop(stream);
    }

    // Still serving.
    let mut client = Client::connect(&addr.to_string(), Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(client.request(Request::Ping), Ok(Response::Pong { .. })));
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn malformed_payload_keeps_the_connection_alive() {
    let server = spawn(Arc::new(MockHandler::default()), test_config());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr, Some(Duration::from_secs(10))).unwrap();

    // A perfectly framed payload full of garbage: frame boundaries held, so
    // the server answers BadRequest and the same connection keeps working.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    frame::write_frame(&mut stream, b"\xff\xffnot a request").unwrap();
    let payload = frame::read_frame(&mut stream).expect("structured reply");
    let resp = decode_response(&payload).expect("decodes");
    assert!(matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }), "got {resp:?}");
    frame::write_frame(&mut stream, &encode_request(&Envelope::new(Request::Ping))).unwrap();
    let payload = frame::read_frame(&mut stream).expect("conn survived");
    assert!(matches!(decode_response(&payload), Ok(Response::Pong { .. })));

    assert!(matches!(client.request(Request::Ping), Ok(Response::Pong { .. })));
    server.shutdown();
    server.join().unwrap();
}

/// xorshift64* — deterministic corruption, independent of any RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn seeded_corruption_sweep_never_panics_or_hangs() {
    let handler = Arc::new(MockHandler::default());
    let server = spawn(handler, test_config());
    let addr = server.addr();
    let good = frame::encode_frame(&encode_request(&Envelope::new(Request::Profile {
        bench: "wc".into(),
        scale: 1,
        depth: 0,
    })));

    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for case in 0..48 {
        let mut bytes = good.clone();
        match case % 3 {
            // Flip 1–4 bytes anywhere in the frame.
            0 => {
                for _ in 0..=(rng.next() % 4) {
                    let i = (rng.next() as usize) % bytes.len();
                    bytes[i] ^= (rng.next() % 255 + 1) as u8;
                }
            }
            // Truncate to a random prefix.
            1 => bytes.truncate((rng.next() as usize) % bytes.len()),
            // Flip a byte AND truncate — corrupt and short.
            _ => {
                let i = (rng.next() as usize) % bytes.len();
                bytes[i] ^= 0x80;
                let keep = HEADER_LEN.min(bytes.len());
                bytes.truncate(keep + (rng.next() as usize) % (bytes.len() - keep + 1));
            }
        }
        // Corruption may happen to leave a valid frame (payload flips keep
        // the checksum only if unchanged); any reply that decodes is fine —
        // the test is that nothing panics or hangs.
        let reply = send_raw(&addr, &bytes);
        if !reply.is_empty() {
            if let Ok(payload) = frame::read_frame(&mut &reply[..]) {
                decode_response(&payload)
                    .unwrap_or_else(|e| panic!("case {case}: undecodable reply: {e}"));
            }
        }
    }

    let mut client = Client::connect(&addr.to_string(), Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(client.request(Request::Ping), Ok(Response::Pong { .. })));
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn full_queue_rejects_with_busy_and_drains_on_shutdown() {
    let handler = Arc::new(MockHandler::gated());
    let config = ServeConfig { workers: 1, queue_capacity: 1, ..test_config() };
    let server = spawn(Arc::clone(&handler) as Arc<dyn Handler>, config);
    let addr = server.addr().to_string();

    let req = Request::Compile { bench: "wc".into(), scale: 1, scheme: "BB".into(), profile: None };

    // One request occupies the single (gated) worker; wait until it is
    // actually being handled, so the queue is observably empty.
    let blocker = {
        let addr = addr.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Some(Duration::from_secs(30))).unwrap();
            c.request(req).unwrap()
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handler.calls.load(Ordering::SeqCst) < 1 {
        assert!(std::time::Instant::now() < deadline, "worker never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Probe with a short reply timeout. The first probe gets queued (its
    // reply blocks behind the gate, so the client times out) — the queue
    // is now full, and a subsequent probe must bounce with Busy.
    let mut saw_busy = false;
    let mut queued: Vec<Client> = Vec::new();
    for _ in 0..200 {
        let mut c = Client::connect(&addr, Some(Duration::from_millis(250))).unwrap();
        match c.request(req.clone()) {
            Ok(Response::Busy) => {
                saw_busy = true;
                break;
            }
            // Timed out: this probe occupies the queue slot; keep the
            // connection alive so the slot stays taken.
            Err(_) => queued.push(c),
            Ok(other) => panic!("unexpected reply {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_busy, "a full queue never answered Busy");

    // Graceful drain: release the gate, request shutdown; the in-flight
    // request must still complete (accepted work is never dropped).
    server.shutdown();
    handler.release();
    let resp = blocker.join().expect("blocker panicked");
    assert!(matches!(resp, Response::Compile { .. }), "dropped during drain: {resp:?}");
    drop(queued);
    let stats = server.join().unwrap();
    assert!(stats.busy >= 1, "busy count not recorded: {stats:?}");
    assert!(stats.requests >= 3);
}

#[test]
fn queue_wait_deadlines_are_enforced() {
    let handler = Arc::new(MockHandler::gated());
    let config = ServeConfig { workers: 1, queue_capacity: 4, ..test_config() };
    let server = spawn(Arc::clone(&handler) as Arc<dyn Handler>, config);
    let addr = server.addr().to_string();

    let req = Request::Compile { bench: "wc".into(), scale: 1, scheme: "BB".into(), profile: None };

    // Occupy the worker.
    let blocker = {
        let addr = addr.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Some(Duration::from_secs(30))).unwrap();
            c.request(req).unwrap()
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handler.calls.load(Ordering::SeqCst) < 1 {
        assert!(std::time::Instant::now() < deadline, "worker never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Queue a request with a 1ms deadline, let it soak, then release: the
    // worker must answer DeadlineExceeded without running the handler.
    let impatient = {
        let addr = addr.clone();
        let req = req.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Some(Duration::from_secs(30))).unwrap();
            c.call(&Envelope { deadline_ms: 1, request: req }).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let calls_before = handler.calls.load(Ordering::SeqCst);
    handler.release();
    let resp = impatient.join().expect("impatient waiter panicked");
    assert!(
        matches!(resp, Response::Error { kind: ErrorKind::DeadlineExceeded, .. }),
        "got {resp:?}"
    );
    assert_eq!(calls_before, 1, "expired request must not reach the handler");
    assert!(matches!(blocker.join().unwrap(), Response::Compile { .. }));
    server.shutdown();
    server.join().unwrap();
}
