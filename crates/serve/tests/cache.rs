//! The content-addressed reply cache, end to end: repeated requests served
//! from cache byte-identically, PGO hot-swaps invalidating exactly the
//! swapped unit's group, and the daemon reporting cache counters in Pong.

use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::trace::TeeSink;
use pps_ir::ProcId;
use pps_obs::Obs;
use pps_profile::serialize::{edge_to_text, path_to_text};
use pps_profile::{EdgeProfile, EdgeProfiler, PathProfile, PathProfiler, DEFAULT_PATH_DEPTH};
use pps_serve::cache::CompileCache;
use pps_serve::pgo::{PgoConfig, PgoState};
use pps_serve::proto::{encode_response, ProfileText, Request, Response};
use pps_serve::server::{ServeConfig, ServerHandle};
use pps_serve::service::{execute, execute_cached, CachedPipelineHandler, ProfileSink};
use pps_serve::Client;
use pps_suite::{benchmark_by_name, Scale};
use std::sync::Arc;
use std::time::Duration;

fn train(bench: &str, scale: u32, depth: usize) -> (EdgeProfile, PathProfile) {
    let b = benchmark_by_name(bench, Scale(scale)).expect("bench");
    let mut tee = TeeSink::new(
        EdgeProfiler::new(&b.program),
        PathProfiler::new(&b.program, depth),
    );
    Interp::new(&b.program, ExecConfig::default())
        .run_traced(&b.train_args, &mut tee)
        .expect("train run");
    (tee.a.finish(), tee.b.finish())
}

/// Weight-inverts and boosts the path profile so the merged aggregate
/// drifts decisively away from the compiled-against profile.
fn inverted(path: &PathProfile) -> PathProfile {
    let per_proc = (0..path.num_procs())
        .map(|pi| {
            let windows = path.iter_maximal_windows(ProcId::new(pi as u32));
            let max = windows.iter().map(|(_, c)| *c).max().unwrap_or(0);
            windows
                .into_iter()
                .map(|(w, c)| (w, (max + 1 - c).saturating_mul(100)))
                .collect()
        })
        .collect();
    PathProfile::from_windows(path.depth(), per_proc)
}

fn fast_config() -> PgoConfig {
    PgoConfig {
        min_samples: 1,
        cooldown: Duration::ZERO,
        enter_threshold: 0.3,
        exit_threshold: 0.15,
        ..PgoConfig::default()
    }
}

#[test]
fn repeated_requests_hit_the_cache_byte_identically() {
    let cache = CompileCache::new(8);
    let obs = Obs::noop();
    let requests = [
        Request::Compile { bench: "wc".into(), scale: 1, scheme: "P4".into(), profile: None },
        Request::RunCell { bench: "wc".into(), scale: 1, scheme: "M4".into(), strict: true },
    ];
    for request in &requests {
        let plain = encode_response(&execute(request, &obs));
        let first = encode_response(&execute_cached(request, &obs, None, Some(&cache)));
        let second = encode_response(&execute_cached(request, &obs, None, Some(&cache)));
        assert_eq!(plain, first, "cold reply differs from uncached execute: {request:?}");
        assert_eq!(plain, second, "cache hit changed reply bytes: {request:?}");
    }
    let (hits, misses, evictions, invalidations, entries) = cache.stats();
    assert_eq!((hits, misses), (2, 2), "one miss then one hit per request");
    assert_eq!((evictions, invalidations), (0, 0));
    assert_eq!(entries, 2);
}

#[test]
fn strictness_is_part_of_runcell_identity_and_errors_are_never_cached() {
    let cache = CompileCache::new(8);
    let obs = Obs::noop();
    let strict = Request::RunCell { bench: "wc".into(), scale: 1, scheme: "P4".into(), strict: true };
    let lax = Request::RunCell { bench: "wc".into(), scale: 1, scheme: "P4".into(), strict: false };
    execute_cached(&strict, &obs, None, Some(&cache));
    execute_cached(&lax, &obs, None, Some(&cache));
    let (hits, misses, _, _, entries) = cache.stats();
    assert_eq!(hits, 0, "strict and lax cells must not collide");
    assert_eq!(misses, 2);
    assert_eq!(entries, 2);

    // An error reply (unknown bench) must not enter the cache.
    let bad = Request::Compile { bench: "nope".into(), scale: 1, scheme: "P4".into(), profile: None };
    let reply = execute_cached(&bad, &obs, None, Some(&cache));
    assert!(matches!(reply, Response::Error { .. }));
    let (_, _, _, _, entries_after) = cache.stats();
    assert_eq!(entries_after, entries, "error replies are never cached");
}

#[test]
fn hot_swap_invalidates_the_swapped_groups_cache_entries() {
    let cache = Arc::new(CompileCache::new(16));
    let state = PgoState::new(fast_config(), Obs::noop());
    state.attach_cache(Arc::clone(&cache));
    let obs = Obs::noop();

    let (edge, path) = train("wc", 1, DEFAULT_PATH_DEPTH);
    let steady = Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        profile: Some(ProfileText { edge: edge_to_text(&edge), path: path_to_text(&path) }),
    };
    // Another group (different scheme) that must survive the invalidation.
    // Executed sink-less so the PGO tier never tracks it: only the P4 unit
    // can drift and swap.
    let other = Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "M4".into(),
        profile: Some(ProfileText { edge: edge_to_text(&edge), path: path_to_text(&path) }),
    };

    // Warm the cache and register the unit; a repeat is a hit.
    let first = execute_cached(&steady, &obs, Some(&state), Some(&cache));
    let again = execute_cached(&steady, &obs, Some(&state), Some(&cache));
    assert_eq!(encode_response(&first), encode_response(&again));
    execute_cached(&other, &obs, None, Some(&cache));
    let (hits, _, _, invalidations, entries) = cache.stats();
    assert_eq!(hits, 1);
    assert_eq!(invalidations, 0);
    assert_eq!(entries, 2);

    // Drift the aggregate; the sweep recompiles and hot-swaps P4.
    state.publish("wc", 1, &edge, &inverted(&path));
    let report = state.sweep();
    assert_eq!(report.swaps, 1, "{report:?}");

    // The swap dropped exactly the P4 group: the steady request misses and
    // recomputes the same bytes; the M4 entry still hits.
    let (h0, m0, _, inv0, _) = cache.stats();
    assert!(inv0 >= 1, "swap must invalidate the group");
    let after = execute_cached(&steady, &obs, Some(&state), Some(&cache));
    assert_eq!(
        encode_response(&first),
        encode_response(&after),
        "post-swap recompute must stay byte-identical (pure function of the key)"
    );
    let (h1, m1, ..) = cache.stats();
    assert_eq!(h1, h0, "stale P4 entry must not serve a hit after the swap");
    assert_eq!(m1, m0 + 1);
    let other_again = execute_cached(&other, &obs, Some(&state), Some(&cache));
    assert!(matches!(other_again, Response::Compile { .. }));
    let (h2, ..) = cache.stats();
    assert_eq!(h2, h1 + 1, "the M4 group must survive the P4 invalidation");

    // Health carries the cache counters through the PGO fill.
    let health = state.fill_health(Default::default());
    assert_eq!(health.cache_hits, h2);
    assert!(health.cache_invalidations >= 1);
}

#[test]
fn daemon_reports_cache_counters_in_pong() {
    let cache = Arc::new(CompileCache::new(8));
    let config = ServeConfig { poll: Duration::from_millis(5), ..ServeConfig::default() };
    let server = ServerHandle::spawn(
        "127.0.0.1:0",
        config,
        Arc::new(CachedPipelineHandler::new(Arc::clone(&cache))),
        Obs::noop(),
    )
    .expect("bind");
    let mut client =
        Client::connect(&server.addr().to_string(), Some(Duration::from_secs(120))).unwrap();

    let request = Request::Compile {
        bench: "wc".into(),
        scale: 1,
        scheme: "P4".into(),
        profile: None,
    };
    let first = client.request(request.clone()).unwrap();
    let second = client.request(request.clone()).unwrap();
    assert_eq!(
        encode_response(&first),
        encode_response(&second),
        "cached daemon reply differs from cold reply"
    );
    assert_eq!(
        encode_response(&first),
        encode_response(&execute(&request, &Obs::noop())),
        "daemon reply differs from in-process pipeline"
    );

    let Response::Pong { health } = client.request(Request::Ping).unwrap() else {
        panic!("expected Pong");
    };
    assert_eq!(health.cache_hits, 1, "{health:?}");
    assert_eq!(health.cache_misses, 1, "{health:?}");
    assert_eq!(health.cache_entries, 1, "{health:?}");

    drop(client);
    server.shutdown();
    server.join().expect("clean drain");
}
