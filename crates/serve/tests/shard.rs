//! The shard router, end to end: a 2-daemon cluster behind `pps-shard`
//! must answer byte-identically to a single daemon and to in-process
//! execution, concentrate repeats on the owning shard's cache, fan in
//! health on Ping, and pass structured errors through unchanged.

use pps_obs::Obs;
use pps_serve::cache::CompileCache;
use pps_serve::proto::{encode_response, Request, Response};
use pps_serve::server::{ServeConfig, ServerHandle};
use pps_serve::service::{execute, CachedPipelineHandler};
use pps_serve::shard::{Router, RouterConfig, RouterHandle, ShardRing, DEFAULT_VNODES};
use pps_serve::Client;
use std::sync::Arc;
use std::time::Duration;

fn spawn_daemon() -> (ServerHandle, Arc<CompileCache>) {
    let cache = Arc::new(CompileCache::new(32));
    let config = ServeConfig { poll: Duration::from_millis(5), ..ServeConfig::default() };
    let server = ServerHandle::spawn(
        "127.0.0.1:0",
        config,
        Arc::new(CachedPipelineHandler::new(Arc::clone(&cache))),
        Obs::noop(),
    )
    .expect("bind daemon");
    (server, cache)
}

#[test]
fn cluster_is_byte_identical_and_fans_in_health() {
    let (s1, c1) = spawn_daemon();
    let (s2, c2) = spawn_daemon();
    let ring = ShardRing::new(
        vec![s1.addr().to_string(), s2.addr().to_string()],
        DEFAULT_VNODES,
    );
    let router = RouterHandle::spawn(
        "127.0.0.1:0",
        Router::new(ring, RouterConfig::default()),
        Obs::noop(),
    )
    .expect("bind router");
    let mut client =
        Client::connect(&router.addr().to_string(), Some(Duration::from_secs(120))).unwrap();

    let compile = |bench: &str, scheme: &str| Request::Compile {
        bench: bench.into(),
        scale: 1,
        scheme: scheme.into(),
        profile: None,
    };
    let requests = [
        compile("alt", "BB"),
        compile("alt", "P4"),
        compile("ph", "BB"),
        compile("ph", "P4"),
        compile("corr", "P4"),
        compile("wc", "P4"),
        Request::RunCell { bench: "wc".into(), scale: 1, scheme: "M4".into(), strict: true },
        Request::Profile { bench: "alt".into(), scale: 1, depth: 0 },
    ];
    let cacheable = 7; // all but the Profile request

    // Two passes: the first populates the shard caches, the second must be
    // served from them — byte-identically either way.
    for pass in 0..2 {
        for request in &requests {
            let reply = client.request(request.clone()).unwrap();
            assert_eq!(
                encode_response(&reply),
                encode_response(&execute(request, &Obs::noop())),
                "pass {pass}: cluster reply differs from in-process execute: {request:?}"
            );
        }
    }

    let routed = router.router().routed();
    assert_eq!(routed, requests.len() as u64 * 2, "every work request is relayed");
    let per_shard = router.router().per_shard_routed();
    assert_eq!(per_shard.iter().sum::<u64>(), routed);
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "both shards must own some of these artifacts: {per_shard:?}"
    );

    // Repeats hit the owning shard's cache: summed across the cluster, the
    // second pass is all hits.
    let hits: u64 = [&c1, &c2].iter().map(|c| c.stats().0).sum();
    let misses: u64 = [&c1, &c2].iter().map(|c| c.stats().1).sum();
    assert_eq!(hits, cacheable, "second pass must be served from cache");
    assert_eq!(misses, cacheable, "first pass misses once per artifact");

    // Ping fans in: both shards' counters summed, router's own fields set.
    let Response::Pong { health } = client.request(Request::Ping).unwrap() else {
        panic!("expected Pong");
    };
    assert_eq!(health.shards, 2, "{health:?}");
    assert_eq!(health.routed, routed, "{health:?}");
    assert_eq!(health.cache_hits, hits, "{health:?}");
    assert_eq!(health.cache_misses, misses, "{health:?}");
    assert_eq!(health.requests, routed, "shard request counters sum: {health:?}");
    assert!(health.workers > 0 && health.queue_capacity > 0, "{health:?}");

    // Structured errors pass through byte-identically too.
    let bad = Request::Compile { bench: "nope".into(), scale: 1, scheme: "P4".into(), profile: None };
    let reply = client.request(bad.clone()).unwrap();
    assert_eq!(
        encode_response(&reply),
        encode_response(&execute(&bad, &Obs::noop())),
        "error replies must pass through unchanged"
    );

    // One in-band Shutdown quiesces the whole cluster: both daemons and
    // the router drain.
    let reply = client.request(Request::Shutdown).unwrap();
    assert!(matches!(reply, Response::ShuttingDown));
    drop(client);
    s1.join().expect("shard 1 drains");
    s2.join().expect("shard 2 drains");
    router.join().expect("router drains");
}

#[test]
fn unreachable_shard_is_a_structured_error_not_a_hang() {
    // A ring whose single shard is a bound-then-dropped port: connecting
    // fails fast, and the router must answer with a structured error.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = dead.local_addr().unwrap().to_string();
    drop(dead);
    let router = RouterHandle::spawn(
        "127.0.0.1:0",
        Router::new(
            ShardRing::new(vec![dead_addr], DEFAULT_VNODES),
            RouterConfig { reply_timeout: Some(Duration::from_secs(2)), ..RouterConfig::default() },
        ),
        Obs::noop(),
    )
    .expect("bind router");
    let mut client =
        Client::connect(&router.addr().to_string(), Some(Duration::from_secs(30))).unwrap();
    let reply = client
        .request(Request::Compile {
            bench: "wc".into(),
            scale: 1,
            scheme: "P4".into(),
            profile: None,
        })
        .unwrap();
    match reply {
        Response::Error { message, .. } => {
            assert!(message.contains("unavailable"), "{message}");
        }
        other => panic!("expected a structured error, got {other:?}"),
    }
    router.shutdown();
    router.join().expect("router drains");
}
