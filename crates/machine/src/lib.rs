#![warn(missing_docs)]

//! The experimental VLIW machine model (paper §3.2).
//!
//! The paper evaluates on "a very powerful machine VLIW model based on the
//! Digital Alpha ISA": 8 functional units, each able to execute any
//! instruction in a single cycle, at most one control instruction per cycle,
//! 128 integer registers, and a 32KB direct-mapped instruction cache with
//! 32-byte lines and a 6-cycle miss penalty (data-cache effects ignored).
//!
//! [`MachineConfig`] captures those parameters; [`LatencyModel::Realistic`]
//! provides the paper's "more realistic instruction latencies" variant used
//! as an ablation (the paper reports the benefit of path profiles *grows*
//! under realistic latencies).

use pps_ir::{Instr, Terminator};

/// Classification of instructions for issue restrictions and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// ALU operation, move, or no-op.
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer: branch, jump, switch, return, or call.
    Control,
    /// Observable output (modelled as a store-class operation).
    Out,
}

impl OpClass {
    /// Classifies a straight-line instruction.
    pub fn of_instr(instr: &Instr) -> OpClass {
        match instr {
            Instr::Alu { .. } | Instr::Mov { .. } | Instr::Nop => OpClass::Alu,
            Instr::Load { .. } => OpClass::Load,
            Instr::Store { .. } => OpClass::Store,
            Instr::Call { .. } => OpClass::Control,
            Instr::Out { .. } => OpClass::Out,
        }
    }

    /// Classifies a terminator (always [`OpClass::Control`]).
    pub fn of_term(_term: &Terminator) -> OpClass {
        OpClass::Control
    }

    /// True for operations subject to the one-control-op-per-cycle limit.
    pub fn is_control(self) -> bool {
        self == OpClass::Control
    }
}

/// Instruction latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// Every instruction completes in a single cycle (the paper's primary
    /// machine model).
    #[default]
    Unit,
    /// The "more realistic" variant: loads 3 cycles, multiplies 3, divides
    /// 8, everything else 1.
    Realistic,
}

impl LatencyModel {
    /// Result latency in cycles of `instr` under this model.
    pub fn latency(self, instr: &Instr) -> u32 {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Realistic => match instr {
                Instr::Load { .. } => 3,
                Instr::Alu { op, .. } => match op {
                    pps_ir::AluOp::Mul => 3,
                    pps_ir::AluOp::Div | pps_ir::AluOp::Rem => 8,
                    _ => 1,
                },
                _ => 1,
            },
        }
    }
}

/// Instruction-cache geometry and penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Added cycles per miss.
    pub miss_penalty: u64,
    /// Bytes per instruction (fixed-width encoding).
    pub instr_bytes: usize,
}

impl Default for ICacheConfig {
    /// The paper's cache: 32KB direct-mapped, 32-byte lines, 6-cycle miss
    /// penalty, 4-byte instructions.
    fn default() -> Self {
        ICacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            miss_penalty: 6,
            instr_bytes: 4,
        }
    }
}

impl ICacheConfig {
    /// Number of lines in the cache.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Line index of a byte address.
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes as u64
    }

    /// Direct-mapped slot of a line.
    pub fn slot_of_line(&self, line: u64) -> usize {
        (line % self.num_lines() as u64) as usize
    }
}

/// The complete machine description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Total issue slots per cycle (the paper's 8 universal units).
    pub issue_width: usize,
    /// Maximum control operations per cycle (the paper allows 1).
    pub control_per_cycle: usize,
    /// Integer register file size (the paper's 128).
    pub num_registers: u32,
    /// Latency model.
    pub latency: LatencyModel,
    /// Instruction-cache configuration.
    pub icache: ICacheConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            issue_width: 8,
            control_per_cycle: 1,
            num_registers: 128,
            latency: LatencyModel::Unit,
            icache: ICacheConfig::default(),
        }
    }
}

impl MachineConfig {
    /// The paper's machine, 8-wide with unit latencies.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The realistic-latency ablation machine.
    pub fn realistic() -> Self {
        MachineConfig { latency: LatencyModel::Realistic, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::{AluOp, Operand, Reg};

    #[test]
    fn default_matches_paper() {
        let m = MachineConfig::paper();
        assert_eq!(m.issue_width, 8);
        assert_eq!(m.control_per_cycle, 1);
        assert_eq!(m.num_registers, 128);
        assert_eq!(m.latency, LatencyModel::Unit);
        assert_eq!(m.icache.size_bytes, 32 * 1024);
        assert_eq!(m.icache.line_bytes, 32);
        assert_eq!(m.icache.miss_penalty, 6);
        assert_eq!(m.icache.num_lines(), 1024);
    }

    #[test]
    fn op_classification() {
        let r = Reg::new(0);
        assert_eq!(
            OpClass::of_instr(&Instr::Mov { dst: r, src: Operand::Imm(0) }),
            OpClass::Alu
        );
        assert_eq!(
            OpClass::of_instr(&Instr::Load { dst: r, base: r, offset: 0, speculative: false }),
            OpClass::Load
        );
        assert_eq!(
            OpClass::of_instr(&Instr::Store { src: Operand::Imm(0), base: r, offset: 0 }),
            OpClass::Store
        );
        assert!(OpClass::of_instr(&Instr::Call {
            callee: pps_ir::ProcId::new(0),
            args: vec![],
            dst: None
        })
        .is_control());
        assert!(OpClass::of_term(&Terminator::Return { value: None }).is_control());
    }

    #[test]
    fn latency_models() {
        let r = Reg::new(0);
        let load = Instr::Load { dst: r, base: r, offset: 0, speculative: false };
        let mul = Instr::Alu { op: AluOp::Mul, dst: r, lhs: Operand::Reg(r), rhs: Operand::Reg(r) };
        let div = Instr::Alu { op: AluOp::Div, dst: r, lhs: Operand::Reg(r), rhs: Operand::Reg(r) };
        let add = Instr::Alu { op: AluOp::Add, dst: r, lhs: Operand::Reg(r), rhs: Operand::Reg(r) };
        assert_eq!(LatencyModel::Unit.latency(&load), 1);
        assert_eq!(LatencyModel::Realistic.latency(&load), 3);
        assert_eq!(LatencyModel::Realistic.latency(&mul), 3);
        assert_eq!(LatencyModel::Realistic.latency(&div), 8);
        assert_eq!(LatencyModel::Realistic.latency(&add), 1);
    }

    #[test]
    fn icache_mapping() {
        let c = ICacheConfig::default();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(31), 0);
        assert_eq!(c.line_of(32), 1);
        // Two addresses 32KB apart collide in a direct-mapped cache.
        let a = 100u64;
        let b = a + 32 * 1024;
        assert_eq!(c.slot_of_line(c.line_of(a)), c.slot_of_line(c.line_of(b)));
        assert_ne!(c.line_of(a), c.line_of(b));
    }
}
