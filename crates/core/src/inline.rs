//! Guarded interprocedural inlining — phase one of the `Px4` scheme.
//!
//! [`inline_hot_calls`] selects the hottest call sites by edge profile and
//! splices the callee bodies in with [`pps_ir::inline::inline_call`],
//! caller by caller behind the same recovery discipline the scheduling
//! guard uses: per-caller snapshot, `catch_unwind` around the mutation,
//! structural verification of the whole program, a bounded differential
//! oracle against the pre-inline baseline, and rollback of exactly the
//! offending caller on any failure. Accepted callers stay inlined; a
//! rolled-back caller simply keeps its calls, so the subsequent path-based
//! formation degrades gracefully to intra-procedural behaviour there.
//!
//! Profiles trained on the original program do not describe the cloned
//! blocks, so `Px4` re-trains its edge/path pair *after* this phase — the
//! two-phase flow lives in the serve runner.

use pps_ir::inline::{call_sites, inline_call, REG_FILE_CAP};
use pps_ir::interp::{ExecConfig, Interp};
use pps_ir::verify::verify_program;
use pps_ir::{BlockId, ProcId, Program};
use pps_profile::EdgeProfile;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Site-selection and safety knobs for [`inline_hot_calls`].
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Callees with more static blocks than this are never inlined (code
    /// growth guard; the CFG-blowup knee is sharp for the switch-heavy
    /// benchmarks).
    pub max_callee_blocks: usize,
    /// Total inlined sites per program (hottest first).
    pub max_call_sites: usize,
    /// A site's block frequency must reach this fraction of the program's
    /// hottest block to qualify.
    pub min_site_fraction: f64,
    /// Inputs for the differential oracle (empty disables it; verification
    /// and panic recovery still apply).
    pub oracle_inputs: Vec<Vec<i64>>,
    /// Instruction budget per oracle run of the pre-inline baseline; the
    /// inlined program gets 8x slack (parameter moves replace call
    /// overhead, so dynamic counts move a little either way).
    pub step_budget: u64,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_blocks: 24,
            max_call_sites: 8,
            min_site_fraction: 0.05,
            oracle_inputs: Vec::new(),
            step_budget: 1_000_000,
        }
    }
}

/// One accepted inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlinedSite {
    /// The mutated caller.
    pub caller: ProcId,
    /// The callee whose body was spliced in.
    pub callee: ProcId,
    /// Caller block that contained the call.
    pub block: BlockId,
}

/// What [`inline_hot_calls`] did.
#[derive(Debug, Clone, Default)]
pub struct InlineOutcome {
    /// Accepted sites, in application order.
    pub inlined: Vec<InlinedSite>,
    /// Callers whose whole batch was rolled back by the guard.
    pub rolled_back: usize,
    /// Candidate sites skipped by policy (cold, too big, register
    /// pressure, self-call).
    pub skipped: usize,
}

/// Inlines the hottest eligible call sites of `program`, guarded.
///
/// Site selection is deterministic: candidates are ranked by profiled
/// block frequency (ties broken by caller/block/instruction position), the
/// top [`InlineConfig::max_call_sites`] survive, and each caller's sites
/// are applied in reverse positional order so earlier splices never shift
/// later sites. Every caller's batch is verified and oracle-checked before
/// being accepted; failures roll that caller back to its snapshot.
pub fn inline_hot_calls(
    program: &mut Program,
    edge: &EdgeProfile,
    config: &InlineConfig,
) -> InlineOutcome {
    let mut outcome = InlineOutcome::default();

    // Rank every call site in the program.
    let hottest = program
        .proc_ids()
        .flat_map(|pid| {
            (0..edge.num_blocks(pid)).map(move |b| (pid, BlockId::new(b as u32)))
        })
        .map(|(pid, b)| edge.block_freq(pid, b))
        .max()
        .unwrap_or(0);
    let threshold = (hottest as f64 * config.min_site_fraction).ceil() as u64;
    let mut candidates: Vec<(u64, ProcId, BlockId, usize, ProcId)> = Vec::new();
    for caller in program.proc_ids() {
        for (block, idx, callee) in call_sites(program.proc(caller)) {
            let freq = if block.index() < edge.num_blocks(caller) {
                edge.block_freq(caller, block)
            } else {
                0
            };
            let eligible = callee != caller
                && freq >= threshold.max(1)
                && program.proc(callee).blocks.len() <= config.max_callee_blocks;
            if eligible {
                candidates.push((freq, caller, block, idx, callee));
            } else {
                outcome.skipped += 1;
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.0.cmp(&a.0).then_with(|| (a.1, a.2, a.3).cmp(&(b.1, b.2, b.3)))
    });
    candidates.truncate(config.max_call_sites);

    // Group by caller, keeping sites in reverse positional order so each
    // splice leaves the remaining (earlier) sites' coordinates intact.
    let mut by_caller: BTreeMap<ProcId, Vec<(BlockId, usize, ProcId)>> = BTreeMap::new();
    for (_, caller, block, idx, callee) in candidates {
        by_caller.entry(caller).or_default().push((block, idx, callee));
    }

    // Oracle ground truth: the pre-inline program's bounded behaviour.
    let baseline_config = ExecConfig { max_instrs: config.step_budget, ..ExecConfig::default() };
    let baselines: Vec<_> = config
        .oracle_inputs
        .iter()
        .map(|args| Interp::new(program, baseline_config).run_bounded(args))
        .collect();
    let checked_config = ExecConfig {
        max_instrs: config.step_budget.saturating_mul(8),
        ..ExecConfig::default()
    };

    for (caller, mut sites) in by_caller {
        sites.sort_by_key(|s| std::cmp::Reverse((s.0, s.1)));
        let snapshot = program.proc(caller).clone();
        let mut applied = Vec::new();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            for &(block, idx, callee) in &sites {
                // Register pressure can only be judged against the live
                // caller: earlier splices into it already grew the file.
                if program.proc(caller).reg_count + program.proc(callee).reg_count > REG_FILE_CAP {
                    return Err(sites.len() - applied.len());
                }
                let callee_body = program.proc(callee).clone();
                match inline_call(program.proc_mut(caller), block, idx, &callee_body) {
                    Ok(()) => applied.push(InlinedSite { caller, callee, block }),
                    Err(_) => return Err(1),
                }
            }
            Ok(())
        }));

        let healthy = match attempt {
            Ok(Ok(())) => {
                verify_program(program).is_ok()
                    && baselines.iter().zip(&config.oracle_inputs).all(|(want, args)| {
                        let got = Interp::new(program, checked_config).run_bounded(args);
                        match (want, &got) {
                            (Ok(a), Ok(b)) => {
                                if a.completed && b.completed {
                                    a.result.output == b.result.output
                                        && a.result.return_value == b.result.return_value
                                } else {
                                    let n = a.result.output.len().min(b.result.output.len());
                                    a.result.output[..n] == b.result.output[..n]
                                }
                            }
                            (Err(_), Err(_)) => true,
                            _ => false,
                        }
                    })
            }
            Ok(Err(skipped)) => {
                // Policy skip mid-batch (register pressure): keep what
                // applied cleanly if it verifies, count the rest.
                outcome.skipped += skipped;
                verify_program(program).is_ok()
            }
            Err(_) => false,
        };

        if healthy {
            outcome.inlined.extend(applied);
        } else {
            *program.proc_mut(caller) = snapshot;
            outcome.rolled_back += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Reg};
    use pps_profile::EdgeProfiler;

    /// main loops `n` times calling a small leaf per iteration.
    fn call_loop() -> Program {
        let mut pb = ProgramBuilder::new();

        let mut f = pb.begin_proc("leaf", 1);
        let x = Reg::new(0);
        let y = f.reg();
        f.alu(AluOp::Mul, y, x, 3i64);
        f.ret(Some(Operand::Reg(y)));
        let leaf = f.finish();

        let mut f = pb.begin_proc("main", 1);
        let n = Reg::new(0);
        let i = f.reg();
        let acc = f.reg();
        let t = f.reg();
        let c = f.reg();
        f.mov(i, 0i64);
        f.mov(acc, 0i64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Reg(n));
        f.branch(c, body, exit);
        f.switch_to(body);
        f.call(leaf, vec![Operand::Reg(i)], Some(t));
        f.alu(AluOp::Add, acc, acc, Operand::Reg(t));
        f.alu(AluOp::Add, i, i, 1i64);
        f.jump(head);
        f.switch_to(exit);
        f.out(Operand::Reg(acc));
        f.ret(Some(Operand::Reg(acc)));
        let main = f.finish();
        pb.finish(main)
    }

    fn edge_profile(p: &Program, n: i64) -> EdgeProfile {
        let mut ep = EdgeProfiler::new(p);
        Interp::new(p, ExecConfig::default())
            .run_traced(&[n], &mut ep)
            .unwrap();
        ep.finish()
    }

    #[test]
    fn hot_call_is_inlined_and_semantics_hold() {
        let mut p = call_loop();
        let edge = edge_profile(&p, 50);
        let before = Interp::new(&p, ExecConfig::default()).run(&[37]).unwrap();

        let config = InlineConfig {
            oracle_inputs: vec![vec![13], vec![0]],
            ..InlineConfig::default()
        };
        let outcome = inline_hot_calls(&mut p, &edge, &config);
        assert_eq!(outcome.inlined.len(), 1, "{outcome:?}");
        assert_eq!(outcome.rolled_back, 0);
        assert!(call_sites(p.proc(p.entry)).is_empty(), "hot call gone");

        verify_program(&p).unwrap();
        let after = Interp::new(&p, ExecConfig::default()).run(&[37]).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(before.return_value, after.return_value);

        // The inlined body really runs: the leaf procedure is no longer
        // entered.
        let mut sink = CountEnters::default();
        Interp::new(&p, ExecConfig::default())
            .run_traced(&[10], &mut sink)
            .unwrap();
        assert_eq!(sink.enters, 1, "only main itself");
    }

    #[derive(Default)]
    struct CountEnters {
        enters: usize,
    }
    impl pps_ir::TraceSink for CountEnters {
        fn enter_proc(&mut self, _proc: ProcId) {
            self.enters += 1;
        }
        fn exit_proc(&mut self, _proc: ProcId) {}
        fn block(&mut self, _proc: ProcId, _block: BlockId) {}
    }

    #[test]
    fn cold_and_oversized_callees_are_skipped() {
        let mut p = call_loop();
        let edge = edge_profile(&p, 50);
        let config = InlineConfig { max_callee_blocks: 0, ..InlineConfig::default() };
        let outcome = inline_hot_calls(&mut p, &edge, &config);
        assert!(outcome.inlined.is_empty());
        assert_eq!(outcome.skipped, 1);
        assert!(!call_sites(p.proc(p.entry)).is_empty(), "call survives");
    }
}
