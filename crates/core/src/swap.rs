//! Generation-stamped atomic publication slots for hot-swapping compiled
//! units.
//!
//! A [`SwapSlot`] holds the currently-serving value behind an `Arc` plus a
//! monotonically increasing generation stamp. Readers ([`SwapSlot::load`])
//! get a consistent `(generation, value)` pair and keep serving from their
//! clone even while a swap lands. Writers use [`SwapSlot::swap_if`] as a
//! compare-and-swap on the generation they observed when they *started*
//! recompiling, so a slow background recompile can never clobber a newer
//! unit that was published while it ran — the stale publish is rejected and
//! the caller rolls back instead.
//!
//! The slot is deliberately all-or-nothing: the only mutation is a single
//! pointer+stamp replacement under one lock, so a drain or crash can never
//! observe a half-swapped state.

use std::sync::{Arc, Mutex};

/// A generation-stamped single-value publication slot.
#[derive(Debug)]
pub struct SwapSlot<T> {
    inner: Mutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    generation: u64,
    value: Arc<T>,
    swaps: u64,
    rejected: u64,
}

/// Outcome of a conditional swap attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The expected generation matched; the new value is now serving and
    /// carries the returned generation.
    Swapped(u64),
    /// Another writer published first; the slot is unchanged and still
    /// carries the returned (newer) generation.
    Stale(u64),
}

impl SwapOutcome {
    /// True when the swap landed.
    pub fn swapped(&self) -> bool {
        matches!(self, SwapOutcome::Swapped(_))
    }
}

impl<T> SwapSlot<T> {
    /// Creates a slot serving `value` at generation 1.
    pub fn new(value: T) -> Self {
        SwapSlot {
            inner: Mutex::new(Inner {
                generation: 1,
                value: Arc::new(value),
                swaps: 0,
                rejected: 0,
            }),
        }
    }

    /// Returns the current `(generation, value)` pair. The clone stays
    /// valid (and serving-safe) even if a swap lands immediately after.
    pub fn load(&self) -> (u64, Arc<T>) {
        let inner = self.inner.lock().unwrap();
        (inner.generation, Arc::clone(&inner.value))
    }

    /// Unconditionally publishes `value`, bumping the generation. Returns
    /// the new generation.
    pub fn swap(&self, value: T) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.generation += 1;
        inner.value = Arc::new(value);
        inner.swaps += 1;
        inner.generation
    }

    /// Publishes `value` only if the slot still carries `expected_gen` —
    /// i.e. nothing else was published since the caller loaded it.
    pub fn swap_if(&self, expected_gen: u64, value: T) -> SwapOutcome {
        let mut inner = self.inner.lock().unwrap();
        if inner.generation != expected_gen {
            inner.rejected += 1;
            return SwapOutcome::Stale(inner.generation);
        }
        inner.generation += 1;
        inner.value = Arc::new(value);
        inner.swaps += 1;
        SwapOutcome::Swapped(inner.generation)
    }

    /// Lifetime counters: `(successful swaps, rejected stale attempts)`.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.swaps, inner.rejected)
    }

    /// Current generation without cloning the value.
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn load_swap_load() {
        let slot = SwapSlot::new(10);
        let (g1, v1) = slot.load();
        assert_eq!((g1, *v1), (1, 10));
        let g2 = slot.swap(20);
        assert_eq!(g2, 2);
        let (g3, v3) = slot.load();
        assert_eq!((g3, *v3), (2, 20));
        assert_eq!(*v1, 10, "old readers keep their value");
    }

    #[test]
    fn stale_swap_is_rejected_and_counted() {
        let slot = SwapSlot::new(0);
        let (observed, _) = slot.load();
        slot.swap(1); // someone else publishes first
        let outcome = slot.swap_if(observed, 99);
        assert_eq!(outcome, SwapOutcome::Stale(2));
        assert!(!outcome.swapped());
        let (_, value) = slot.load();
        assert_eq!(*value, 1, "stale publish must not clobber");
        assert_eq!(slot.stats(), (1, 1));
    }

    #[test]
    fn matching_swap_if_lands() {
        let slot = SwapSlot::new(0);
        let (observed, _) = slot.load();
        assert_eq!(slot.swap_if(observed, 5), SwapOutcome::Swapped(2));
        assert_eq!(*slot.load().1, 5);
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_writer_per_generation() {
        let slot = Arc::new(SwapSlot::new(0usize));
        let threads = 8;
        let landed: usize = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let slot = Arc::clone(&slot);
                    scope.spawn(move || {
                        let (gen, _) = slot.load();
                        usize::from(slot.swap_if(gen, i + 1).swapped())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let (swaps, rejected) = slot.stats();
        assert_eq!(swaps as usize, landed);
        assert_eq!(swaps as usize + rejected as usize, threads);
        assert!(landed >= 1, "at least the first CAS must land");
        assert_eq!(slot.generation(), 1 + swaps);
    }
}
