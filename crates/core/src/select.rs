//! Trace selection: partitioning a procedure's blocks into traces.
//!
//! Both selectors pick seeds in decreasing block-frequency order and grow
//! traces subject to the classical restrictions: a trace never contains a
//! back edge and never claims a block already in another trace.
//!
//! - [`select_traces_edge`] grows bidirectionally using the
//!   *mutual-most-likely* heuristic of the Multiflow compiler: B extends A's
//!   trace only when B is A's most likely successor *and* A is B's most
//!   likely predecessor.
//! - [`select_traces_path`] (paper Figure 2) grows downward using the
//!   *most-likely path successor*: the successor `s` maximizing the exact
//!   path frequency `f(t·s)` of the whole extended trace, so the selector
//!   knows precisely how much execution would be lost by each extension.

use crate::config::FormConfig;
use pps_ir::analysis::ProcAnalysis;
use pps_ir::{BlockId, ProcId, Proc};
use pps_profile::{EdgeProfile, PathProfile};

/// A selected trace: a block sequence that may still have side entrances
/// (tail duplication removes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Blocks in control-flow order.
    pub blocks: Vec<BlockId>,
}

/// Selects traces for `proc` using the mutual-most-likely heuristic over an
/// edge profile.
pub fn select_traces_edge(
    proc: &Proc,
    pid: ProcId,
    analysis: &ProcAnalysis,
    profile: &EdgeProfile,
    config: &FormConfig,
) -> Vec<Trace> {
    let n = proc.blocks.len();
    let mut in_trace = vec![false; n];
    let mut traces = Vec::new();

    let by_freq = profile.blocks_by_freq(pid);
    let max_freq = by_freq.first().map(|&(_, f)| f).unwrap_or(0);
    let seed_min = ((max_freq as f64) * config.seed_fraction).max(1.0) as u64;

    for &(seed, freq) in &by_freq {
        if in_trace[seed.index()] || freq < seed_min {
            continue;
        }
        let mut blocks = vec![seed];
        in_trace[seed.index()] = true;

        // Grow downward.
        loop {
            let last = *blocks.last().expect("non-empty");
            let Some((succ, f)) = profile.most_likely_successor(pid, last) else {
                break;
            };
            if f == 0
                || in_trace[succ.index()]
                || analysis.loops.is_back_edge(last, succ)
                || profile.most_likely_predecessor(pid, succ).map(|(b, _)| b) != Some(last)
            {
                break;
            }
            blocks.push(succ);
            in_trace[succ.index()] = true;
        }
        // Grow upward.
        loop {
            let head = blocks[0];
            let Some((pred, f)) = profile.most_likely_predecessor(pid, head) else {
                break;
            };
            if f == 0
                || in_trace[pred.index()]
                || analysis.loops.is_back_edge(pred, head)
                || profile.most_likely_successor(pid, pred).map(|(b, _)| b) != Some(head)
            {
                break;
            }
            blocks.insert(0, pred);
            in_trace[pred.index()] = true;
        }
        traces.push(Trace { blocks });
    }

    // Leftovers (cold or unexecuted but reachable) become singletons.
    for b in proc.block_ids() {
        if !in_trace[b.index()] && analysis.cfg.is_reachable(b) {
            traces.push(Trace { blocks: vec![b] });
        }
    }
    traces
}

/// The most-likely path successor of the trace `t` (paper Figure 2): the
/// CFG successor `s` of `t`'s last block maximizing `f(t·s)`, where the
/// query is trimmed to the profile depth (longest-suffix rule). Returns
/// `None` when no successor was ever observed following `t`.
pub fn most_likely_path_successor(
    proc: &Proc,
    pid: ProcId,
    analysis: &ProcAnalysis,
    profile: &PathProfile,
    t: &[BlockId],
) -> Option<(BlockId, u64)> {
    let last = *t.last()?;
    let mut best: Option<(BlockId, u64)> = None;
    let mut buf: Vec<BlockId> = Vec::with_capacity(t.len() + 1);
    for &s in &analysis.cfg.succs[last.index()] {
        buf.clear();
        buf.extend_from_slice(t);
        buf.push(s);
        let q = profile.trim_to_depth(proc, &buf);
        let f = profile.freq(pid, q);
        if f == 0 {
            continue;
        }
        best = Some(match best {
            None => (s, f),
            Some((bb, bf)) => {
                if f > bf || (f == bf && s < bb) {
                    (s, f)
                } else {
                    (bb, bf)
                }
            }
        });
    }
    best
}

/// Selects traces for `proc` using the path-based selector of Figure 2.
pub fn select_traces_path(
    proc: &Proc,
    pid: ProcId,
    analysis: &ProcAnalysis,
    profile: &PathProfile,
    config: &FormConfig,
) -> Vec<Trace> {
    let n = proc.blocks.len();
    let mut in_trace = vec![false; n];
    let mut traces = Vec::new();

    // Seeds in node-frequency order, as in the edge-profile method.
    let mut by_freq: Vec<(BlockId, u64)> = proc
        .block_ids()
        .map(|b| (b, profile.block_freq(pid, b)))
        .filter(|&(_, f)| f > 0)
        .collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let max_freq = by_freq.first().map(|&(_, f)| f).unwrap_or(0);
    let seed_min = ((max_freq as f64) * config.seed_fraction).max(1.0) as u64;

    for &(seed, freq) in &by_freq {
        if in_trace[seed.index()] || freq < seed_min {
            continue;
        }
        let mut blocks = vec![seed];
        in_trace[seed.index()] = true;
        while let Some((s, _)) =
            most_likely_path_successor(proc, pid, analysis, profile, &blocks)
        {
            let last = *blocks.last().expect("non-empty");
            if in_trace[s.index()] || analysis.loops.is_back_edge(last, s) {
                break;
            }
            blocks.push(s);
            in_trace[s.index()] = true;
        }
        // Optional upward growth (paper footnote 2): prepend the
        // most-likely path *predecessor* — the predecessor whose extension
        // of the whole trace has the highest exact frequency.
        if config.upward_growth {
            loop {
                let head = blocks[0];
                let mut best: Option<(BlockId, u64)> = None;
                let mut buf: Vec<BlockId> = Vec::with_capacity(blocks.len() + 1);
                for &p in &analysis.cfg.preds[head.index()] {
                    if in_trace[p.index()] || analysis.loops.is_back_edge(p, head) {
                        continue;
                    }
                    buf.clear();
                    buf.push(p);
                    buf.extend_from_slice(&blocks);
                    let q = profile.trim_to_depth(proc, &buf);
                    if q.len() != buf.len() {
                        // The prefix fell outside the profiling depth; no
                        // exact frequency exists for this extension.
                        continue;
                    }
                    let f = profile.freq(pid, q);
                    if f == 0 {
                        continue;
                    }
                    best = Some(match best {
                        None => (p, f),
                        Some((bb, bf)) => {
                            if f > bf || (f == bf && p < bb) {
                                (p, f)
                            } else {
                                (bb, bf)
                            }
                        }
                    });
                }
                let Some((p, _)) = best else { break };
                blocks.insert(0, p);
                in_trace[p.index()] = true;
            }
        }
        traces.push(Trace { blocks });
    }

    for b in proc.block_ids() {
        if !in_trace[b.index()] && analysis.cfg.is_reachable(b) {
            traces.push(Trace { blocks: vec![b] });
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_ir::builder::ProgramBuilder;
    use pps_ir::interp::{ExecConfig, Interp};
    use pps_ir::{AluOp, Operand, Program};
    use pps_profile::{EdgeProfiler, PathProfiler};

    /// Figure-1 style program: A -> B or X; X -> B; B -> C or Y; Y, C ->
    /// latch -> A or exit. The X and Y decisions are correlated: iterations
    /// that go through X always continue to C; iterations that skip X go to
    /// Y half the time.
    fn correlated(n: i64) -> (Program, [BlockId; 6]) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.begin_proc("main", 0);
        let i = f.reg();
        let c = f.reg();
        let m = f.reg();
        f.mov(i, 0i64);
        let a = f.new_block();
        let x = f.new_block();
        let b = f.new_block();
        let y = f.new_block();
        let cc = f.new_block();
        let latch = f.new_block();
        let exit = f.new_block();
        f.jump(a);
        f.switch_to(a);
        f.alu(AluOp::Rem, m, i, 2i64);
        f.alu(AluOp::CmpEq, c, m, 0i64);
        f.branch(c, x, b); // even iterations via X
        f.switch_to(x);
        f.jump(b);
        f.switch_to(b);
        // Correlated: odd iterations with i % 4 == 1 go to Y; even never.
        f.alu(AluOp::Rem, m, i, 4i64);
        f.alu(AluOp::CmpEq, c, m, 1i64);
        f.branch(c, y, cc);
        f.switch_to(y);
        f.jump(latch);
        f.switch_to(cc);
        f.jump(latch);
        f.switch_to(latch);
        f.alu(AluOp::Add, i, i, 1i64);
        f.alu(AluOp::CmpLt, c, Operand::Reg(i), Operand::Imm(n));
        f.branch(c, a, exit);
        f.switch_to(exit);
        f.ret(None);
        let main = f.finish();
        (pb.finish(main), [a, x, b, y, cc, latch])
    }

    /// Shared test fixture: the correlated program with both profiles
    /// collected and the entry procedure's analysis computed — the setup
    /// every selection test needs.
    struct Setup {
        p: Program,
        ids: [BlockId; 6],
        ep: EdgeProfile,
        pp: PathProfile,
        an: ProcAnalysis,
    }

    impl Setup {
        fn new(n: i64) -> Setup {
            let (p, ids) = correlated(n);
            let mut ep = EdgeProfiler::new(&p);
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut ep)
                .unwrap();
            let mut pp = PathProfiler::new(&p, 15);
            Interp::new(&p, ExecConfig::default())
                .run_traced(&[], &mut pp)
                .unwrap();
            let an = ProcAnalysis::compute(p.proc(p.entry));
            Setup { p, ids, ep: ep.finish(), pp: pp.finish(), an }
        }

        fn proc(&self) -> &pps_ir::Proc {
            self.p.proc(self.p.entry)
        }

        fn entry(&self) -> ProcId {
            self.p.entry
        }
    }

    #[test]
    fn edge_selection_partitions_all_reachable_blocks() {
        let s = Setup::new(16);
        let traces = select_traces_edge(s.proc(), s.entry(), &s.an, &s.ep, &FormConfig::default());
        let mut seen = std::collections::HashSet::new();
        for t in &traces {
            for &b in &t.blocks {
                assert!(seen.insert(b), "{b} in two traces");
            }
        }
        for b in s.proc().block_ids() {
            if s.an.cfg.is_reachable(b) {
                assert!(seen.contains(&b), "{b} unclaimed");
            }
        }
    }

    #[test]
    fn edge_traces_never_contain_back_edges() {
        let s = Setup::new(16);
        let traces = select_traces_edge(s.proc(), s.entry(), &s.an, &s.ep, &FormConfig::default());
        for t in &traces {
            for w in t.blocks.windows(2) {
                assert!(!s.an.loops.is_back_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn path_selection_follows_dominant_path() {
        let s = Setup::new(16);
        let traces = select_traces_path(s.proc(), s.entry(), &s.an, &s.pp, &FormConfig::default());
        // The hottest trace should start at the hottest block. In 16
        // iterations: a,b,latch run 16x; x 8x; cc 12x; y 4x. The dominant
        // trace seeded at `a` (or latch) follows the most frequent path.
        let [a, x, b, _y, cc, latch] = s.ids;
        let hot = traces
            .iter()
            .find(|t| t.blocks.contains(&a))
            .expect("trace containing a");
        // f(a,x,b)=8 vs f(a,b)=8: tie - but extended paths diverge.
        // Whatever the choice, the trace must be a real executed path.
        assert!(hot.blocks.len() >= 2);
        // All traces partition blocks.
        let mut seen = std::collections::HashSet::new();
        for t in &traces {
            for &bb in &t.blocks {
                assert!(seen.insert(bb));
            }
        }
        let _ = (x, b, cc, latch);
    }

    #[test]
    fn most_likely_path_successor_uses_path_context() {
        // After [a, x, b] the correlated branch always goes to cc (even
        // iterations never take y). An edge profile would see b->cc at
        // 12/16 only; the path query must see certainty.
        let s = Setup::new(16);
        let [a, x, b, y, cc, _latch] = s.ids;
        let got = most_likely_path_successor(s.proc(), s.entry(), &s.an, &s.pp, &[a, x, b]);
        assert_eq!(got, Some((cc, 8)), "correlation: via-X iterations always reach C");
        // And the frequency of the rejected path is exactly zero.
        assert_eq!(s.pp.freq(s.entry(), &[a, x, b, y]), 0);
    }

    #[test]
    fn cold_blocks_become_singletons() {
        let s = Setup::new(2);
        // exit block (frequency 1 vs max 2) is above the default seed
        // fraction, so instead check never-executed blocks: none here; use
        // a tiny seed fraction program: with n=2, y executes once (i=1).
        let te = select_traces_edge(s.proc(), s.entry(), &s.an, &s.ep, &FormConfig::default());
        let tp = select_traces_path(s.proc(), s.entry(), &s.an, &s.pp, &FormConfig::default());
        for traces in [te, tp] {
            let total: usize = traces.iter().map(|t| t.blocks.len()).sum();
            assert_eq!(
                total,
                s.an.cfg.rpo.len(),
                "every reachable block exactly once"
            );
        }
    }
}
